//! Integration coverage for the second-tier kernel suite: indirect
//! gather/scatter, in-place stencils, and data-dependent-recurrence DP all
//! execute identically to golden under every controller.

use prevv::kernels::suite;
use prevv::{run_kernel, Controller, PrevvConfig};

fn check_all(spec: prevv::KernelSpec) {
    for (name, ctrl) in [
        ("fast_lsq16", Controller::FastLsq { depth: 16 }),
        ("prevv16", Controller::Prevv(PrevvConfig::prevv16())),
        ("prevv64", Controller::Prevv(PrevvConfig::prevv64())),
        ("prevv_pure", {
            let mut c = PrevvConfig::prevv16();
            c.forwarding = false;
            Controller::Prevv(c)
        }),
    ] {
        let r = run_kernel(&spec, ctrl)
            .unwrap_or_else(|e| panic!("{} under {name} failed: {e}", spec.name));
        assert!(
            r.matches_golden,
            "{} under {name} diverged from golden",
            spec.name
        );
    }
}

#[test]
fn spmv_all_controllers() {
    check_all(suite::spmv(8, 3, 42));
}

#[test]
fn stencil1d_all_controllers() {
    check_all(suite::stencil1d(12, 2, 42));
}

#[test]
fn knapsack_all_controllers() {
    check_all(suite::knapsack(6, 10, 42));
}

#[test]
fn stencil_squashes_under_prevv_without_prediction_warmup() {
    // The in-place stencil's distance-1 reuse forces at least the first
    // race to be discovered dynamically.
    let spec = suite::stencil1d(16, 2, 3);
    let r = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
    let stats = r.prevv.expect("prevv stats");
    assert!(
        stats.squashes + stats.forwards > 0,
        "distance-1 reuse must exercise validation: {stats:?}"
    );
}

#[test]
fn spmv_scatter_gather_statistics_are_sane() {
    let spec = suite::spmv(8, 3, 42);
    let r = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv64())).expect("runs");
    let stats = r.prevv.expect("prevv stats");
    let iters = spec.iteration_count() as u64;
    assert_eq!(stats.ram_writes, iters, "one committed store per iteration");
    assert!(stats.validations > 0);
}
