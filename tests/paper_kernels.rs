//! Cross-crate integration: every paper kernel, under every controller,
//! must reproduce the golden (sequential C) semantics — the reproduction's
//! equivalent of the paper's ModelSim-vs-C++ check, run at reduced sizes so
//! the full matrix stays fast in CI.

use prevv::kernels::paper;
use prevv::{run_kernel, Controller, PrevvConfig};

fn controllers() -> Vec<(&'static str, Controller)> {
    vec![
        ("dynamatic16", Controller::Dynamatic { depth: 16 }),
        ("fast_lsq16", Controller::FastLsq { depth: 16 }),
        ("prevv16", Controller::Prevv(PrevvConfig::prevv16())),
        ("prevv64", Controller::Prevv(PrevvConfig::prevv64())),
    ]
}

fn check_all(spec: prevv::KernelSpec) {
    for (name, ctrl) in controllers() {
        let r = run_kernel(&spec, ctrl)
            .unwrap_or_else(|e| panic!("{} under {name} failed: {e}", spec.name));
        assert!(
            r.matches_golden,
            "{} under {name} diverged from golden",
            spec.name
        );
    }
}

#[test]
fn polyn_mult_all_controllers() {
    check_all(paper::polyn_mult(10));
}

#[test]
fn mm2_all_controllers() {
    check_all(paper::mm2(5));
}

#[test]
fn mm3_all_controllers() {
    check_all(paper::mm3(4));
}

#[test]
fn gaussian_all_controllers() {
    check_all(paper::gaussian(6));
}

#[test]
fn triangular_all_controllers() {
    check_all(paper::triangular(6));
}

#[test]
fn prevv_beats_fast_lsq_on_resources_for_every_paper_kernel() {
    use prevv::evaluate;
    for spec in paper::all_default() {
        let lsq = evaluate(&spec, Controller::FastLsq { depth: 16 }).expect("runs");
        let prevv = evaluate(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
        assert!(
            prevv.design.total().luts < lsq.design.total().luts,
            "{}: PreVV16 must use fewer LUTs",
            spec.name
        );
        assert!(
            prevv.design.total().ffs < lsq.design.total().ffs,
            "{}: PreVV16 must use fewer FFs",
            spec.name
        );
        assert!(
            prevv.design.clock_period_ns < lsq.design.clock_period_ns,
            "{}: PreVV removes the search logic from the critical path",
            spec.name
        );
    }
}

#[test]
fn deeper_premature_queue_never_hurts_cycles_on_paper_kernels() {
    for spec in [
        paper::polyn_mult(10),
        paper::gaussian(6),
        paper::triangular(6),
    ] {
        let p16 = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
        let p64 = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv64())).expect("runs");
        assert!(
            p64.report.cycles <= p16.report.cycles + p16.report.cycles / 10,
            "{}: PreVV64 ({}) should not be materially slower than PreVV16 ({})",
            spec.name,
            p64.report.cycles,
            p16.report.cycles
        );
    }
}

#[test]
fn squash_and_replay_preserve_store_counts() {
    // Every golden store must be committed exactly once despite replays.
    let spec = paper::triangular(6);
    let r = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
    let gold = prevv::ir::golden::execute(&spec);
    let golden_stores = gold
        .trace
        .iter()
        .filter(|e| e.kind == prevv::ir::MemOpKind::Store)
        .count() as u64;
    let stats = r.prevv.expect("prevv stats");
    assert_eq!(
        stats.ram_writes, golden_stores,
        "committed stores must match the golden store count exactly"
    );
}
