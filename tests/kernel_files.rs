//! The kernel source files shipped in `kernels/` must parse, run under
//! PreVV, and match the golden model — keeping the CLI's examples honest.

use prevv::ir::parse::parse_kernel;
use prevv::{run_kernel, Controller, PrevvConfig};

fn check_file(name: &str) {
    let path = format!("{}/kernels/{name}.pvk", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let spec = parse_kernel(name, &source).unwrap_or_else(|e| panic!("parse {name}: {e}"));
    let r = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16()))
        .unwrap_or_else(|e| panic!("run {name}: {e}"));
    assert!(r.matches_golden, "{name} diverged from golden");
}

#[test]
fn histogram_file_runs() {
    check_file("histogram");
}

#[test]
fn fig2a_file_runs() {
    check_file("fig2a");
}

#[test]
fn polyn_mult_file_runs() {
    check_file("polyn_mult");
}

#[test]
fn triangular_file_runs() {
    check_file("triangular");
}

#[test]
fn guarded_file_runs() {
    check_file("guarded");
}

#[test]
fn files_round_trip_through_the_pretty_printer() {
    for name in ["histogram", "fig2a", "polyn_mult", "triangular", "guarded"] {
        let path = format!("{}/kernels/{name}.pvk", env!("CARGO_MANIFEST_DIR"));
        let source = std::fs::read_to_string(&path).expect("read");
        let spec = parse_kernel(name, &source).expect("parse");
        let rendered = prevv::ir::pretty::render(&spec);
        let body: String = rendered.lines().skip(1).collect::<Vec<_>>().join("\n");
        let spec2 = parse_kernel(name, &body).expect("re-parse rendered source");
        assert_eq!(
            prevv::ir::golden::execute(&spec).arrays,
            prevv::ir::golden::execute(&spec2).arrays,
            "{name}: semantics drift through render→parse"
        );
    }
}
