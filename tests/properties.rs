//! Property-based tests: randomly generated kernels with data hazards must
//! execute identically under every sound controller — the strongest
//! correctness statement the reproduction makes about premature value
//! validation.

use proptest::prelude::*;

use prevv::dataflow::components::LoopLevel;
use prevv::ir::{ArrayDecl, ArrayId, BinOp, Expr, KernelSpec, OpaqueFn, Stmt};
use prevv::{run_kernel, Controller, MemTiming, PrevvConfig};

const ARRAY_LEN: usize = 12;

/// Index expressions over one loop variable and two small arrays —
/// deliberately biased toward aliasing (small modulus, constant cells).
fn index_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // affine: i + c
        (-2i64..6).prop_map(|c| Expr::var(0).add(Expr::lit(c))),
        // constant cell: maximal reuse
        (0i64..4).prop_map(Expr::lit),
        // runtime hash of i with a small range
        (0u64..4, 2i64..6).prop_map(|(seed, m)| Expr::var(0).opaque(OpaqueFn::new(seed, m))),
        // indirect through array 1
        Just(Expr::load(ArrayId(1), Expr::var(0))),
    ]
}

/// Value expressions: a load of the target (read-modify-write) combined
/// with the induction variable.
fn value_expr(target: ArrayId, index: Expr) -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::load(target, index.clone()).add(Expr::var(0))),
        Just(Expr::load(target, index.clone()).add(Expr::lit(1))),
        Just(Expr::var(0).mul(Expr::lit(3))),
        Just(
            Expr::load(target, index)
                .mul(Expr::lit(2))
                .add(Expr::lit(1))
        ),
    ]
}

prop_compose! {
    fn statement()(
        target in 0usize..2,
        index in index_expr(),
    )(
        target in Just(target),
        index in Just(index.clone()),
        value in value_expr(ArrayId(target), index),
        guarded in proptest::bool::weighted(0.3),
        every in 2i64..4,
    ) -> Stmt {
        let array = ArrayId(target);
        if guarded {
            Stmt::guarded(
                array,
                index,
                value,
                Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(every)),
                    Expr::lit(0),
                ),
            )
        } else {
            Stmt::store(array, index, value)
        }
    }
}

prop_compose! {
    fn kernel()(
        iters in 6i64..24,
        inner in proptest::option::weighted(0.35, 2i64..4),
        stmts in proptest::collection::vec(statement(), 1..3),
        init in proptest::collection::vec(-4i64..4, ARRAY_LEN),
    ) -> KernelSpec {
        // Optionally wrap in a second (inner) loop level: the statements only
        // reference level 0, so the inner level multiplies same-address
        // reuse — exactly the accumulation pattern of the paper's kernels.
        let levels = match inner {
            Some(n) => vec![LoopLevel::upto(iters.min(12)), LoopLevel::upto(n)],
            None => vec![LoopLevel::upto(iters)],
        };
        KernelSpec::new(
            "random",
            levels,
            vec![
                ArrayDecl::zeroed("a", ARRAY_LEN),
                ArrayDecl::with_values("b", init),
            ],
            stmts,
        ).expect("generated kernels are valid by construction")
    }
}

fn prevv_variants() -> Vec<PrevvConfig> {
    let mut v = Vec::new();
    for depth in [8usize, 16, 64] {
        for forwarding in [true, false] {
            let mut c = PrevvConfig::with_depth(depth);
            c.forwarding = forwarding;
            v.push(c);
        }
    }
    // A stress variant: tiny arbiter bandwidth and slow RAM.
    let mut slow = PrevvConfig::with_depth(16);
    slow.validations_per_cycle = 1;
    slow.retire_per_cycle = 1;
    slow.timing = MemTiming {
        read_latency: 4,
        write_latency: 2,
        read_ports: 1,
        write_ports: 1,
    };
    v.push(slow);
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// The headline soundness property: any random hazard-rich kernel runs
    /// to the golden result under PreVV in every configuration.
    #[test]
    fn prevv_matches_golden_on_random_kernels(spec in kernel(), variant in 0usize..7) {
        let configs = prevv_variants();
        let config = configs[variant % configs.len()].clone();
        // Skip configurations that cannot hold one iteration (rejected at
        // construction; correctness is not at stake).
        let ports = prevv::ir::synthesize(&spec).expect("synth").interface.ports.len();
        prop_assume!(config.depth >= ports);
        let r = run_kernel(&spec, Controller::Prevv(config))
            .expect("simulation completes");
        prop_assert!(r.matches_golden, "PreVV diverged from golden semantics");
    }

    /// The LSQ baseline obeys the same contract (differential sanity for
    /// the comparison experiments).
    #[test]
    fn lsq_matches_golden_on_random_kernels(spec in kernel()) {
        let r = run_kernel(&spec, Controller::FastLsq { depth: 16 })
            .expect("simulation completes");
        prop_assert!(r.matches_golden, "LSQ diverged from golden semantics");
    }

    /// PreVV and the LSQ agree with each other bit-for-bit (they both equal
    /// golden, so this is implied — asserted directly for better shrink
    /// output when something breaks).
    #[test]
    fn prevv_and_lsq_agree(spec in kernel()) {
        let lsq = run_kernel(&spec, Controller::FastLsq { depth: 16 }).expect("lsq runs");
        let prevv = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16()))
            .expect("prevv runs");
        prop_assert_eq!(lsq.arrays, prevv.arrays);
    }
}
