//! Property-based tests for the static analyzer: it must never panic on
//! any kernel the generator can produce, its PV004 bypass verdicts must be
//! sound against brute-force address enumeration, and kernels it passes
//! must simulate correctly under PreVV.

use proptest::prelude::*;

use prevv::analyze::symdep::{classify_pair, AffineForm, PairClass};
use prevv::analyze::{
    analyze, check_protocol, replay_counterexample, AnalyzeOptions, Code, ProtocolOptions,
};
use prevv::dataflow::components::LoopLevel;
use prevv::ir::depend;
use prevv::ir::{ArrayDecl, ArrayId, BinOp, Expr, KernelSpec, MemOpKind, OpaqueFn, Stmt};
use prevv::{run_kernel, Controller, MemTiming, PrevvConfig};

const ARRAY_LEN: usize = 12;

/// Index expressions biased toward aliasing, mirroring `tests/properties.rs`
/// (including out-of-range affine offsets, which PV001 must flag without
/// panicking, and runtime-dependent shapes, which it must skip).
fn index_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-2i64..6).prop_map(|c| Expr::var(0).add(Expr::lit(c))),
        (0i64..4).prop_map(Expr::lit),
        (0u64..4, 2i64..6).prop_map(|(seed, m)| Expr::var(0).opaque(OpaqueFn::new(seed, m))),
        Just(Expr::load(ArrayId(1), Expr::var(0))),
    ]
}

fn value_expr(target: ArrayId, index: Expr) -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::load(target, index.clone()).add(Expr::var(0))),
        Just(Expr::load(target, index.clone()).add(Expr::lit(1))),
        Just(Expr::var(0).mul(Expr::lit(3))),
        Just(
            Expr::load(target, index)
                .mul(Expr::lit(2))
                .add(Expr::lit(1))
        ),
    ]
}

prop_compose! {
    fn statement()(
        target in 0usize..2,
        index in index_expr(),
    )(
        target in Just(target),
        index in Just(index.clone()),
        value in value_expr(ArrayId(target), index),
        guarded in proptest::bool::weighted(0.3),
        every in 2i64..4,
    ) -> Stmt {
        let array = ArrayId(target);
        if guarded {
            Stmt::guarded(
                array,
                index,
                value,
                Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(every)),
                    Expr::lit(0),
                ),
            )
        } else {
            Stmt::store(array, index, value)
        }
    }
}

prop_compose! {
    fn kernel()(
        iters in 6i64..24,
        inner in proptest::option::weighted(0.35, 2i64..4),
        stmts in proptest::collection::vec(statement(), 1..3),
        init in proptest::collection::vec(-4i64..4, ARRAY_LEN),
    ) -> KernelSpec {
        let levels = match inner {
            Some(n) => vec![LoopLevel::upto(iters.min(12)), LoopLevel::upto(n)],
            None => vec![LoopLevel::upto(iters)],
        };
        KernelSpec::new(
            "random",
            levels,
            vec![
                ArrayDecl::zeroed("a", ARRAY_LEN),
                ArrayDecl::with_values("b", init),
            ],
            stmts,
        ).expect("generated kernels are valid by construction")
    }
}

/// Brute-force affine evaluation (the analyzer's independent oracle).
fn eval_affine(e: &Expr, row: &[i64]) -> i64 {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Binary(op, l, r) => op.apply(eval_affine(l, row), eval_affine(r, row)),
        _ => panic!("oracle only evaluates affine expressions"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The analyzer must never panic, and every report must render as text
    /// and serialize as JSON, for any generated kernel and configuration.
    #[test]
    fn analyzer_never_panics(
        spec in kernel(),
        depth in 1usize..40,
        fake_tokens in proptest::arbitrary::any::<bool>(),
        pair_reduction in proptest::arbitrary::any::<bool>(),
    ) {
        let opts = AnalyzeOptions {
            fake_tokens,
            depth,
            pair_reduction,
            ..AnalyzeOptions::default()
        };
        let report = analyze(&spec, &opts);
        let text = report.render("random", None);
        prop_assert!(text.contains("error(s)"));
        let json = report.to_json(None);
        prop_assert!(json.starts_with('{') && json.ends_with('}'));
    }

    /// PV004 soundness: every pair the refinement bypasses is verified by
    /// brute force — both indices affine, and every address collision over
    /// the whole iteration space is a same-iteration, program-order
    /// protected load-before-store.
    #[test]
    fn pv004_bypass_is_sound(spec in kernel()) {
        let deps = depend::analyze(&spec);
        let refinement = depend::refine_pairs(&spec, &deps);
        let space = spec.iteration_space();
        for pair in &refinement.bypassed {
            let load = &deps.ops[pair.load];
            let store = &deps.ops[pair.store];
            prop_assert_eq!(load.kind, MemOpKind::Load);
            prop_assert_eq!(store.kind, MemOpKind::Store);
            prop_assert!(!load.index.is_runtime_dependent());
            prop_assert!(!store.index.is_runtime_dependent());
            for (i1, row1) in space.iter().enumerate() {
                let la = spec.resolve_index(load.array, eval_affine(&load.index, row1));
                for (i2, row2) in space.iter().enumerate() {
                    let sa = spec.resolve_index(store.array, eval_affine(&store.index, row2));
                    if la == sa {
                        prop_assert!(
                            i1 == i2 && load.seq < store.seq,
                            "bypassed pair collides outside program order: \
                             load iter {} vs store iter {}", i1, i2
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// End-to-end: a kernel the analyzer passes (no error diagnostics at
    /// depth 64) simulates correctly under PreVV with the PV004 bypass
    /// active by default.
    #[test]
    fn analyzer_clean_kernels_match_golden(spec in kernel()) {
        let opts = AnalyzeOptions { depth: 64, ..AnalyzeOptions::default() };
        prop_assume!(!analyze(&spec, &opts).has_errors());
        let run = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv64()))
            .expect("clean kernels run");
        prop_assert!(run.matches_golden);
    }
}

// --- PV2xx model checker vs. the dataflow simulator ---------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Model-checker soundness, re-proved dynamically: whenever the PV2xx
    /// pass declares a random kernel free of PV201 deadlocks, PV202
    /// livelocks, and PV203 wedges for a random controller configuration,
    /// the full dataflow circuit under that exact configuration — with
    /// randomized memory latencies and validation/retire bandwidths, each
    /// of which exercises a different arrival interleaving — must run to
    /// completion (no wedge) and match the golden interpreter.
    #[test]
    fn protocol_clean_verdicts_are_confirmed_by_simulation(
        spec in kernel(),
        depth in 6usize..=16,
        forwarding in proptest::arbitrary::any::<bool>(),
        read_latency in 1u32..=3,
        write_latency in 1u32..=2,
        validations_per_cycle in 1u32..=3,
        retire_per_cycle in 1u32..=3,
    ) {
        prop_assume!(!analyze(
            &spec,
            &AnalyzeOptions { depth: 64, ..AnalyzeOptions::default() },
        ).has_errors());
        let cfg = PrevvConfig {
            depth,
            forwarding,
            timing: MemTiming { read_latency, write_latency, ..MemTiming::default() },
            validations_per_cycle,
            retire_per_cycle,
            ..PrevvConfig::default()
        };
        let mut popts = ProtocolOptions::for_config(&cfg);
        popts.max_states = 20_000;
        let result = check_protocol(&spec, &popts);
        prop_assume!(result.is_ok());
        let result = result.unwrap();
        prop_assume!(!result.report.has_errors());

        let run = run_kernel(&spec, Controller::Prevv(cfg))
            .expect("protocol-clean kernels must not wedge in simulation");
        prop_assert!(
            run.matches_golden,
            "protocol-clean kernel diverged from the golden model"
        );
    }

    /// Counterexample fidelity: every trace the model checker emits
    /// replays, step by step through the shared `prevv-core` protocol
    /// state, into exactly the state it advertises — stuck with no enabled
    /// transition (PV201), stuck specifically on queue admission (PV203),
    /// or a squash cycle that re-closes on the same abstract state (PV202).
    #[test]
    fn every_counterexample_replays_to_its_reported_state(
        spec in kernel(),
        depth in 2usize..=5,
        forwarding in proptest::arbitrary::any::<bool>(),
        fake_tokens in proptest::arbitrary::any::<bool>(),
    ) {
        prop_assume!(!analyze(
            &spec,
            &AnalyzeOptions { depth: 64, ..AnalyzeOptions::default() },
        ).has_errors());
        let cfg = PrevvConfig { depth, forwarding, ..PrevvConfig::default() };
        let mut popts = ProtocolOptions::for_config(&cfg);
        popts.fake_tokens = fake_tokens;
        popts.max_states = 20_000;
        let result = check_protocol(&spec, &popts);
        prop_assume!(result.is_ok());
        let result = result.unwrap();
        for cex in &result.counterexamples {
            if !matches!(
                cex.code,
                Code::ProtocolDeadlock | Code::SquashLivelock | Code::QueueWedge
            ) {
                continue;
            }
            let outcome = replay_counterexample(&spec, &popts, cex)
                .expect("emitted counterexamples replay");
            match cex.code {
                Code::ProtocolDeadlock => prop_assert!(
                    outcome.deadlock,
                    "PV201 trace must replay to a stuck state: {}",
                    cex.render()
                ),
                Code::QueueWedge => prop_assert!(
                    outcome.deadlock && outcome.admission_blocked,
                    "PV203 trace must replay to an admission-blocked stuck state: {}",
                    cex.render()
                ),
                Code::SquashLivelock => prop_assert!(
                    outcome.cycle_closed,
                    "PV202 lasso must re-close under replay: {}",
                    cex.render()
                ),
                _ => unreachable!(),
            }
        }
    }
}

// --- symbolic dependence engine vs. brute force -------------------------

prop_compose! {
    /// A random affine access pair over a shared small rectangular domain:
    /// coefficients and bounds are kept small so the brute-force oracle
    /// (full cross product of iteration pairs) stays exact and fast.
    fn affine_pair()(
        levels in 1usize..=3,
    )(
        coeffs_a in proptest::collection::vec(-4i64..=4, levels),
        const_a in -12i64..=12,
        coeffs_b in proptest::collection::vec(-4i64..=4, levels),
        const_b in -12i64..=12,
        los in proptest::collection::vec(-3i64..=2, levels),
        spans in proptest::collection::vec(0i64..=4, levels),
    ) -> (AffineForm, AffineForm, Vec<(i64, i64)>) {
        let bounds = los.iter().zip(&spans).map(|(&lo, &s)| (lo, lo + s)).collect();
        (
            AffineForm { coeffs: coeffs_a, constant: const_a },
            AffineForm { coeffs: coeffs_b, constant: const_b },
            bounds,
        )
    }
}

/// Every iteration row of a rectangular bounds box, in lexicographic order.
fn rows_of(bounds: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut rows = vec![Vec::new()];
    for &(lo, hi) in bounds {
        rows = rows
            .into_iter()
            .flat_map(|r| {
                (lo..=hi).map(move |v| {
                    let mut r = r.clone();
                    r.push(v);
                    r
                })
            })
            .collect();
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    /// Soundness of the GCD/Banerjee engine (the PV001/PV004 fast path):
    /// its verdicts must agree with brute-force enumeration on every random
    /// affine pair. The engine may answer [`PairClass::Unknown`] ("maybe")
    /// whenever it likes, but a [`PairClass::Disjoint`] claim must mean *no*
    /// address collision exists anywhere in the space, and a
    /// [`PairClass::SameIterationOnly`] claim must mean no *cross-iteration*
    /// collision exists.
    #[test]
    fn symbolic_verdicts_agree_with_brute_force(case in affine_pair()) {
        let (a, b, bounds) = case;
        let verdict = classify_pair(&a, &b, &bounds);
        let rows = rows_of(&bounds);
        let mut same_collision = false;
        let mut cross_collision = false;
        for (i, x) in rows.iter().enumerate() {
            let va = a.eval(x);
            for (j, y) in rows.iter().enumerate() {
                if va == b.eval(y) {
                    if i == j {
                        same_collision = true;
                    } else {
                        cross_collision = true;
                    }
                }
            }
        }
        match verdict {
            PairClass::Disjoint => prop_assert!(
                !same_collision && !cross_collision,
                "claimed disjoint but a collision exists: a={a:?} b={b:?} bounds={bounds:?}"
            ),
            PairClass::SameIterationOnly => prop_assert!(
                !cross_collision,
                "claimed same-iteration-only but a cross-iteration collision exists: \
                 a={a:?} b={b:?} bounds={bounds:?}"
            ),
            PairClass::Unknown => {} // "maybe" is always sound
        }
    }

    /// The engine's verdict is invariant under swapping which access is
    /// "first": collision existence is symmetric, so a proof for (a, b)
    /// must not become a *stronger* claim for (b, a).
    #[test]
    fn symbolic_verdicts_are_symmetric(case in affine_pair()) {
        let (a, b, bounds) = case;
        let ab = classify_pair(&a, &b, &bounds);
        let ba = classify_pair(&b, &a, &bounds);
        prop_assert_eq!(ab, ba);
    }
}
