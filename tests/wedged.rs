//! Failure-mode coverage on *generated* kernels: the no-progress watchdog
//! and the combinational-cycle detector must fire — identically under both
//! schedulers — on wedged circuits that came out of the fuzzer, not just on
//! hand-written netlists.
//!
//! Two wedge recipes:
//!
//! 1. **Premature-queue deadlock** (paper §V-C): synthesize a generated
//!    kernel whose every statement is guarded, with fake tokens *disabled*.
//!    The first skipped iteration starves the PreVV queue's in-order head
//!    and the watchdog must declare [`SimError::Deadlock`].
//! 2. **Divergent combinational loop**: graft the canonical unbuffered
//!    merge→mux→fork feedback gadget onto a generated kernel's synthesized
//!    netlist. Both schedulers must reject with
//!    [`SimError::CombinationalCycle`] at the same cycle, naming the same
//!    gadget channels.

use prevv::dataflow::components::{Branch, Buffer, Fork, IterSource, Merge, Mux, Sink};
use prevv::dataflow::Simulator;
use prevv::kernels::gen::{generate, GenConfig};
use prevv::{
    run_kernel_with, Controller, PrevvConfig, RunError, Scheduler, SimConfig, SimError,
    SynthOptions,
};

fn sim_config(scheduler: Scheduler) -> SimConfig {
    SimConfig {
        scheduler,
        watchdog: 300,
        max_cycles: 200_000,
    }
}

/// Generated all-guarded kernels, synthesized without fake tokens, must be
/// declared dead by the event scheduler's watchdog — and the dense
/// scheduler must agree. Re-enabling fake tokens must cure the same kernel.
#[test]
fn watchdog_catches_generated_premature_queue_deadlock() {
    let cfg = GenConfig {
        require_guard: true,
        // Keep the PreVV depth choice out of the picture: prevv16 for all.
        allow_depth_hint: false,
        ..GenConfig::corpus()
    };
    let starved = SynthOptions {
        fake_tokens: false,
        ..SynthOptions::default()
    };
    let controller = Controller::Prevv(PrevvConfig::prevv16());

    let mut wedged = 0usize;
    for seed in 0..64u64 {
        let spec = generate(seed, &cfg);
        let event = run_kernel_with(
            &spec,
            controller.clone(),
            &starved,
            &sim_config(Scheduler::EventDriven),
        );
        let (cycle, detail) = match event {
            Err(RunError::Sim(SimError::Deadlock { cycle, detail })) => (cycle, detail),
            // A kernel whose guards all happen to pass never starves the
            // queue; it must then run to completion and match golden.
            Ok(r) => {
                assert!(
                    r.matches_golden,
                    "{}: un-wedged kernel must be correct",
                    spec.name
                );
                continue;
            }
            Err(other) => panic!("{}: expected deadlock or success, got {other}", spec.name),
        };
        wedged += 1;
        assert!(
            cycle > 0,
            "{}: watchdog fired before any progress window",
            spec.name
        );
        assert!(
            !detail.is_empty(),
            "{}: deadlock diagnostic must name the stall",
            spec.name
        );

        // The dense reference sweep must reach the same verdict.
        match run_kernel_with(
            &spec,
            controller.clone(),
            &starved,
            &sim_config(Scheduler::Dense),
        ) {
            Err(RunError::Sim(SimError::Deadlock { .. })) => {}
            other => panic!(
                "{}: dense scheduler disagrees on the wedge: {other:?}",
                spec.name
            ),
        }

        // Fake tokens are exactly the cure the paper prescribes.
        for scheduler in [Scheduler::Dense, Scheduler::EventDriven] {
            let cured = run_kernel_with(
                &spec,
                controller.clone(),
                &SynthOptions::default(),
                &sim_config(scheduler),
            )
            .unwrap_or_else(|e| panic!("{}: fake tokens must cure the wedge: {e}", spec.name));
            assert!(
                cured.matches_golden,
                "{}: cured run must match golden",
                spec.name
            );
        }

        if wedged >= 3 {
            return;
        }
    }
    panic!("no generated kernel wedged in 64 seeds; generator guards are degenerate");
}

/// Grafts the unbuffered merge→mux→fork feedback loop onto a synthesized
/// generated kernel and returns the simulation error plus the gadget's
/// three loop channels.
fn run_with_divergent_gadget(
    seed: u64,
    scheduler: Scheduler,
) -> (SimError, [prevv::dataflow::ChannelId; 3]) {
    let cfg = GenConfig {
        // Guards squash; keep the host kernel plain so the only pathology
        // is the injected gadget.
        allow_guards: false,
        ..GenConfig::corpus()
    };
    let spec = generate(seed, &cfg);
    let mut circuit = prevv::ir::synthesize(&spec).expect("generated kernels synthesize");
    let (lsq, _ram) = prevv::mem::Lsq::new(
        circuit.interface.clone(),
        prevv::mem::LsqConfig::fast(16.max(spec.mem_ops_per_iter())),
    )
    .expect("fast LSQ attaches");
    circuit.netlist.add("lsq", lsq);

    // The canonical divergent gadget: iteration 1 routes a token into an
    // unbuffered merge→mux→fork loop, so the combinational fixpoint churns.
    let net = &mut circuit.netlist;
    let data = net.channel();
    let cond = net.channel();
    let v_f = net.channel();
    let v_t = net.channel();
    let bv_f = net.channel();
    let bv_t = net.channel();
    let enter = net.channel();
    let safe = net.channel();
    let loop_back = net.channel();
    let sel = net.channel();
    let mux_out = net.channel();
    let spill = net.channel();
    let rows = vec![vec![7, 0, 1, 0], vec![7, 1, 1, 0]];
    net.add(
        "wedge_src",
        IterSource::new(rows, vec![data, cond, v_f, v_t], circuit.bus.clone()),
    );
    net.add("wedge_bf", Buffer::new(2, v_f, bv_f));
    net.add("wedge_bt", Buffer::new(2, v_t, bv_t));
    net.add("wedge_gate", Branch::new(data, cond, enter, safe));
    net.add("wedge_safe", Sink::new(vec![safe]));
    net.add("wedge_merge", Merge::new(vec![loop_back, enter], sel));
    net.add("wedge_mux", Mux::new(sel, bv_f, bv_t, mux_out));
    net.add("wedge_fork", Fork::new(mux_out, vec![loop_back, spill]));
    net.add("wedge_spill", Sink::new(vec![spill]));

    let mut sim = Simulator::new(circuit.netlist, circuit.bus)
        .expect("structurally valid")
        .with_config(sim_config(scheduler));
    let err = sim.run().expect_err("the gadget must wedge the circuit");
    (err, [sel, mux_out, loop_back])
}

#[test]
fn combinational_cycle_detected_in_generated_kernel_netlists() {
    for seed in [3u64, 11, 42] {
        let mut verdicts = Vec::new();
        for scheduler in [Scheduler::Dense, Scheduler::EventDriven] {
            let (err, loop_channels) = run_with_divergent_gadget(seed, scheduler);
            match err {
                SimError::CombinationalCycle { cycle, channels } => {
                    for ch in loop_channels {
                        assert!(
                            channels.contains(&ch),
                            "seed {seed} {scheduler:?}: loop channel {ch} unnamed in {channels:?}"
                        );
                    }
                    verdicts.push((cycle, channels));
                }
                other => {
                    panic!("seed {seed} {scheduler:?}: expected CombinationalCycle, got {other:?}")
                }
            }
        }
        assert_eq!(
            verdicts[0], verdicts[1],
            "seed {seed}: schedulers must agree on cycle and channel set"
        );
    }
}
