//! Pinned shrunk counterexamples, replayed through the full differential
//! oracle.
//!
//! `tests/properties.proptest-regressions` records two historical shrink
//! results from the property tests. The offline `compat` proptest shim
//! never reads regression files, so those entries are inert — they would
//! silently mask the cases they were meant to pin. Each entry is therefore
//! reconstructed here verbatim as an explicit `KernelSpec` and run through
//! `prevv::diffcheck::check_kernel`, which is strictly stronger than the
//! property that originally failed (it adds round-trip, lint/model-check
//! consistency, the speculative LSQ backend, and both schedulers).

use prevv::dataflow::components::LoopLevel;
use prevv::diffcheck::{check_kernel, DiffOptions};
use prevv::ir::{ArrayDecl, ArrayId, BinOp, Expr, KernelSpec, OpaqueFn, Stmt};

fn oracle_must_pass(spec: &KernelSpec) {
    let opts = DiffOptions {
        // These shrunk specs predate the generator's lint-clean guarantee;
        // the contract under test is behavioral agreement, not lint purity.
        expect_lint_clean: false,
        ..DiffOptions::default()
    };
    let verdict = check_kernel(spec, &opts);
    assert!(
        verdict.passed(),
        "{}: pinned regression violates the oracle: {:?}",
        spec.name,
        verdict
            .failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
}

/// First `properties.proptest-regressions` entry: a guarded and an
/// unguarded store to the same indirectly-addressed cell in one iteration.
/// Historically shrunk from a cross-controller divergence hunt.
#[test]
fn pinned_guarded_indirect_double_store() {
    let a = ArrayId(0);
    let b = ArrayId(1);
    let index = || Expr::load(b, Expr::var(0));
    let value = || {
        Expr::load(a, Expr::load(b, Expr::var(0)))
            .mul(Expr::lit(2))
            .add(Expr::lit(1))
    };
    let guard = Expr::bin(
        BinOp::Eq,
        Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(2)),
        Expr::lit(0),
    );
    let spec = KernelSpec::new(
        "pinned_guarded_indirect",
        vec![LoopLevel::upto(6)],
        vec![
            ArrayDecl::zeroed("a", 12),
            ArrayDecl::with_values("b", vec![-1, 0, 0, 3, -3, 0, 2, -1, 1, 3, 0, 0]),
        ],
        vec![
            Stmt::guarded(a, index(), value(), guard),
            Stmt::store(a, index(), value()),
        ],
    )
    .expect("pinned spec validates");
    oracle_must_pass(&spec);
}

/// Second `properties.proptest-regressions` entry: two opaque-addressed
/// read-modify-write stores with different hash seeds into the same array,
/// so collisions are data-dependent and iteration-crossing.
#[test]
fn pinned_opaque_rmw_collision_pair() {
    let b = ArrayId(1);
    let rmw = |f: OpaqueFn| {
        Stmt::store(
            b,
            Expr::var(0).opaque(f),
            Expr::load(b, Expr::var(0).opaque(f)).add(Expr::var(0)),
        )
    };
    let spec = KernelSpec::new(
        "pinned_opaque_rmw",
        vec![LoopLevel::upto(9)],
        vec![
            ArrayDecl::zeroed("a", 12),
            ArrayDecl::with_values("b", vec![0, -1, 2, 2, 2, -2, 0, 3, -1, 2, 3, 2]),
        ],
        vec![rmw(OpaqueFn::new(0, 2)), rmw(OpaqueFn::new(2, 2))],
    )
    .expect("pinned spec validates");
    oracle_must_pass(&spec);
}
