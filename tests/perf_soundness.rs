//! Soundness of the PV4xx static throughput analysis: the `ii_bound` a
//! [`prevv::analyze::analyze_perf`] summary reports is a *guarantee* — no
//! simulated run may sustain a better initiation interval. Random
//! hazard-rich kernels probe the bound against the cycle-accurate
//! simulator across queue depths and port bandwidths, and the five stock
//! paper kernels pin the predicted cycle count to within 10% of measurement
//! (the accuracy half of the contract; `scripts/verify.sh` re-asserts it
//! end-to-end through the CLI).

use proptest::prelude::*;

use prevv::analyze::{self, PerfOptions};
use prevv::dataflow::components::LoopLevel;
use prevv::ir::parse::parse_kernel;
use prevv::ir::{ArrayDecl, ArrayId, BinOp, Expr, KernelSpec, OpaqueFn, Stmt};
use prevv::{run_kernel, Controller, MemTiming, PrevvConfig};

const ARRAY_LEN: usize = 12;

/// Index expressions over one loop variable and two small arrays — biased
/// toward aliasing so the RAW-recurrence and squash paths of the analysis
/// are exercised, not just the port-pressure terms.
fn index_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-2i64..6).prop_map(|c| Expr::var(0).add(Expr::lit(c))),
        (0i64..4).prop_map(Expr::lit),
        (0u64..4, 2i64..6).prop_map(|(seed, m)| Expr::var(0).opaque(OpaqueFn::new(seed, m))),
        Just(Expr::load(ArrayId(1), Expr::var(0))),
    ]
}

fn value_expr(target: ArrayId, index: Expr) -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::load(target, index.clone()).add(Expr::var(0))),
        Just(Expr::load(target, index.clone()).add(Expr::lit(1))),
        Just(Expr::var(0).mul(Expr::lit(3))),
        Just(
            Expr::load(target, index)
                .mul(Expr::lit(2))
                .add(Expr::lit(1))
        ),
    ]
}

prop_compose! {
    fn statement()(
        target in 0usize..2,
        index in index_expr(),
    )(
        target in Just(target),
        index in Just(index.clone()),
        value in value_expr(ArrayId(target), index),
        guarded in proptest::bool::weighted(0.3),
        every in 2i64..4,
    ) -> Stmt {
        let array = ArrayId(target);
        if guarded {
            Stmt::guarded(
                array,
                index,
                value,
                Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(every)),
                    Expr::lit(0),
                ),
            )
        } else {
            Stmt::store(array, index, value)
        }
    }
}

prop_compose! {
    fn kernel()(
        iters in 6i64..20,
        stmts in proptest::collection::vec(statement(), 1..3),
        init in proptest::collection::vec(-4i64..4, ARRAY_LEN),
    ) -> KernelSpec {
        KernelSpec::new(
            "random",
            vec![LoopLevel::upto(iters)],
            vec![
                ArrayDecl::zeroed("a", ARRAY_LEN),
                ArrayDecl::with_values("b", init),
            ],
            stmts,
        ).expect("generated kernels are valid by construction")
    }
}

/// Configurations spanning the dimensions the analysis models: queue depth
/// (serialization), forwarding (squash behavior), and port bandwidth.
fn perf_variants() -> Vec<PrevvConfig> {
    let mut v = vec![
        PrevvConfig::with_depth(8),
        PrevvConfig::prevv16(),
        PrevvConfig::prevv64(),
    ];
    let mut slow = PrevvConfig::prevv16();
    slow.validations_per_cycle = 1;
    slow.retire_per_cycle = 1;
    slow.timing = MemTiming {
        read_latency: 4,
        write_latency: 2,
        read_ports: 1,
        write_ports: 1,
    };
    v.push(slow);
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// The soundness property: the static II bound never exceeds the
    /// measured II. The measured figure includes pipeline fill, so the
    /// comparison scales the bound by (N-1)/N exactly as the PV403
    /// self-check does — a violation after that allowance means the
    /// marked-graph model claimed throughput the hardware cannot deliver.
    #[test]
    fn static_ii_bound_never_exceeds_measured_ii(spec in kernel(), variant in 0usize..4) {
        let configs = perf_variants();
        let config = configs[variant % configs.len()].clone();
        let synth = prevv::ir::synthesize(&spec).expect("synthesizes");
        prop_assume!(config.depth >= synth.interface.ports.len());

        let summary = analyze::analyze_perf(
            &synth,
            &PerfOptions { config: config.clone() },
        );
        let run = run_kernel(&spec, Controller::Prevv(config))
            .expect("simulation completes");
        prop_assert!(run.matches_golden);

        let n = summary.iterations as f64;
        prop_assume!(n >= 2.0);
        let measured_ii = summary.measured_ii(run.report.cycles);
        let allowed = summary.ii_bound * (n - 1.0) / n;
        prop_assert!(
            measured_ii + 1e-6 >= allowed,
            "unsound II bound: static {:.3} (fill-scaled {:.3}) vs measured {:.3} \
             ({} cycles / {} iterations, binding {})",
            summary.ii_bound,
            allowed,
            measured_ii,
            run.report.cycles,
            summary.iterations,
            summary.binding_resource,
        );
    }
}

/// The accuracy half on known-good inputs: every stock paper kernel's
/// predicted cycle count lands within 10% of the cycle-accurate simulator
/// under the default PreVV16 configuration.
#[test]
fn stock_kernel_predictions_land_within_ten_percent() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("kernels");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("kernels dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pvk") {
            continue;
        }
        let name = path.file_stem().unwrap().to_str().unwrap().to_string();
        let source = std::fs::read_to_string(&path).expect("readable kernel");
        let spec = parse_kernel(&name, &source).expect("stock kernels parse");
        let synth = prevv::ir::synthesize(&spec).expect("stock kernels synthesize");
        let summary = analyze::analyze_perf(&synth, &PerfOptions::default());
        let run = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16()))
            .expect("stock kernels simulate");
        let measured = run.report.cycles as f64;
        let err = (summary.predicted_cycles - measured).abs() / measured;
        assert!(
            err <= 0.10,
            "{name}: predicted {:.0} cycles vs measured {measured:.0} ({:.1}% off)",
            summary.predicted_cycles,
            err * 100.0
        );
        checked += 1;
    }
    assert_eq!(checked, 5, "all five stock kernels are covered");
}
