//! Offline replay of the pinned fuzz corpus.
//!
//! `tests/fuzz_corpus/` holds 32 generator-produced kernels (as `.pvk`
//! text) plus `digests.tsv`, a manifest of the expected outcome digest for
//! every `(kernel, backend/scheduler)` pair, produced by
//! `runkernel --fuzz 32 --seed 0xPREVV --corpus-out tests/fuzz_corpus`.
//!
//! This test replays the corpus through the differential oracle *without
//! the generator*: it parses the committed text, re-runs every backend
//! under both schedulers, and compares digests against the manifest. Any
//! engine, controller, scheduler, or parser change that shifts observable
//! behavior on these shapes fails here, offline and deterministically.
//! To re-pin after an intentional change, rerun the command above.
//!
//! The corpus is replayed in four shards so `cargo test` runs them in
//! parallel.

use std::collections::BTreeMap;
use std::path::Path;

use prevv::diffcheck::{check_kernel, DiffOptions};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fuzz_corpus"))
}

/// Expected digests per kernel file, label-ordered as emitted.
fn manifest() -> BTreeMap<String, Vec<(String, u64)>> {
    let text = std::fs::read_to_string(corpus_dir().join("digests.tsv"))
        .expect("tests/fuzz_corpus/digests.tsv exists");
    let mut out: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let mut cols = line.split('\t');
        let (file, backend, digest) = (
            cols.next().expect("file column"),
            cols.next().expect("backend column"),
            cols.next().expect("digest column"),
        );
        let digest =
            u64::from_str_radix(digest.strip_prefix("0x").expect("0x-prefixed digest"), 16)
                .expect("hex digest");
        out.entry(file.to_string())
            .or_default()
            .push((backend.to_string(), digest));
    }
    assert_eq!(out.len(), 32, "corpus holds 32 pinned kernels");
    out
}

fn replay_shard(shard: usize, shards: usize) {
    let manifest = manifest();
    for (i, (file, expected)) in manifest.iter().enumerate() {
        if i % shards != shard {
            continue;
        }
        let path = corpus_dir().join(file);
        let source =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let name = file.trim_end_matches(".pvk");
        let spec = prevv::ir::parse::parse_kernel(name, &source)
            .unwrap_or_else(|e| panic!("{file} no longer parses: {e}"));
        let verdict = check_kernel(&spec, &DiffOptions::default());
        assert!(
            verdict.passed(),
            "{file} violates the oracle contract: {:?}",
            verdict
                .failures
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            &verdict.digests, expected,
            "{file}: digests drifted from the pinned manifest \
             (re-pin with `runkernel --fuzz 32 --seed 0xPREVV --corpus-out tests/fuzz_corpus` \
             if the change is intentional)"
        );
    }
}

#[test]
fn corpus_shard_0_replays() {
    replay_shard(0, 4);
}

#[test]
fn corpus_shard_1_replays() {
    replay_shard(1, 4);
}

#[test]
fn corpus_shard_2_replays() {
    replay_shard(2, 4);
}

#[test]
fn corpus_shard_3_replays() {
    replay_shard(3, 4);
}
