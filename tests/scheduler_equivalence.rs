//! End-to-end scheduler equivalence: the event-driven dirty-set fixpoint
//! must be observationally identical to the dense reference sweep through
//! the whole stack — synthesized kernels, a PreVV controller that actually
//! squashes and replays, and randomized memory timings. The substrate-level
//! version of this property (hand-built netlists, divergence diagnostics)
//! lives in `crates/dataflow/tests/scheduler.rs`; this file asserts it
//! survives composition with real controllers.

use proptest::prelude::*;

use prevv::kernels::{extra, paper};
use prevv::{
    run_kernel_with, Controller, KernelSpec, MemTiming, PrevvConfig, Scheduler, SimConfig,
    SynthOptions,
};

fn run(spec: &KernelSpec, config: PrevvConfig, scheduler: Scheduler) -> prevv::RunResult {
    let sim = SimConfig {
        scheduler,
        ..SimConfig::default()
    };
    run_kernel_with(
        spec,
        Controller::Prevv(config),
        &SynthOptions::default(),
        &sim,
    )
    .expect("simulation completes")
}

/// Asserts the full observable outcome matches: engine report (cycles,
/// transfers, stalls, squashes, replays, per-channel attribution), final
/// memory, squash log, and golden verdict.
fn assert_equivalent(spec: &KernelSpec, config: PrevvConfig) {
    let dense = run(spec, config.clone(), Scheduler::Dense);
    let event = run(spec, config, Scheduler::EventDriven);
    if let Some(diff) = dense.report.diff(&event.report) {
        panic!("{}: schedulers disagree: {diff}", spec.name);
    }
    assert_eq!(dense.arrays, event.arrays, "{}: final memory", spec.name);
    assert_eq!(
        dense.squash_log, event.squash_log,
        "{}: squash log",
        spec.name
    );
    assert_eq!(dense.matches_golden, event.matches_golden);
    assert!(dense.matches_golden, "{}: golden check", spec.name);
}

/// The five stock kernels under the default PreVV configuration — the
/// acceptance bar for making event-driven the default scheduler.
#[test]
fn schedulers_agree_on_all_stock_kernels() {
    let b: Vec<i64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    let specs = [
        extra::fig2a(16, b),
        extra::guarded_update(24, 3),
        extra::histogram(32, 8, 7),
        paper::polyn_mult(12),
        paper::triangular(10),
    ];
    for spec in &specs {
        assert_equivalent(spec, PrevvConfig::default());
    }
}

/// The serial reduction chains every iteration through one address, so
/// premature execution without forwarding mis-speculates repeatedly; the
/// schedulers must agree on every squash event, not just the totals.
#[test]
fn schedulers_agree_under_squash_and_replay() {
    let spec = extra::serial_reduction(48);
    let mut config = PrevvConfig::with_depth(16);
    config.forwarding = false;
    config.timing = MemTiming {
        read_latency: 3,
        write_latency: 2,
        read_ports: 1,
        write_ports: 1,
    };
    let dense = run(&spec, config.clone(), Scheduler::Dense);
    assert!(
        dense.report.squashes > 0,
        "stimulus must actually squash (got {})",
        dense.report.squashes
    );
    assert_equivalent(&spec, config);
}

fn timing_strategy() -> impl Strategy<Value = MemTiming> {
    (1u32..5, 1u32..4, 1u32..3).prop_map(|(read_latency, write_latency, read_ports)| MemTiming {
        read_latency,
        write_latency,
        read_ports,
        write_ports: 1,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized memory timings, queue depths, and forwarding settings over
    /// the squash-prone kernels: every draw must be scheduler-invariant.
    #[test]
    fn schedulers_agree_under_random_timing(
        kernel in 0usize..3,
        timing in timing_strategy(),
        depth in 4usize..32,
        forwarding in any::<bool>(),
    ) {
        let spec = match kernel {
            0 => extra::fig2a(12, vec![1; 12]),
            1 => extra::serial_reduction(12),
            _ => extra::histogram(16, 4, 11),
        };
        let ports = prevv::ir::synthesize(&spec).expect("synth").interface.ports.len();
        prop_assume!(depth >= ports);
        let mut config = PrevvConfig::with_depth(depth);
        config.timing = timing;
        config.forwarding = forwarding;
        let dense = run(&spec, config.clone(), Scheduler::Dense);
        let event = run(&spec, config, Scheduler::EventDriven);
        prop_assert!(
            dense.report.diff(&event.report).is_none(),
            "{}: {}",
            spec.name,
            dense.report.diff(&event.report).unwrap()
        );
        prop_assert_eq!(&dense.arrays, &event.arrays);
        prop_assert_eq!(&dense.squash_log, &event.squash_log);
        prop_assert!(dense.matches_golden);
    }
}
