//! Fixture tests for the static analyzer: the `kernels/bad/` sources must
//! produce exactly the advertised diagnostic codes (kernel-level PV0xx and
//! circuit-level PV1xx alike), the stock paper kernels must lint clean of
//! errors, and the PV004 arbiter bypass must be active (and correct) on a
//! real paper kernel — with the symbolic dependence engine alone proving
//! every bypassed pair.

use std::path::PathBuf;

use prevv::analyze::symdep::{classify_accesses, PairClass};
use prevv::analyze::{self, AnalyzeOptions, Code, ControllerModel, Severity};
use prevv::ir::parse::parse_kernel;
use prevv::{
    run_kernel, run_kernel_with, CircuitOptions, Controller, PrevvConfig, SimConfig, SynthOptions,
};

fn read_fixture(rel: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("fixture has a stem")
        .to_string();
    (name, source)
}

#[test]
fn out_of_bounds_fixture_is_pv001_and_refused_by_synthesis() {
    let (name, source) = read_fixture("kernels/bad/oob.pvk");
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(report.has_errors());
    let d = report.with_code(Code::OutOfBounds);
    assert_eq!(d.len(), 1, "exactly one PV001: {:?}", report.diagnostics);
    assert_eq!(d[0].severity, Severity::Error);

    // Checked synthesis refuses the kernel with the PV001 report attached.
    let spec = parse_kernel(&name, &source).expect("parses");
    match analyze::synthesize(&spec) {
        Err(analyze::AnalyzeError::Rejected(r)) => {
            assert!(!r.with_code(Code::OutOfBounds).is_empty());
        }
        other => panic!("expected PV001 rejection, got {other:?}"),
    }
}

#[test]
fn undeclared_array_fixture_is_pv000() {
    let (name, source) = read_fixture("kernels/bad/undeclared.pvk");
    assert!(parse_kernel(&name, &source).is_err());
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(report.has_errors());
    let d = report.with_code(Code::Parse);
    assert_eq!(d.len(), 1, "exactly one PV000: {:?}", report.diagnostics);
    assert!(d[0].span.is_some(), "parse errors carry their offset");
}

#[test]
fn guarded_fixture_is_pv002_note_normally_and_error_without_fake_tokens() {
    let (name, source) = read_fixture("kernels/bad/guarded_nofake.pvk");
    let normal = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(!normal.has_errors(), "fake tokens make the shape safe");
    assert_eq!(normal.with_code(Code::DeadlockRisk).len(), 1);
    assert_eq!(
        normal.with_code(Code::DeadlockRisk)[0].severity,
        Severity::Note
    );

    let no_fakes = analyze::lint_source(
        &name,
        &source,
        &AnalyzeOptions {
            fake_tokens: false,
            ..AnalyzeOptions::default()
        },
    );
    assert!(no_fakes.has_errors(), "prevv-lint exits nonzero here");
    assert_eq!(
        no_fakes.with_code(Code::DeadlockRisk)[0].severity,
        Severity::Error
    );
}

#[test]
fn stock_guarded_kernel_emits_the_pv002_note() {
    let (name, source) = read_fixture("kernels/guarded.pvk");
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(!report.has_errors());
    let d = report.with_code(Code::DeadlockRisk);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].severity, Severity::Note);
}

#[test]
fn all_stock_kernels_lint_clean_of_errors() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("kernels");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("kernels dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pvk") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable");
        let name = path.file_stem().and_then(|s| s.to_str()).expect("stem");
        let report = analyze::lint_source(name, &source, &AnalyzeOptions::default());
        assert!(
            !report.has_errors(),
            "{name} must lint clean of errors:\n{}",
            report.render(name, Some(&source))
        );
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected the five stock kernels, saw {checked}"
    );
}

#[test]
fn every_fixture_diagnostic_is_emittable_as_json() {
    for rel in [
        "kernels/bad/oob.pvk",
        "kernels/bad/undeclared.pvk",
        "kernels/bad/guarded_nofake.pvk",
        "kernels/guarded.pvk",
        "kernels/fig2a.pvk",
    ] {
        let (name, source) = read_fixture(rel);
        let report = analyze::lint_source(
            &name,
            &source,
            &AnalyzeOptions {
                fake_tokens: false,
                ..AnalyzeOptions::default()
            },
        );
        let json = report.to_json(Some(&source));
        assert!(json.starts_with('{') && json.ends_with('}'));
        for d in &report.diagnostics {
            let dj = d.to_json(Some(&source));
            assert!(
                json.contains(&dj),
                "report JSON embeds every diagnostic's JSON"
            );
            assert!(dj.contains(&format!("\"code\":\"{}\"", d.code)));
            assert!(dj.contains(&format!("\"severity\":\"{}\"", d.severity)));
        }
    }
}

#[test]
fn combinational_loop_fixture_is_pv103_under_direct_memory_only() {
    let (name, source) = read_fixture("kernels/bad/combinational_loop.pvk");

    // Against a combinational direct memory, the load→store value path
    // closes a zero-slack handshake cycle: exactly one PV103, as an error.
    let direct = analyze::lint_source_with_circuit(
        &name,
        &source,
        &AnalyzeOptions::default(),
        &CircuitOptions {
            controller: ControllerModel::Direct,
        },
    );
    assert!(direct.has_errors());
    let d = direct.with_code(Code::UnbufferedCycle);
    assert_eq!(d.len(), 1, "exactly one PV103: {:?}", direct.diagnostics);
    assert_eq!(d[0].severity, Severity::Error);

    // A queued controller has elastic slots on the same cycle, so the
    // identical netlist lints clean under the default (premature-queue)
    // controller model.
    let queued = analyze::lint_source_with_circuit(
        &name,
        &source,
        &AnalyzeOptions::default(),
        &CircuitOptions::default(),
    );
    assert!(
        !queued.has_errors(),
        "queued controller breaks the cycle:\n{}",
        queued.render(&name, Some(&source))
    );

    // Checked synthesis refuses the kernel when the target memory model is
    // combinational, with PV103 in the rejection report.
    let spec = parse_kernel(&name, &source).expect("parses");
    let opts = AnalyzeOptions {
        circuit_controller: Some(ControllerModel::Direct),
        ..AnalyzeOptions::default()
    };
    match analyze::synthesize_with(&spec, &SynthOptions::default(), &opts) {
        Err(analyze::AnalyzeError::Rejected(r)) => {
            assert!(!r.with_code(Code::UnbufferedCycle).is_empty());
        }
        other => panic!("expected PV103 rejection, got {other:?}"),
    }
}

#[test]
fn undersized_queue_fixture_is_pv104_and_refused_by_synthesis() {
    let (name, source) = read_fixture("kernels/bad/undersized_queue.pvk");

    // 17 memory ops per iteration against the default capacity of 16:
    // PV104 fires as an error, anchored to the offending statement.
    let report = analyze::lint_source_with_circuit(
        &name,
        &source,
        &AnalyzeOptions::default(),
        &CircuitOptions::default(),
    );
    assert!(report.has_errors());
    let d = report.with_code(Code::FrontierCapacity);
    assert_eq!(d.len(), 1, "exactly one PV104: {:?}", report.diagnostics);
    assert_eq!(d[0].severity, Severity::Error);
    assert!(d[0].span.is_some(), "PV104 points at the statement");

    // With the kernel-level depth raised past the op count, PV003 no longer
    // masks the circuit check: an explicitly undersized controller model is
    // refused on PV104 alone.
    let spec = parse_kernel(&name, &source).expect("parses");
    let opts = AnalyzeOptions {
        depth: 32,
        circuit_controller: Some(ControllerModel::Queue { capacity: 16 }),
        ..AnalyzeOptions::default()
    };
    match analyze::synthesize_with(&spec, &SynthOptions::default(), &opts) {
        Err(analyze::AnalyzeError::Rejected(r)) => {
            assert!(r.with_code(Code::QueueDepth).is_empty(), "PV003 passes");
            assert!(!r.with_code(Code::FrontierCapacity).is_empty());
        }
        other => panic!("expected PV104 rejection, got {other:?}"),
    }
}

/// Negative fixtures for the circuit pass: every stock kernel's synthesized
/// netlist is free of PV1xx findings under the default controller model.
#[test]
fn all_stock_kernels_are_circuit_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("kernels");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("kernels dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pvk") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable");
        let name = path.file_stem().and_then(|s| s.to_str()).expect("stem");
        let report = analyze::lint_source_with_circuit(
            name,
            &source,
            &AnalyzeOptions::default(),
            &CircuitOptions::default(),
        );
        let circuit_findings: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code.as_str().starts_with("PV1"))
            .collect();
        assert!(
            circuit_findings.is_empty(),
            "{name} must be free of PV1xx findings: {circuit_findings:?}"
        );
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected the five stock kernels, saw {checked}"
    );
}

/// Acceptance: fig2a's three affine `b` pairs are provably disjoint, the
/// arbiter is bypassed for them at synthesis, and the bypassed circuit
/// still matches the golden interpreter (with the runtime-dependent `a`
/// pair still validated).
#[test]
fn fig2a_simulates_with_bypassed_arbiter_and_matches_golden() {
    let (name, source) = read_fixture("kernels/fig2a.pvk");
    let spec = parse_kernel(&name, &source).expect("parses");

    let bypassing = prevv::ir::synthesize(&spec).expect("synthesizes");
    assert_eq!(bypassing.bypassed.len(), 3, "three affine b-pairs bypassed");
    assert_eq!(
        bypassing.interface.pairs.len(),
        bypassing.deps.pairs.len() - 3,
        "the validated set shrinks by the bypassed pairs"
    );

    let run = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
    assert!(run.matches_golden, "bypassed arbiter still matches golden");

    // The conservative circuit (bypass disabled) agrees, so the bypass is
    // an optimization, not a behavior change.
    let conservative = run_kernel_with(
        &spec,
        Controller::Prevv(PrevvConfig::prevv16()),
        &SynthOptions {
            bypass_safe_pairs: false,
            ..SynthOptions::default()
        },
        &SimConfig::default(),
    )
    .expect("runs");
    assert!(conservative.matches_golden);
    assert_eq!(run.arrays, conservative.arrays);
}

/// The `kernels/bad/replay_livelock.pvk` fixture: with forwarding disabled
/// the same-address `a[0]` accumulation squashes and replays iteration 1
/// forever — PV202, pinned down to the code, severity, span text, and
/// counterexample size. The default configuration (forwarding on) is clean.
#[test]
fn replay_livelock_fixture_is_pv202_with_short_counterexample() {
    let (name, source) = read_fixture("kernels/bad/replay_livelock.pvk");
    let spec = parse_kernel(&name, &source).expect("parses");

    let opts = analyze::ProtocolOptions::for_config(&PrevvConfig {
        forwarding: false,
        ..PrevvConfig::default()
    });
    let result = analyze::check_protocol(&spec, &opts).expect("checks");
    assert!(result.report.has_errors());
    let d = result.report.with_code(Code::SquashLivelock);
    assert_eq!(d.len(), 1, "exactly one PV202: {:?}", result.report);
    assert_eq!(d[0].severity, Severity::Error);
    let span = d[0].span.expect("PV202 is span-annotated");
    assert_eq!(
        &source[span.start..span.end],
        "a[0]",
        "anchored at the livelocking load"
    );

    let cex = result
        .counterexamples
        .iter()
        .find(|c| c.code == Code::SquashLivelock)
        .expect("PV202 carries a counterexample");
    assert!(
        !cex.events.is_empty() && cex.events.len() <= 25,
        "minimal lasso, got {} events",
        cex.events.len()
    );
    assert!(cex.cycle_from.is_some(), "a livelock trace is a lasso");
    let outcome = analyze::replay_counterexample(&spec, &opts, cex).expect("replays");
    assert!(outcome.cycle_closed, "the lasso re-closes under replay");

    // Forwarding (the default) lets the replayed load take the resident
    // store's value: the identical kernel proves clean.
    let default_opts = analyze::ProtocolOptions::for_config(&PrevvConfig::default());
    let clean = analyze::check_protocol(&spec, &default_opts).expect("checks");
    assert!(
        !clean.report.has_errors(),
        "forwarding resolves the livelock:\n{}",
        clean.report.render(&name, Some(&source))
    );
}

/// The `kernels/bad/queue_too_small_mc.pvk` fixture: a 3-op stencil against
/// a depth-2 premature queue wedges on admission — PV203, pinned down to
/// the code, severity, span text, and counterexample size; the trace
/// replays to a genuinely stuck state. One extra slot resolves it.
#[test]
fn queue_too_small_fixture_is_pv203_with_short_counterexample() {
    let (name, source) = read_fixture("kernels/bad/queue_too_small_mc.pvk");
    let spec = parse_kernel(&name, &source).expect("parses");

    let opts = analyze::ProtocolOptions::for_config(&PrevvConfig {
        depth: 2,
        ..PrevvConfig::default()
    });
    let result = analyze::check_protocol(&spec, &opts).expect("checks");
    assert!(result.report.has_errors());
    let d = result.report.with_code(Code::QueueWedge);
    assert_eq!(d.len(), 1, "exactly one PV203: {:?}", result.report);
    assert_eq!(d[0].severity, Severity::Error);
    let span = d[0].span.expect("PV203 is span-annotated");
    assert_eq!(
        &source[span.start..span.end],
        "a[i]",
        "anchored at the unadmittable op"
    );

    let cex = result
        .counterexamples
        .iter()
        .find(|c| c.code == Code::QueueWedge)
        .expect("PV203 carries a counterexample");
    assert!(
        !cex.events.is_empty() && cex.events.len() <= 25,
        "minimal wedge trace, got {} events",
        cex.events.len()
    );
    let outcome = analyze::replay_counterexample(&spec, &opts, cex).expect("replays");
    assert!(outcome.deadlock, "the trace ends in a stuck state");
    assert!(outcome.admission_blocked, "stuck specifically on admission");

    // The static per-iteration bound (PV003) agrees with the reachability
    // result here, and depth 3 resolves both.
    let static_report = analyze::lint_source(
        &name,
        &source,
        &AnalyzeOptions {
            depth: 2,
            ..AnalyzeOptions::default()
        },
    );
    assert!(!static_report.with_code(Code::QueueDepth).is_empty());
    let deeper = analyze::ProtocolOptions::for_config(&PrevvConfig {
        depth: 3,
        ..PrevvConfig::default()
    });
    let clean = analyze::check_protocol(&spec, &deeper).expect("checks");
    assert!(
        !clean.report.has_errors(),
        "depth 3 admits the full iteration:\n{}",
        clean.report.render(&name, Some(&source))
    );
}

/// The `kernels/bad/deep_wedge.pvk` fixture: a distance-2 cross-iteration
/// hazard whose squash livelock (forwarding off) is only reachable once
/// three iterations are in flight together. Proof the horizon moved: the
/// old 2-iteration default proves it "clean"; the deeper default finds the
/// PV202 lasso — pinned to code, severity, and trace length.
#[test]
fn deep_wedge_fixture_fails_only_at_the_deeper_horizon() {
    let (name, source) = read_fixture("kernels/bad/deep_wedge.pvk");
    let spec = parse_kernel(&name, &source).expect("parses");

    let no_forwarding = PrevvConfig {
        forwarding: false,
        ..PrevvConfig::default()
    };

    // The old default horizon (2 iterations) never sees the colliding
    // iterations in flight together: falsely clean.
    let shallow = analyze::ProtocolOptions {
        iterations: 2,
        ..analyze::ProtocolOptions::for_config(&no_forwarding)
    };
    let clean = analyze::check_protocol(&spec, &shallow).expect("checks");
    assert!(
        !clean.report.has_errors(),
        "a 2-iteration horizon cannot reach the wedge:\n{}",
        clean.report.render(&name, Some(&source))
    );

    // The new default horizon (>= 3 iterations deep) reaches it.
    let opts = analyze::ProtocolOptions::for_config(&no_forwarding);
    let result = analyze::check_protocol(&spec, &opts).expect("checks");
    assert!(result.report.has_errors());
    let d = result.report.with_code(Code::SquashLivelock);
    assert_eq!(d.len(), 1, "exactly one PV202: {:?}", result.report);
    assert_eq!(d[0].severity, Severity::Error);
    assert!(d[0].span.is_some(), "PV202 is span-annotated");

    let cex = result
        .counterexamples
        .iter()
        .find(|c| c.code == Code::SquashLivelock)
        .expect("PV202 carries a counterexample");
    assert!(
        !cex.events.is_empty() && cex.events.len() <= 40,
        "bounded lasso, got {} events",
        cex.events.len()
    );
    assert!(cex.cycle_from.is_some(), "a livelock trace is a lasso");
    let outcome = analyze::replay_counterexample(&spec, &opts, cex).expect("replays");
    assert!(outcome.cycle_closed, "the lasso re-closes under replay");

    // Forwarding (the default config) hands the premature load the resident
    // store's value instead of squashing: the identical kernel is clean
    // even at the deep horizon.
    let defaults = analyze::ProtocolOptions::for_config(&PrevvConfig::default());
    let forwarded = analyze::check_protocol(&spec, &defaults).expect("checks");
    assert!(
        !forwarded.report.has_errors(),
        "forwarding resolves the wedge:\n{}",
        forwarded.report.render(&name, Some(&source))
    );
}

/// The symbolic GCD/Banerjee fast path alone proves every pair that
/// brute-force enumeration proves on fig2a: all three affine `b` pairs are
/// classified same-iteration-only (their collisions are program-order
/// protected), and the runtime-dependent `a` pair stays unproven.
#[test]
fn fig2a_affine_pairs_are_proven_by_the_symbolic_engine_alone() {
    let (name, source) = read_fixture("kernels/fig2a.pvk");
    let spec = parse_kernel(&name, &source).expect("parses");
    let deps = prevv::ir::depend::analyze(&spec);

    let mut affine = 0;
    let mut runtime = 0;
    for pair in &deps.pairs {
        let load = &deps.ops[pair.load];
        let store = &deps.ops[pair.store];
        if load.index.is_runtime_dependent() || store.index.is_runtime_dependent() {
            runtime += 1;
            continue;
        }
        affine += 1;
        assert_eq!(
            classify_accesses(&spec, &load.index, &store.index, load.array),
            PairClass::SameIterationOnly,
            "symbolic engine must prove the affine pair (load {} / store {})",
            pair.load,
            pair.store,
        );
    }
    assert_eq!(affine, 3, "fig2a has three affine b-pairs");
    assert_eq!(runtime, 1, "and one runtime-dependent a-pair");
}

/// The `kernels/bad/throughput_cliff.pvk` fixture: a perfectly parallel
/// stream kernel (three loads + one store per iteration, no hazards) whose
/// premature queue becomes the binding resource once undersized. At
/// `--depth 4` PV402 fires naming the queue with the §V-A matched-sizing
/// recommendation; at the default depth the PV4xx pass is clean. The cliff
/// is real: simulating at depth 4 costs over 1.5× the depth-16 cycles
/// while staying deadlock- and squash-free, so nothing but the queue's
/// serialization explains the loss.
#[test]
fn throughput_cliff_fixture_is_pv402_with_a_real_cliff() {
    let (name, source) = read_fixture("kernels/bad/throughput_cliff.pvk");

    let shallow_perf = analyze::PerfOptions {
        config: PrevvConfig::with_depth(4),
    };
    let (report, summary) = analyze::lint_source_with_perf(
        &name,
        &source,
        &AnalyzeOptions::default(),
        None,
        &shallow_perf,
    );
    let summary = summary.expect("perf pass produces a summary");
    let d = report.with_code(Code::QueueBound);
    assert_eq!(d.len(), 1, "exactly one PV402: {:?}", report.diagnostics);
    assert_eq!(d[0].severity, Severity::Warning);
    assert!(
        d[0].message.contains("premature-queue") && d[0].message.contains("depth 4"),
        "PV402 names the premature queue and its depth: {}",
        d[0].message
    );
    let help = d[0].help.as_deref().expect("PV402 carries sizing help");
    assert!(
        help.contains("depth_q") && help.contains('8'),
        "help recommends the §V-A matched depth: {help}"
    );
    assert_eq!(summary.recommended_depth, Some(8));
    let sugg = d[0]
        .suggestion
        .as_ref()
        .expect("the depth_q directive makes the resize machine-applicable");
    assert_eq!(sugg.replacement, "depth_q = 8;");
    assert!(
        summary.predicted_ii >= 2.0 * summary.ii_bound - 1e-9,
        "queue serialization ({:.2}) dominates the datapath bound ({:.2})",
        summary.predicted_ii,
        summary.ii_bound
    );

    // Without the in-source directive (which pins the undersized depth 4
    // and overrides any configured default), the default depth absorbs the
    // stream: no PV402, no recommendation.
    let undirected: String = source
        .lines()
        .filter(|l| !l.trim_start().starts_with("depth_q"))
        .collect::<Vec<_>>()
        .join("\n");
    let (clean_report, clean_summary) = analyze::lint_source_with_perf(
        &name,
        &undirected,
        &AnalyzeOptions::default(),
        None,
        &analyze::PerfOptions::default(),
    );
    assert!(clean_report.with_code(Code::QueueBound).is_empty());
    assert_eq!(clean_summary.expect("summary").recommended_depth, None);

    // The predicted cliff exists in simulation, without deadlocking.
    let spec = parse_kernel(&name, &source).expect("parses");
    let shallow = run_kernel(&spec, Controller::Prevv(PrevvConfig::with_depth(4)))
        .expect("depth 4 throttles but never deadlocks");
    let deep = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
    assert!(shallow.matches_golden && deep.matches_golden);
    assert!(
        shallow.squash_log.is_empty() && deep.squash_log.is_empty(),
        "the slowdown is pure queue serialization, not replay"
    );
    assert!(
        shallow.report.cycles as f64 > 1.5 * deep.report.cycles as f64,
        "undersizing the queue must cost >1.5x the cycles ({} vs {})",
        shallow.report.cycles,
        deep.report.cycles
    );
}

/// The `kernels/bad/infeasible_guard.pvk` fixture: the interval domain
/// proves `i < 0` false on every iteration of `0 <= i < 8`, so PV501 names
/// the dead statement with a machine-applicable removal — and the patched
/// source must re-lint free of PV501 (`--fix` is a fixpoint, not a loop).
#[test]
fn infeasible_guard_fixture_is_pv501_with_a_removal_fix() {
    let (name, source) = read_fixture("kernels/bad/infeasible_guard.pvk");
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(!report.has_errors(), "PV501 is a warning, not an error");

    let d = report.with_code(Code::InfeasibleGuard);
    assert_eq!(d.len(), 1, "exactly one PV501: {:?}", report.diagnostics);
    assert_eq!(d[0].severity, Severity::Warning);
    let span = d[0].span.expect("PV501 points at the dead statement");
    assert_eq!(&source[span.start..span.end], "if (i < 0) a[i] = 1;");

    let sugg = d[0]
        .suggestion
        .as_ref()
        .expect("a multi-statement kernel makes the removal machine-applicable");
    assert!(sugg.replacement.is_empty(), "the fix deletes the statement");

    // Applying the fix leaves a valid kernel that is clean of PV501.
    let mut fixed = source.clone();
    fixed.replace_range(sugg.span.start..sugg.span.end, &sugg.replacement);
    let refixed = analyze::lint_source(&name, &fixed, &AnalyzeOptions::default());
    assert!(
        refixed.with_code(Code::Parse).is_empty(),
        "fix must re-parse"
    );
    assert!(
        refixed.with_code(Code::InfeasibleGuard).is_empty(),
        "the fix discharges PV501: {:?}",
        refixed.diagnostics
    );
}

/// The `kernels/bad/range_oob.pvk` fixture: the store address `a[b[i]]` is
/// runtime-indirect, so the affine PV001 check is blind — but `b` is
/// store-free and its initializer puts 9 in range, past the end of `a[4]`,
/// so the value analysis proves the violation where the dependence engine
/// alone could only shrug.
#[test]
fn range_oob_fixture_is_pv500_where_pv001_is_blind() {
    let (name, source) = read_fixture("kernels/bad/range_oob.pvk");
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());

    assert!(
        report.with_code(Code::OutOfBounds).is_empty(),
        "the affine PV001 check must be blind to the indirect index"
    );
    let d = report.with_code(Code::RangeOutOfBounds);
    assert_eq!(d.len(), 1, "exactly one PV500: {:?}", report.diagnostics);
    assert_eq!(d[0].severity, Severity::Warning);
    assert!(
        d[0].message.contains('9') && d[0].message.contains("length 4"),
        "PV500 names the witness index and the array bound: {}",
        d[0].message
    );
    assert!(d[0].span.is_some(), "PV500 points at the offending store");
}
