//! Fixture tests for the static analyzer: the `kernels/bad/` sources must
//! produce exactly the advertised diagnostic codes, the stock paper kernels
//! must lint clean of errors, and the PV004 arbiter bypass must be active
//! (and correct) on a real paper kernel.

use std::path::PathBuf;

use prevv::analyze::{self, AnalyzeOptions, Code, Severity};
use prevv::ir::parse::parse_kernel;
use prevv::{run_kernel, run_kernel_with, Controller, PrevvConfig, SimConfig, SynthOptions};

fn read_fixture(rel: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("fixture has a stem")
        .to_string();
    (name, source)
}

#[test]
fn out_of_bounds_fixture_is_pv001_and_refused_by_synthesis() {
    let (name, source) = read_fixture("kernels/bad/oob.pvk");
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(report.has_errors());
    let d = report.with_code(Code::OutOfBounds);
    assert_eq!(d.len(), 1, "exactly one PV001: {:?}", report.diagnostics);
    assert_eq!(d[0].severity, Severity::Error);

    // Checked synthesis refuses the kernel with the PV001 report attached.
    let spec = parse_kernel(&name, &source).expect("parses");
    match analyze::synthesize(&spec) {
        Err(analyze::AnalyzeError::Rejected(r)) => {
            assert!(!r.with_code(Code::OutOfBounds).is_empty());
        }
        other => panic!("expected PV001 rejection, got {other:?}"),
    }
}

#[test]
fn undeclared_array_fixture_is_pv000() {
    let (name, source) = read_fixture("kernels/bad/undeclared.pvk");
    assert!(parse_kernel(&name, &source).is_err());
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(report.has_errors());
    let d = report.with_code(Code::Parse);
    assert_eq!(d.len(), 1, "exactly one PV000: {:?}", report.diagnostics);
    assert!(d[0].span.is_some(), "parse errors carry their offset");
}

#[test]
fn guarded_fixture_is_pv002_note_normally_and_error_without_fake_tokens() {
    let (name, source) = read_fixture("kernels/bad/guarded_nofake.pvk");
    let normal = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(!normal.has_errors(), "fake tokens make the shape safe");
    assert_eq!(normal.with_code(Code::DeadlockRisk).len(), 1);
    assert_eq!(
        normal.with_code(Code::DeadlockRisk)[0].severity,
        Severity::Note
    );

    let no_fakes = analyze::lint_source(
        &name,
        &source,
        &AnalyzeOptions {
            fake_tokens: false,
            ..AnalyzeOptions::default()
        },
    );
    assert!(no_fakes.has_errors(), "prevv-lint exits nonzero here");
    assert_eq!(
        no_fakes.with_code(Code::DeadlockRisk)[0].severity,
        Severity::Error
    );
}

#[test]
fn stock_guarded_kernel_emits_the_pv002_note() {
    let (name, source) = read_fixture("kernels/guarded.pvk");
    let report = analyze::lint_source(&name, &source, &AnalyzeOptions::default());
    assert!(!report.has_errors());
    let d = report.with_code(Code::DeadlockRisk);
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].severity, Severity::Note);
}

#[test]
fn all_stock_kernels_lint_clean_of_errors() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("kernels");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("kernels dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pvk") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable");
        let name = path.file_stem().and_then(|s| s.to_str()).expect("stem");
        let report = analyze::lint_source(name, &source, &AnalyzeOptions::default());
        assert!(
            !report.has_errors(),
            "{name} must lint clean of errors:\n{}",
            report.render(name, Some(&source))
        );
        checked += 1;
    }
    assert!(checked >= 5, "expected the five stock kernels, saw {checked}");
}

#[test]
fn every_fixture_diagnostic_is_emittable_as_json() {
    for rel in [
        "kernels/bad/oob.pvk",
        "kernels/bad/undeclared.pvk",
        "kernels/bad/guarded_nofake.pvk",
        "kernels/guarded.pvk",
        "kernels/fig2a.pvk",
    ] {
        let (name, source) = read_fixture(rel);
        let report = analyze::lint_source(
            &name,
            &source,
            &AnalyzeOptions {
                fake_tokens: false,
                ..AnalyzeOptions::default()
            },
        );
        let json = report.to_json(Some(&source));
        assert!(json.starts_with('{') && json.ends_with('}'));
        for d in &report.diagnostics {
            let dj = d.to_json(Some(&source));
            assert!(
                json.contains(&dj),
                "report JSON embeds every diagnostic's JSON"
            );
            assert!(dj.contains(&format!("\"code\":\"{}\"", d.code)));
            assert!(dj.contains(&format!("\"severity\":\"{}\"", d.severity)));
        }
    }
}

/// Acceptance: fig2a's three affine `b` pairs are provably disjoint, the
/// arbiter is bypassed for them at synthesis, and the bypassed circuit
/// still matches the golden interpreter (with the runtime-dependent `a`
/// pair still validated).
#[test]
fn fig2a_simulates_with_bypassed_arbiter_and_matches_golden() {
    let (name, source) = read_fixture("kernels/fig2a.pvk");
    let spec = parse_kernel(&name, &source).expect("parses");

    let bypassing = prevv::ir::synthesize(&spec).expect("synthesizes");
    assert_eq!(bypassing.bypassed.len(), 3, "three affine b-pairs bypassed");
    assert_eq!(
        bypassing.interface.pairs.len(),
        bypassing.deps.pairs.len() - 3,
        "the validated set shrinks by the bypassed pairs"
    );

    let run = run_kernel(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
    assert!(run.matches_golden, "bypassed arbiter still matches golden");

    // The conservative circuit (bypass disabled) agrees, so the bypass is
    // an optimization, not a behavior change.
    let conservative = run_kernel_with(
        &spec,
        Controller::Prevv(PrevvConfig::prevv16()),
        &SynthOptions {
            bypass_safe_pairs: false,
            ..SynthOptions::default()
        },
        &SimConfig::default(),
    )
    .expect("runs");
    assert!(conservative.matches_golden);
    assert_eq!(run.arrays, conservative.arrays);
}
