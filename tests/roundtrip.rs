//! Text round-trip: `parse(render(k)) == k` (modulo spans) for every stock
//! kernel and for 256 generator outputs, plus the pinned shrunk reproducer
//! for the three round-trip bugs the fuzzer surfaced during bring-up
//! (unparseable `min`/`max`, dropped `depth_q`, opaque-shadowing array
//! names — see `tests/fuzz_corpus/regress_minmax_depthq.pvk`).

use prevv::ir::parse::parse_kernel;
use prevv::ir::{pretty, KernelSpec};
use prevv::kernels::gen::{generate, GenConfig};
use prevv::kernels::{extra, paper, suite};

/// Renders, re-parses, and asserts semantic equality. `KernelSpec`'s
/// `PartialEq` already ignores spans but also ignores the depth hint, so
/// the hint is compared explicitly.
fn assert_round_trips(spec: &KernelSpec) {
    let text = pretty::render(spec);
    let reparsed = parse_kernel(&spec.name, &text)
        .unwrap_or_else(|e| panic!("{}: rendered text must re-parse: {e}\n{text}", spec.name));
    assert_eq!(
        &reparsed, spec,
        "{}: round-trip changed the kernel",
        spec.name
    );
    assert_eq!(
        reparsed.depth_hint().map(|(d, _)| d),
        spec.depth_hint().map(|(d, _)| d),
        "{}: round-trip changed the depth_q directive",
        spec.name
    );
}

#[test]
fn stock_kernels_round_trip() {
    let mut stock = paper::all_default();
    stock.extend([
        extra::fig2a(8, (0..8).collect()),
        extra::fig2b(8, 4),
        extra::histogram(16, 8, 1),
        extra::guarded_update(16, 3),
        extra::serial_reduction(16),
        extra::overlapped_pairs(16, 2),
        suite::spmv(8, 4, 1),
        suite::stencil1d(16, 2, 1),
        suite::knapsack(6, 8, 1),
    ]);
    assert!(stock.len() >= 14, "stock kernel set shrank unexpectedly");
    for spec in &stock {
        assert_round_trips(spec);
    }
}

#[test]
fn generated_kernels_round_trip_256() {
    let cfg = GenConfig::default();
    for seed in 0..256u64 {
        assert_round_trips(&generate(seed, &cfg));
    }
}

#[test]
fn pinned_round_trip_reproducer_still_passes() {
    let source = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fuzz_corpus/regress_minmax_depthq.pvk"
    ))
    .expect("pinned reproducer exists");
    let spec = parse_kernel("regress_minmax_depthq", &source).expect("reproducer parses");
    assert_eq!(
        spec.arrays.len(),
        2,
        "h3_8 must parse as an array, not an opaque call"
    );
    assert_eq!(spec.depth_hint().map(|(d, _)| d), Some(16));
    assert_round_trips(&spec);

    // And the full differential oracle must hold on it.
    let verdict = prevv::diffcheck::check_kernel(&spec, &prevv::diffcheck::DiffOptions::default());
    assert!(
        verdict.passed(),
        "reproducer violates the oracle: {:?}",
        verdict
            .failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
}
