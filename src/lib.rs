//! # prevv — premature value validation for dataflow circuits
//!
//! A full-system reproduction of *"PreVV: Eliminating Store Queue via
//! Premature Value Validation for Dataflow Circuit on FPGA"* (DATE 2025) in
//! pure Rust: a cycle-accurate elastic-circuit simulator, a kernel IR with
//! dependence analysis and synthesis, Dynamatic-style LSQ baselines, the
//! PreVV architecture itself, an FPGA resource/timing model, and the
//! benchmark kernels and experiment harness that regenerate every table and
//! figure of the paper. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! This crate is the facade: it re-exports the workspace crates and offers
//! a one-call harness ([`run_kernel`], [`evaluate`]) that synthesizes a
//! kernel, attaches the requested disambiguation controller, simulates to
//! quiescence, checks the result against the golden model, and prices the
//! design.
//!
//! ## Quickstart
//!
//! ```
//! use prevv::{evaluate, Controller};
//! use prevv::kernels::extra;
//!
//! # fn main() -> Result<(), prevv::RunError> {
//! let spec = extra::histogram(64, 8, 42);
//! let lsq = evaluate(&spec, Controller::FastLsq { depth: 16 })?;
//! let prevv = evaluate(&spec, Controller::Prevv(prevv::PrevvConfig::prevv16()))?;
//! assert!(lsq.run.matches_golden && prevv.run.matches_golden);
//! assert!(prevv.design.total().luts < lsq.design.total().luts);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod diffcheck;

pub use prevv_analyze::{
    AnalyzeError, AnalyzeOptions, CircuitOptions, ControllerModel, Diagnostic, Report, Severity,
};
pub use prevv_area::{ControllerKind, DesignReport, Resources};
pub use prevv_core::{PrevvConfig, PrevvError, PrevvMemory, PrevvStats, SquashEvent};
pub use prevv_dataflow::{Scheduler, SimConfig, SimError, SimReport, Simulator, Value};
pub use prevv_ir::{KernelError, KernelSpec, SynthOptions};
pub use prevv_mem::{Lsq, LsqConfig, LsqError, LsqStats, MemTiming, SpecLsq, SpecLsqConfig};

/// Static analysis (lints) over kernels.
pub use prevv_analyze as analyze;
/// Resource and timing models.
pub use prevv_area as area;
/// The PreVV architecture.
pub use prevv_core as prevv_core_crate;
/// The dataflow-circuit substrate.
pub use prevv_dataflow as dataflow;
/// Kernel IR, dependence analysis, synthesis.
pub use prevv_ir as ir;
/// Benchmark kernels.
pub use prevv_kernels as kernels;
/// Memory subsystem and LSQ baselines.
pub use prevv_mem as mem;

/// Which disambiguation controller to attach to a synthesized kernel.
#[derive(Debug, Clone)]
pub enum Controller {
    /// No disambiguation (mis-executes on hazards — demonstration only).
    Direct,
    /// Plain Dynamatic LSQ \[15\].
    Dynamatic {
        /// Load/store queue depth.
        depth: usize,
    },
    /// Fast-allocation LSQ \[8\].
    FastLsq {
        /// Load/store queue depth.
        depth: usize,
    },
    /// Speculative-allocation LSQ (Szafarczyk et al., FPL'23).
    SpecLsq {
        /// Load/store queue depth (also the speculation window).
        depth: usize,
    },
    /// Premature value validation (this paper).
    Prevv(PrevvConfig),
}

impl Controller {
    /// Display name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            Controller::Direct => "direct".into(),
            Controller::Dynamatic { .. } => "[15]".into(),
            Controller::FastLsq { .. } => "[8]".into(),
            Controller::SpecLsq { depth } => format!("spec{depth}"),
            Controller::Prevv(c) => format!("PreVV{}", c.depth),
        }
    }

    /// The [`ControllerModel`] the PV1xx circuit lints should close the
    /// open memory ports with when this controller will be attached.
    pub fn circuit_model(&self) -> ControllerModel {
        match self {
            Controller::Direct => ControllerModel::Direct,
            Controller::Dynamatic { depth }
            | Controller::FastLsq { depth }
            | Controller::SpecLsq { depth } => {
                // An LSQ holds `depth` loads plus `depth` stores.
                ControllerModel::Queue {
                    capacity: 2 * depth,
                }
            }
            Controller::Prevv(c) => ControllerModel::Queue { capacity: c.depth },
        }
    }

    /// The area-model controller kind (Direct prices as zero).
    pub fn area_kind(&self) -> Option<ControllerKind> {
        match self {
            Controller::Direct => None,
            Controller::Dynamatic { depth } => Some(ControllerKind::Dynamatic { depth: *depth }),
            Controller::FastLsq { depth } => Some(ControllerKind::FastLsq { depth: *depth }),
            // The speculative-allocation LSQ keeps the fast-allocation
            // queue structure (same CAMs and encoders) and only moves the
            // allocator off the critical path, so its resource model is
            // priced as the fast LSQ of the same depth.
            Controller::SpecLsq { depth } => Some(ControllerKind::FastLsq { depth: *depth }),
            Controller::Prevv(c) => Some(ControllerKind::Prevv {
                depth: c.depth,
                pair_reduction: c.pair_reduction,
            }),
        }
    }
}

/// Errors of the one-call harness.
#[derive(Debug)]
pub enum RunError {
    /// The kernel failed validation.
    Kernel(KernelError),
    /// The LSQ configuration cannot hold one iteration's operations.
    Lsq(LsqError),
    /// The PreVV configuration cannot hold one iteration's operations.
    Prevv(PrevvError),
    /// The simulation failed (deadlock, timeout, structure).
    Sim(SimError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Kernel(e) => write!(f, "kernel error: {e}"),
            RunError::Lsq(e) => write!(f, "lsq error: {e}"),
            RunError::Prevv(e) => write!(f, "prevv error: {e}"),
            RunError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Kernel(e) => Some(e),
            RunError::Lsq(e) => Some(e),
            RunError::Prevv(e) => Some(e),
            RunError::Sim(e) => Some(e),
        }
    }
}

impl From<KernelError> for RunError {
    fn from(e: KernelError) -> Self {
        RunError::Kernel(e)
    }
}
impl From<LsqError> for RunError {
    fn from(e: LsqError) -> Self {
        RunError::Lsq(e)
    }
}
impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}
impl From<PrevvError> for RunError {
    fn from(e: PrevvError) -> Self {
        RunError::Prevv(e)
    }
}

/// Result of one simulated kernel run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Kernel name.
    pub kernel: String,
    /// Controller display name.
    pub controller: String,
    /// Final contents of every kernel array.
    pub arrays: Vec<Vec<Value>>,
    /// Engine statistics.
    pub report: SimReport,
    /// PreVV-specific statistics (when the controller is PreVV).
    pub prevv: Option<PrevvStats>,
    /// LSQ-specific statistics (when the controller is an LSQ).
    pub lsq: Option<LsqStats>,
    /// Every squash the arbiter detected (PreVV only; empty otherwise).
    pub squash_log: Vec<SquashEvent>,
    /// Did the final memory match the golden model?
    pub matches_golden: bool,
}

/// A run plus its analytic design costs.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The simulated run.
    pub run: RunResult,
    /// Resource and clock-period estimate.
    pub design: DesignReport,
    /// Execution time in microseconds: `cycles × CP`.
    pub exec_time_us: f64,
}

/// Synthesizes `spec`, attaches `controller`, simulates to quiescence and
/// compares against the golden model.
///
/// # Errors
///
/// Returns [`RunError`] if the kernel is malformed, the controller
/// configuration is impossible, or the simulation deadlocks / times out.
pub fn run_kernel(spec: &KernelSpec, controller: Controller) -> Result<RunResult, RunError> {
    run_kernel_with(
        spec,
        controller,
        &SynthOptions::default(),
        &SimConfig::default(),
    )
}

/// [`run_kernel`] with explicit synthesis and simulation options.
///
/// # Errors
///
/// See [`run_kernel`].
pub fn run_kernel_with(
    spec: &KernelSpec,
    controller: Controller,
    synth_opts: &SynthOptions,
    sim_config: &SimConfig,
) -> Result<RunResult, RunError> {
    let mut synth = prevv_ir::synthesize_with(spec, synth_opts)?;
    let controller_name = controller.name();
    let mut prevv_stats = None;
    let mut lsq_stats = None;
    let mut squash_log = None;
    let ram = match &controller {
        Controller::Direct => {
            let (ctrl, ram) =
                prevv_mem::DirectMemory::new(synth.interface.clone(), MemTiming::default());
            synth.netlist.add("mem", ctrl);
            ram
        }
        Controller::Dynamatic { depth } => {
            let (ctrl, ram, stats) =
                Lsq::with_stats(synth.interface.clone(), LsqConfig::dynamatic(*depth))?;
            synth.netlist.add("lsq", ctrl);
            lsq_stats = Some(stats);
            ram
        }
        Controller::FastLsq { depth } => {
            let (ctrl, ram, stats) =
                Lsq::with_stats(synth.interface.clone(), LsqConfig::fast(*depth))?;
            synth.netlist.add("lsq", ctrl);
            lsq_stats = Some(stats);
            ram
        }
        Controller::SpecLsq { depth } => {
            let (ctrl, ram, stats) = prevv_mem::SpecLsq::with_stats(
                synth.interface.clone(),
                prevv_mem::SpecLsqConfig::speculative(*depth),
            )?;
            synth.netlist.add("spec_lsq", ctrl);
            lsq_stats = Some(stats);
            ram
        }
        Controller::Prevv(config) => {
            let (ctrl, ram, stats) =
                PrevvMemory::new(synth.interface.clone(), config.clone(), synth.bus.clone())?;
            squash_log = Some(ctrl.squash_log());
            synth.netlist.add("prevv", ctrl);
            prevv_stats = Some(stats);
            ram
        }
    };

    let mut sim = Simulator::new(synth.netlist, synth.bus)?.with_config(sim_config.clone());
    let report = sim.run()?;

    let ram = ram.borrow();
    let arrays: Vec<Vec<Value>> = synth
        .interface
        .split_ram(ram.image())
        .into_iter()
        .map(<[Value]>::to_vec)
        .collect();
    let gold = prevv_ir::golden::execute(spec);
    let matches_golden = arrays == gold.arrays;

    Ok(RunResult {
        kernel: spec.name.clone(),
        controller: controller_name,
        arrays,
        report,
        prevv: prevv_stats.map(|s| *s.borrow()),
        lsq: lsq_stats.map(|s| *s.borrow()),
        squash_log: squash_log.map(|l| l.borrow().clone()).unwrap_or_default(),
        matches_golden,
    })
}

/// Runs the kernel *and* prices the design: the full Table II data point
/// (cycles, clock period, execution time) plus Table I resources.
///
/// # Errors
///
/// See [`run_kernel`].
pub fn evaluate(spec: &KernelSpec, controller: Controller) -> Result<Evaluation, RunError> {
    let synth = prevv_ir::synthesize(spec)?;
    let design = match controller.area_kind() {
        Some(kind) => prevv_area::estimate(&synth, kind),
        None => DesignReport {
            datapath: prevv_area::datapath_cost(&synth),
            controller: Resources::zero(),
            clock_period_ns: prevv_area::calib::CP_BASE_NS,
        },
    };
    let run = run_kernel(spec, controller)?;
    let exec_time_us = run.report.cycles as f64 * design.clock_period_ns / 1000.0;
    Ok(Evaluation {
        run,
        design,
        exec_time_us,
    })
}

/// A side-by-side evaluation of several controllers on one kernel.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// One evaluation per requested controller, in request order.
    pub points: Vec<Evaluation>,
}

impl Comparison {
    /// Finds a point by its controller display name (e.g. `"PreVV16"`).
    pub fn point(&self, controller_name: &str) -> Option<&Evaluation> {
        self.points
            .iter()
            .find(|e| e.run.controller == controller_name)
    }

    /// LUT ratio `a / b` between two named controllers.
    ///
    /// # Panics
    ///
    /// Panics if either name is not part of this comparison.
    pub fn lut_ratio(&self, a: &str, b: &str) -> f64 {
        let pa = self.point(a).expect("controller a in comparison");
        let pb = self.point(b).expect("controller b in comparison");
        pa.design.total().luts as f64 / pb.design.total().luts as f64
    }

    /// Execution-time ratio `a / b` between two named controllers.
    ///
    /// # Panics
    ///
    /// Panics if either name is not part of this comparison.
    pub fn exec_ratio(&self, a: &str, b: &str) -> f64 {
        let pa = self.point(a).expect("controller a in comparison");
        let pb = self.point(b).expect("controller b in comparison");
        pa.exec_time_us / pb.exec_time_us
    }

    /// True when every point reproduced the golden result.
    pub fn all_correct(&self) -> bool {
        self.points.iter().all(|e| e.run.matches_golden)
    }
}

/// Evaluates one kernel under several controllers — the one-call version of
/// a Table I/II row.
///
/// # Errors
///
/// Propagates the first [`RunError`].
///
/// ```
/// use prevv::{compare, Controller, PrevvConfig};
/// use prevv::kernels::extra;
///
/// # fn main() -> Result<(), prevv::RunError> {
/// let cmp = compare(
///     &extra::histogram(48, 8, 5),
///     [
///         Controller::FastLsq { depth: 16 },
///         Controller::Prevv(PrevvConfig::prevv16()),
///     ],
/// )?;
/// assert!(cmp.all_correct());
/// assert!(cmp.lut_ratio("PreVV16", "[8]") < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn compare(
    spec: &KernelSpec,
    controllers: impl IntoIterator<Item = Controller>,
) -> Result<Comparison, RunError> {
    let points = controllers
        .into_iter()
        .map(|c| evaluate(spec, c))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Comparison { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_kernels::extra;

    #[test]
    fn harness_runs_all_controllers_on_the_histogram() {
        let spec = extra::histogram(48, 8, 7);
        for ctrl in [
            Controller::Dynamatic { depth: 16 },
            Controller::FastLsq { depth: 16 },
            Controller::SpecLsq { depth: 16 },
            Controller::Prevv(PrevvConfig::prevv16()),
            Controller::Prevv(PrevvConfig::prevv64()),
        ] {
            let name = ctrl.name();
            let r = run_kernel(&spec, ctrl).expect("runs");
            assert!(r.matches_golden, "{name} diverged from golden");
        }
    }

    #[test]
    fn direct_controller_is_unsafe_by_design() {
        let spec = extra::serial_reduction(32);
        let r = run_kernel(&spec, Controller::Direct).expect("runs");
        assert!(!r.matches_golden, "direct memory must mis-execute");
    }

    #[test]
    fn comparison_helpers_work() {
        let spec = extra::serial_reduction(24);
        let cmp = compare(
            &spec,
            [
                Controller::FastLsq { depth: 16 },
                Controller::Prevv(PrevvConfig::prevv16()),
            ],
        )
        .expect("runs");
        assert!(cmp.all_correct());
        assert!(cmp.point("PreVV16").is_some());
        assert!(cmp.point("nonsense").is_none());
        assert!(cmp.lut_ratio("PreVV16", "[8]") < 1.0);
        assert!(cmp.exec_ratio("[8]", "[8]") == 1.0);
        // The squash log matches the squash count.
        let p = cmp.point("PreVV16").expect("present");
        assert_eq!(
            p.run.squash_log.len() as u64,
            p.run.report.squashes,
            "log records every squash"
        );
    }

    #[test]
    fn evaluation_combines_cycles_and_clock_period() {
        let spec = extra::histogram(32, 16, 3);
        let e = evaluate(&spec, Controller::Prevv(PrevvConfig::prevv16())).expect("runs");
        let expected = e.run.report.cycles as f64 * e.design.clock_period_ns / 1000.0;
        assert!((e.exec_time_us - expected).abs() < 1e-9);
        assert!(e.design.total().luts > 0);
    }
}
