//! Cross-backend differential oracle.
//!
//! One kernel goes in; it is executed by the golden interpreter, round-
//! tripped through the `.pvk` text form, linted, model-checked, and then
//! simulated under every memory subsystem (Dynamatic LSQ \[15\], fast-
//! allocation LSQ \[8\], speculative-allocation LSQ, PreVV — plus the
//! intentionally unsafe direct memory) under both the dense and the
//! event-driven scheduler. The oracle's consistency contract (DESIGN.md §5):
//!
//! 1. Every disambiguating backend × scheduler must reproduce the golden
//!    arrays exactly; the two schedulers must agree cycle-for-cycle.
//! 2. A kernel the PV2xx checker proves clean (complete exploration, no
//!    counterexamples) must complete on PreVV — no deadlock, no timeout.
//! 3. An emitted counterexample must replay against the transition system
//!    (a trace that does not replay means the checker fabricated it); only
//!    then is a PreVV deadlock/timeout tolerated.
//! 4. Direct memory is exempt from golden comparison (it mis-executes on
//!    hazards by design) but must still be scheduler-deterministic.
//! 5. `pretty::render` → `parse` must reproduce the spec (modulo spans).
//!
//! Any violation is a [`Failure`] with enough detail to reproduce; the
//! `runkernel --fuzz` driver shrinks the offending kernel and writes the
//! `.pvk` repro.
//!
//! The ISSUE sited this module at `crates/dataflow::diffcheck`, but the
//! dataflow crate is the *bottom* of the dependency graph and the oracle
//! needs the IR, the memory subsystems, the PreVV core, and the analyzer —
//! so it lives in the facade, which is the one crate that sees them all.

use std::panic::{catch_unwind, AssertUnwindSafe};

use prevv_analyze::{
    check_protocol, replay_counterexample, AnalyzeOptions, ProtocolOptions, Severity,
};
use prevv_core::PrevvConfig;
use prevv_dataflow::{Scheduler, SimConfig, SimError, Value};
use prevv_ir::{pretty, KernelSpec};

use crate::{run_kernel_with, Controller, RunError, RunResult, SynthOptions};

/// What went wrong, per check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The golden interpreter itself panicked.
    GoldenPanicked,
    /// `parse(render(k))` differs from `k`.
    RoundTrip,
    /// The lints reported an error on a kernel expected to be lint-clean.
    LintError,
    /// The model checker failed to build/run, or a counterexample did not
    /// replay.
    ReplayFailed,
    /// A backend returned a construction or simulation error the contract
    /// does not excuse.
    SimFailed,
    /// A backend completed but its arrays differ from the golden model.
    Mismatch,
    /// The dense and event-driven schedulers disagree on the same backend.
    SchedulerDiverged,
    /// Synthesis, a controller, or the simulator panicked.
    Panicked,
}

/// A single contract violation.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which check failed.
    pub kind: FailureKind,
    /// Backend display name (`"[15]"`, `"spec16"`, …) when applicable.
    pub backend: Option<String>,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            Some(b) => write!(f, "{:?} [{b}]: {}", self.kind, self.detail),
            None => write!(f, "{:?}: {}", self.kind, self.detail),
        }
    }
}

/// The oracle's verdict on one kernel.
#[derive(Debug)]
pub struct KernelVerdict {
    /// Kernel name.
    pub name: String,
    /// Stable digest per `(backend, scheduler)` label, for corpus pinning.
    /// Labels look like `"[15]/dense"` or `"spec16/event"`.
    pub digests: Vec<(String, u64)>,
    /// Lint errors observed (informational when `expect_lint_clean` is off).
    pub lint_errors: usize,
    /// PV2xx counterexamples emitted (each verified to replay).
    pub counterexamples: usize,
    /// Every contract violation.
    pub failures: Vec<Failure>,
}

impl KernelVerdict {
    /// True when every check held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Treat lint *errors* as failures. On for generated kernels (the
    /// generator aims for lint-clean output; an error means generator or
    /// analyzer drift), off when auditing hand-written fixtures.
    pub expect_lint_clean: bool,
    /// Run the PV2xx protocol model checker (bounded) and enforce the
    /// verdict-consistency contract.
    pub check_model: bool,
    /// Iteration horizon for the model checker (`0` = checker default —
    /// expensive; the fuzz driver uses 2).
    pub mc_iterations: u64,
    /// State cap for the model checker.
    pub mc_max_states: usize,
    /// Simulation watchdog (cycles without progress).
    pub watchdog: u64,
    /// Simulation cycle budget.
    pub max_cycles: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            expect_lint_clean: true,
            check_model: true,
            mc_iterations: 2,
            mc_max_states: 60_000,
            watchdog: 2_000,
            max_cycles: 500_000,
        }
    }
}

/// The backend set the oracle differentiates: the three LSQ baselines and
/// PreVV, all sized to fit the kernel's widest iteration. The depth hint
/// (`depth_q`), when present, pins the PreVV premature-queue depth.
pub fn backends(spec: &KernelSpec) -> Vec<Controller> {
    let per_iter = spec.mem_ops_per_iter();
    let depth = 16usize.max(per_iter);
    let prevv_depth = spec.depth_hint().map_or(depth, |(d, _)| d.max(per_iter));
    vec![
        Controller::Dynamatic { depth },
        Controller::FastLsq { depth },
        Controller::SpecLsq { depth },
        Controller::Prevv(PrevvConfig::with_depth(prevv_depth)),
    ]
}

/// Stable order-sensitive digest of a run's observable outcome.
pub fn digest(arrays: &[Vec<Value>], cycles: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ cycles;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
    };
    for a in arrays {
        mix(a.len() as u64);
        for &v in a {
            mix(v as u64);
        }
    }
    h
}

/// Runs the full oracle on one kernel.
pub fn check_kernel(spec: &KernelSpec, opts: &DiffOptions) -> KernelVerdict {
    let mut verdict = KernelVerdict {
        name: spec.name.clone(),
        digests: Vec::new(),
        lint_errors: 0,
        counterexamples: 0,
        failures: Vec::new(),
    };

    // 1. Golden reference.
    let gold = match catch_unwind(AssertUnwindSafe(|| prevv_ir::golden::execute(spec))) {
        Ok(g) => g,
        Err(p) => {
            verdict.failures.push(Failure {
                kind: FailureKind::GoldenPanicked,
                backend: None,
                detail: panic_msg(&p),
            });
            return verdict;
        }
    };

    // 2. Text round trip (modulo spans; PartialEq ignores them).
    check_round_trip(spec, &mut verdict);

    // 3. Lints. Advisory unless `expect_lint_clean` — out-of-range raw
    // addresses are benign (Euclidean wrap) so linted kernels still
    // simulate below either way.
    let prevv_cfg = match backends(spec).pop() {
        Some(Controller::Prevv(c)) => c,
        _ => unreachable!("backends ends with PreVV"),
    };
    let lint = prevv_analyze::analyze(spec, &AnalyzeOptions::for_config(&prevv_cfg));
    verdict.lint_errors = lint
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if opts.expect_lint_clean && verdict.lint_errors > 0 {
        verdict.failures.push(Failure {
            kind: FailureKind::LintError,
            backend: None,
            detail: format!(
                "{} lint error(s): {}",
                verdict.lint_errors,
                lint.render(&spec.name, None)
            ),
        });
    }

    // 4. Bounded PV2xx model check; its verdict constrains what the PreVV
    // simulation below is allowed to do.
    let mut tolerate_prevv_wedge = false;
    if opts.check_model {
        let mc_opts = ProtocolOptions {
            iterations: opts.mc_iterations,
            max_states: opts.mc_max_states,
            threads: 1,
            ..ProtocolOptions::for_config(&prevv_cfg)
        };
        match catch_unwind(AssertUnwindSafe(|| check_protocol(spec, &mc_opts))) {
            Ok(Ok(result)) => {
                verdict.counterexamples = result.counterexamples.len();
                for cex in &result.counterexamples {
                    match replay_counterexample(spec, &mc_opts, cex) {
                        Ok(outcome) => {
                            if !(outcome.deadlock
                                || outcome.admission_blocked
                                || outcome.cycle_closed)
                            {
                                verdict.failures.push(Failure {
                                    kind: FailureKind::ReplayFailed,
                                    backend: None,
                                    detail: format!(
                                        "{:?} trace replays but witnesses nothing",
                                        cex.code
                                    ),
                                });
                            }
                        }
                        Err(e) => verdict.failures.push(Failure {
                            kind: FailureKind::ReplayFailed,
                            backend: None,
                            detail: format!("{:?} trace does not replay: {e}", cex.code),
                        }),
                    }
                }
                // A verified counterexample excuses a wedged PreVV run; a
                // clean-and-complete verdict forbids one. A truncated
                // exploration (state cap) proves nothing and excuses
                // nothing.
                tolerate_prevv_wedge = !result.counterexamples.is_empty();
            }
            Ok(Err(e)) => verdict.failures.push(Failure {
                kind: FailureKind::ReplayFailed,
                backend: None,
                detail: format!("model checker refused the kernel: {e}"),
            }),
            Err(p) => verdict.failures.push(Failure {
                kind: FailureKind::Panicked,
                backend: None,
                detail: format!("model checker panicked: {}", panic_msg(&p)),
            }),
        }
    }

    // 5. Every backend × both schedulers. Direct rides along without the
    // golden requirement — it demonstrates why disambiguation exists.
    let mut all = vec![(Controller::Direct, false)];
    all.extend(backends(spec).into_iter().map(|c| (c, true)));
    for (ctrl, require_golden) in all {
        run_backend(
            spec,
            &gold.arrays,
            ctrl,
            require_golden,
            tolerate_prevv_wedge,
            opts,
            &mut verdict,
        );
    }

    verdict
}

fn check_round_trip(spec: &KernelSpec, verdict: &mut KernelVerdict) {
    let src = pretty::render(spec);
    // Drop the `// kernel:` banner; the parser takes the name separately.
    let body: String = src.lines().skip(1).collect::<Vec<_>>().join("\n");
    match prevv_ir::parse::parse_kernel(&spec.name, &body) {
        Ok(reparsed) => {
            if reparsed != *spec {
                verdict.failures.push(Failure {
                    kind: FailureKind::RoundTrip,
                    backend: None,
                    detail: format!("reparsed spec differs\n--- rendered ---\n{src}"),
                });
            } else if reparsed.depth_hint().map(|(d, _)| d) != spec.depth_hint().map(|(d, _)| d) {
                verdict.failures.push(Failure {
                    kind: FailureKind::RoundTrip,
                    backend: None,
                    detail: "depth_q directive lost in round trip".into(),
                });
            }
        }
        Err(e) => verdict.failures.push(Failure {
            kind: FailureKind::RoundTrip,
            backend: None,
            detail: format!("rendered text does not parse: {e}\n--- rendered ---\n{src}"),
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_backend(
    spec: &KernelSpec,
    gold: &[Vec<Value>],
    ctrl: Controller,
    require_golden: bool,
    tolerate_wedge: bool,
    opts: &DiffOptions,
    verdict: &mut KernelVerdict,
) {
    let name = ctrl.name();
    let mut runs: Vec<(Scheduler, RunResult)> = Vec::new();
    for scheduler in [Scheduler::Dense, Scheduler::EventDriven] {
        let sched_label = match scheduler {
            Scheduler::Dense => "dense",
            Scheduler::EventDriven => "event",
        };
        let label = format!("{name}/{sched_label}");
        let sim = SimConfig {
            max_cycles: opts.max_cycles,
            watchdog: opts.watchdog,
            scheduler,
        };
        let ctrl2 = ctrl.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_kernel_with(spec, ctrl2, &SynthOptions::default(), &sim)
        }));
        match outcome {
            Ok(Ok(run)) => {
                if require_golden && !run.matches_golden {
                    verdict.failures.push(Failure {
                        kind: FailureKind::Mismatch,
                        backend: Some(label.clone()),
                        detail: format!("arrays diverge from golden: {:?} vs {gold:?}", run.arrays),
                    });
                }
                verdict
                    .digests
                    .push((label, digest(&run.arrays, run.report.cycles)));
                runs.push((scheduler, run));
            }
            Ok(Err(e)) => {
                let wedge = matches!(
                    e,
                    RunError::Sim(SimError::Deadlock { .. })
                        | RunError::Sim(SimError::Timeout { .. })
                );
                let excused = wedge && tolerate_wedge && matches!(ctrl, Controller::Prevv(_));
                if !excused {
                    verdict.failures.push(Failure {
                        kind: FailureKind::SimFailed,
                        backend: Some(label),
                        detail: e.to_string(),
                    });
                }
            }
            Err(p) => verdict.failures.push(Failure {
                kind: FailureKind::Panicked,
                backend: Some(label),
                detail: panic_msg(&p),
            }),
        }
    }
    // Cross-scheduler determinism: identical arrays and identical engine
    // reports (cycles, transfers, squashes — byte-identical outcome).
    if let [(_, dense), (_, event)] = runs.as_slice() {
        if dense.arrays != event.arrays {
            verdict.failures.push(Failure {
                kind: FailureKind::SchedulerDiverged,
                backend: Some(name.clone()),
                detail: "dense and event schedulers produced different arrays".into(),
            });
        } else if let Some(d) = dense.report.diff(&event.report) {
            verdict.failures.push(Failure {
                kind: FailureKind::SchedulerDiverged,
                backend: Some(name),
                detail: d,
            });
        }
    }
}

fn panic_msg(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_kernels::{extra, gen, paper};

    #[test]
    fn stock_kernels_pass_the_oracle() {
        // The paper suite is the ground truth the repo's other tests pin;
        // the oracle must agree it is clean.
        for spec in paper::all_default() {
            let v = check_kernel(&spec, &DiffOptions::default());
            assert!(
                v.passed(),
                "{}: {:?}",
                spec.name,
                v.failures
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn generated_kernels_pass_the_oracle() {
        let cfg = gen::GenConfig::corpus();
        for seed in 0..8u64 {
            let spec = gen::generate(seed, &cfg);
            let v = check_kernel(&spec, &DiffOptions::default());
            assert!(
                v.passed(),
                "seed {seed} ({}): {:?}",
                spec.name,
                v.failures
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn direct_memory_mismatch_is_not_a_failure_but_is_digested() {
        // The hazardous reduction mis-executes on Direct; the oracle must
        // not flag it (Direct is exempt) yet must still digest its runs.
        let spec = extra::serial_reduction(24);
        let v = check_kernel(&spec, &DiffOptions::default());
        assert!(v.passed(), "{:?}", v.failures);
        assert!(v.digests.iter().any(|(l, _)| l.starts_with("direct/")));
        // Four disambiguating backends + direct, two schedulers each.
        assert_eq!(v.digests.len(), 10);
    }

    #[test]
    fn digests_are_stable_across_runs() {
        let spec = gen::generate(3, &gen::GenConfig::corpus());
        let a = check_kernel(&spec, &DiffOptions::default());
        let b = check_kernel(&spec, &DiffOptions::default());
        assert_eq!(a.digests, b.digests);
    }
}
