//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no network and no crates.io
//! cache, so property tests run against this local shim instead of the real
//! `proptest`. It reproduces the API subset the workspace uses — the
//! [`proptest!`], [`prop_compose!`], [`prop_oneof!`], [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`] macros, [`strategy::Strategy`]
//! with `prop_map`, integer-range / tuple / `Just` strategies,
//! [`collection::vec`], [`bool::weighted`], [`option::weighted`] and
//! [`arbitrary::any`] — with two deliberate simplifications:
//!
//! * cases are generated from a deterministic splitmix64 stream seeded by the
//!   test name, so every run explores the same inputs (reproducible failures);
//! * there is no shrinking — a failing case reports its case number and seed
//!   instead of a minimised input.

#![forbid(unsafe_code)]

/// Deterministic random source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next word of the splitmix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of test values (shim: generation only, no shrink tree).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy backed by a closure.
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Wraps a closure as a strategy (used by `prop_compose!`).
    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    /// Builds a [`Union`]; panics on an empty choice list.
    pub fn union<T>(choices: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String-pattern strategy. The shim ignores the regex and produces
    /// arbitrary printable-ish strings (superset fuzzing for `".*"`-style
    /// patterns — robustness tests only get *more* adversarial inputs).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            const ALPHABET: &[u8] = b"abijn01349 \t\n(){}[];=+-*/%<>!&|,._#\"'\\int for if h_";
            let len = rng.below(33) as usize;
            (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
                .collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors with per-element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `Some` with a fixed probability.
    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    /// `Some(value)` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        Weighted { p, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.p {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::{from_fn, BoxedStrategy, Strategy};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    /// Canonical strategy for `T` (uniform over its whole domain).
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            from_fn(|rng| rng.next_u64() & 1 == 1).boxed()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    from_fn(|rng| rng.next_u64() as $t).boxed()
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

/// Test-runner configuration and driver.
pub mod test_runner {
    use super::TestRng;

    /// Per-test configuration; supports `..ProptestConfig::default()` update
    /// syntax like the real crate.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; the shim's global reject cap is
        /// derived from `cases` instead.
        pub max_global_rejects: u32,
        /// Accepted for compatibility; the shim never forks.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
                fork: false,
            }
        }
    }

    /// Why a single case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert!`-family check failed.
        Fail(String),
        /// A `prop_assume!` filtered the case out.
        Reject,
    }

    fn seed_for(name: &str) -> u64 {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `f` until `config.cases` cases succeed; panics on the first
    /// failing case with its case number and seed.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = seed_for(name);
        let mut successes = 0u32;
        let mut attempts = 0u64;
        let max_attempts = config.cases as u64 * 20 + 100;
        while successes < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "property '{name}': too many cases rejected by prop_assume! \
                 ({successes}/{} succeeded after {attempts} attempts)",
                config.cases
            );
            let seed = base ^ attempts.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let mut rng = TestRng::new(seed);
            match f(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property '{name}' failed at case {successes} (seed {seed:#x}):\n{msg}")
                }
            }
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |__pt_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::gen_value(&($strat), __pt_rng);
                )+
                let mut __pt_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                __pt_case()
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( ($cfg:expr) ) => {};
}

/// Builds derived strategies; mirrors `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        fn $name:ident()($($a:ident in $s:expr),+ $(,)?) -> $ty:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name() -> impl $crate::strategy::Strategy<Value = $ty> {
            $crate::strategy::from_fn(move |__pt_rng| {
                let __pt_stage = ($($s,)+);
                let ($($a,)+) =
                    $crate::strategy::Strategy::gen_value(&__pt_stage, __pt_rng);
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident()($($a:ident in $s:expr),+ $(,)?)($($b:ident in $t:expr),+ $(,)?) -> $ty:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name() -> impl $crate::strategy::Strategy<Value = $ty> {
            $crate::strategy::from_fn(move |__pt_rng| {
                let __pt_stage1 = ($($s,)+);
                let ($($a,)+) =
                    $crate::strategy::Strategy::gen_value(&__pt_stage1, __pt_rng);
                // Like real proptest, second-stage strategy expressions see the
                // first stage's bindings; evaluating them as one tuple keeps the
                // original bindings live until every expression has run.
                let __pt_stage2 = ($($t,)+);
                let ($($b,)+) =
                    $crate::strategy::Strategy::gen_value(&__pt_stage2, __pt_rng);
                $body
            })
        }
    };
}

/// Uniform choice between strategies; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__pt_l, __pt_r) => {
                if !(*__pt_l == *__pt_r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($a),
                            stringify!($b),
                            __pt_l,
                            __pt_r
                        )),
                    );
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__pt_l, __pt_r) => {
                if !(*__pt_l == *__pt_r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3i64..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            (0i64..5).prop_map(|x| x * 2),
            Just(100i64),
        ]) {
            prop_assert!(v == 100 || (v % 2 == 0 && v < 10));
        }

        #[test]
        fn composed_pairs(p in pair(), flag in any::<bool>()) {
            let _ = flag;
            prop_assert_eq!(p.0 - p.0, 0);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_filters(n in 0u64..20) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
