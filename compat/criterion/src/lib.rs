//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so benchmarks link against
//! this shim instead of the real criterion. It keeps the same authoring API
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups, [`BenchmarkId`]) but replaces the statistical machinery
//! with a single warm-up pass plus a fixed measurement loop, reporting the
//! mean wall-clock time per iteration. Good enough to compare orders of
//! magnitude and to keep `cargo bench` runnable; not a statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean nanoseconds per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then the measured loop.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = routine();
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters,
        mean_ns: 0.0,
    };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("bench {label:<48} {value:>10.2} {unit}/iter ({iters} iters)");
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // A small fixed loop keeps `cargo bench` fast while still averaging
        // away scheduler noise on sub-millisecond routines.
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.iters, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
            _parent: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim maps sample count onto its fixed
    /// measurement loop length (bounded to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 20);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.iters, |b| f(b, input));
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.iters, f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trips() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u64, |b, &x| {
            b.iter(|| x)
        });
        g.finish();
    }
}
