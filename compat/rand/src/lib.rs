//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without network access or a crates.io
//! cache, so the handful of `rand` APIs the code actually uses are provided by
//! this local shim: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is a deterministic
//! splitmix64 — statistically more than adequate for seeding test workloads,
//! and reproducible across platforms.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types `gen_range` can sample from (subset: integer ranges).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-4..=4);
            assert!((-4..=4).contains(&v));
            let u: usize = r.gen_range(0..13);
            assert!(u < 13);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
