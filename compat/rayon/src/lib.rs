//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this shim provides the
//! small slice of rayon's API the workspace uses — `par_iter().map(f)
//! .collect::<Vec<_>>()` over slices, plus `ThreadPoolBuilder` /
//! `current_num_threads` — implemented with `std::thread::scope`.
//!
//! Determinism contract (stronger than a real work-stealing pool, and what
//! the sweep driver's byte-identical-output guarantee leans on): results are
//! written into their item's slot, so the collected `Vec` is in input order
//! at any thread count. Work is split into contiguous index chunks, one per
//! worker.
//!
//! Thread count resolution order: an `install`ed pool's `num_threads`, then
//! the `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::env;
use std::thread;

thread_local! {
    /// Override installed by `ThreadPool::install`, like rayon's notion of
    /// "the current pool".
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads that a parallel iterator would use right now.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|p| p.get()) {
        return n.max(1);
    }
    if let Ok(v) = env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Mirrors `rayon::ThreadPoolBuilder` far enough to build a fixed-size pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the worker count (0 means "use the default", as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible here; the error type exists only for
    /// signature compatibility.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// Error type of [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A fixed-size "pool": this shim spawns scoped threads per call rather than
/// keeping workers alive, but `install` scopes the thread count exactly like
/// rayon's.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators used inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|p| {
            let prev = p.replace(Some(self.num_threads));
            let out = op();
            p.set(prev);
            out
        })
    }
}

/// Entry points of `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped stage; `collect()` runs the map across the workers.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The subset of `rayon::iter::ParallelIterator` the workspace consumes:
/// `collect` into a `Vec` (in input order — see the crate docs).
pub trait ParallelIterator {
    type Out;
    fn collect<C: FromParallel<Self::Out>>(self) -> C;
}

/// Collection target of [`ParallelIterator::collect`].
pub trait FromParallel<T> {
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Out = R;

    fn collect<C: FromParallel<R>>(self) -> C {
        C::from_ordered(run_ordered(self.items, current_num_threads(), &self.f))
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning the
/// results in input order. Each worker owns one contiguous chunk of indices,
/// and every result lands in its item's slot, so the output is independent
/// of scheduling and thread count.
fn run_ordered<'a, T, R, F>(items: &'a [T], threads: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    thread::scope(|scope| {
        for (worker, out_chunk) in slots.chunks_mut(chunk).enumerate() {
            let start = worker * chunk;
            let in_chunk = &items[start..(start + out_chunk.len())];
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot written by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let xs: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = xs.iter().map(|x| x * x).collect();
        for n in [1, 2, 7, 32] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let got: Vec<u64> = pool.install(|| xs.par_iter().map(|x| x * x).collect());
            assert_eq!(got, expected, "thread count {n}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
