//! A tiny C-like frontend for kernels — the textual inverse of
//! [`pretty`](crate::pretty).
//!
//! The accepted language is the subset of C the synthesizer supports:
//! array declarations (optionally initialized), a perfect loop nest, and a
//! straight-line body of (optionally guarded) array-update statements.
//! Opaque runtime functions are written `h<seed>_<modulus>(expr)`:
//!
//! ```text
//! int a[16];
//! int b[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };
//! for (int i = 0; i < 8; ++i) {
//!   if (i % 2 == 0) a[b[i] + h3_8(i)] += 5;
//!   b[i] = b[i] * 2;
//! }
//! ```
//!
//! Loop bounds may reference outer induction variables (`for (int j = i + 1;
//! j < 8; ++j)`), matching the triangular nests of the paper's kernels.
//!
//! A `depth_q = N;` directive among the declarations pins the
//! premature-queue depth the file was authored for; it overrides CLI depth
//! options downstream and is the span `prevv-lint --fix` rewrites when a
//! sizing lint (PV402/PV503) suggests a different depth.

use std::fmt;

use prevv_dataflow::components::{Bound, LoopLevel};
use prevv_dataflow::Value;

use crate::expr::{ArrayId, BinOp, Expr, OpaqueFn};
use crate::kernel::{ArrayDecl, KernelError, KernelSpec, Stmt, StmtSpans};
use crate::span::{self, Span};

/// A parse failure, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// 1-based line and column of the failure within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        span::line_col(source, self.at)
    }

    /// Renders the error rustc-style against the original source, with a
    /// caret under the offending column:
    ///
    /// ```text
    /// error: expected `]`, found `;`
    ///  --> bad.pvk:3:10
    ///   |
    /// 3 |   a[i + 1 = 5;
    ///   |          ^
    /// ```
    pub fn render(&self, origin: &str, source: &str) -> String {
        format!(
            "error: {}\n{}",
            self.message,
            span::render_snippet(source, origin, Span::point(self.at))
        )
    }
}

impl From<KernelError> for ParseError {
    fn from(e: KernelError) -> Self {
        ParseError {
            at: 0,
            message: format!("kernel validation failed: {e}"),
        }
    }
}

/// Parses kernel source text.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed source or when the resulting kernel
/// fails [`KernelSpec::validate`].
///
/// ```
/// let spec = prevv_ir::parse::parse_kernel(
///     "histogram",
///     "int h[8];\nfor (int i = 0; i < 32; ++i) { h[h3_8(i)] += 1; }",
/// )?;
/// assert_eq!(spec.iteration_count(), 32);
/// # Ok::<(), prevv_ir::parse::ParseError>(())
/// ```
pub fn parse_kernel(name: &str, source: &str) -> Result<KernelSpec, ParseError> {
    let mut p = Parser::new(source);
    let arrays = p.parse_decls()?;
    let mut loop_vars = Vec::new();
    let mut levels = Vec::new();
    p.parse_loops(&mut loop_vars, &mut levels)?;
    let body = p.parse_body(&arrays, &loop_vars, levels.len())?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after the loop nest"));
    }
    let decls = arrays.into_iter().map(|(_, d)| d).collect();
    let mut spec = KernelSpec::new(name, levels, decls, body)?;
    if let Some((depth, span)) = p.depth_hint {
        spec = spec.with_depth_hint(depth, span);
    }
    Ok(spec)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    /// Spans of array-load expressions, pushed as each load finishes parsing
    /// (inner loads before the loads containing them — the same depth-first
    /// order as [`Expr::loads`]). Drained per statement.
    load_spans: Vec<Span>,
    /// `depth_q = N;` directive seen among the declarations, with its span.
    depth_hint: Option<(usize, Span)>,
}

type Arrays = Vec<(String, ArrayDecl)>;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            load_spans: Vec::new(),
            depth_hint: None,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if let Some(nl) = self.rest().strip_prefix("//") {
                let skip = nl.find('\n').map_or(nl.len(), |i| i + 1);
                self.pos += 2 + skip;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else if self.at_end() {
            Err(self.error(format!("expected `{token}`, found end of input")))
        } else {
            let found: String = self
                .rest()
                .chars()
                .take_while(|c| !c.is_whitespace())
                .take(12)
                .collect();
            Err(self.error(format!("expected `{token}`, found `{found}`")))
        }
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        self.rest().starts_with(kw)
            && !self
                .rest()
                .as_bytes()
                .get(kw.len())
                .copied()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let r = self.rest();
        let len = r
            .char_indices()
            .take_while(|&(i, c)| {
                if i == 0 {
                    c.is_ascii_alphabetic() || c == '_'
                } else {
                    c.is_ascii_alphanumeric() || c == '_'
                }
            })
            .count();
        if len == 0 {
            return Err(self.error("expected an identifier"));
        }
        let s = r[..len].to_string();
        self.pos += len;
        Ok(s)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let r = self.rest();
        let neg = r.starts_with('-');
        let digits = r[usize::from(neg)..]
            .chars()
            .take_while(char::is_ascii_digit)
            .count();
        if digits == 0 {
            return Err(self.error("expected a number"));
        }
        let end = usize::from(neg) + digits;
        let v: Value = r[..end]
            .parse()
            .map_err(|e| self.error(format!("bad number: {e}")))?;
        self.pos += end;
        Ok(v)
    }

    // --- declarations -----------------------------------------------------

    /// `depth_q = N;` — pins the premature-queue depth the file was
    /// authored for (overrides CLI depth options downstream).
    fn parse_depth_directive(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        let start = self.pos;
        self.expect("depth_q")?;
        self.expect("=")?;
        let n = self.number()?;
        if n <= 0 {
            return Err(self.error("depth_q must be positive"));
        }
        self.expect(";")?;
        if self.depth_hint.is_some() {
            return Err(ParseError {
                at: start,
                message: "depth_q declared twice".into(),
            });
        }
        self.depth_hint = Some((n as usize, Span::new(start, self.pos)));
        Ok(())
    }

    fn parse_decls(&mut self) -> Result<Arrays, ParseError> {
        let mut arrays = Arrays::new();
        loop {
            if self.peek_keyword("depth_q") {
                self.parse_depth_directive()?;
                continue;
            }
            if !self.peek_keyword("int") {
                break;
            }
            // Lookahead: `int name[` is a declaration, `int i = 0` inside a
            // for-header never reaches here (we stop before `for`).
            let save = self.pos;
            self.expect("int")?;
            let name = self.ident()?;
            if !self.eat("[") {
                self.pos = save;
                break;
            }
            let len = self.number()?;
            if len <= 0 {
                return Err(self.error("array length must be positive"));
            }
            self.expect("]")?;
            let decl = if self.eat("=") {
                self.expect("{")?;
                let mut values = Vec::new();
                loop {
                    values.push(self.number()?);
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("}")?;
                if values.len() != len as usize {
                    return Err(self.error(format!(
                        "initializer has {} values for length {len}",
                        values.len()
                    )));
                }
                ArrayDecl::with_values(name.clone(), values)
            } else {
                ArrayDecl::zeroed(name.clone(), len as usize)
            };
            self.expect(";")?;
            if arrays.iter().any(|(n, _)| *n == name) {
                return Err(self.error(format!("array `{name}` declared twice")));
            }
            arrays.push((name, decl));
        }
        if arrays.is_empty() {
            return Err(self.error("expected at least one array declaration"));
        }
        Ok(arrays)
    }

    // --- loop nest ---------------------------------------------------------

    fn parse_bound(&mut self, loop_vars: &[String]) -> Result<Bound, ParseError> {
        self.skip_ws();
        if self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-')
        {
            return Ok(Bound::Const(self.number()?));
        }
        let name = self.ident()?;
        let level = loop_vars
            .iter()
            .position(|v| *v == name)
            .ok_or_else(|| self.error(format!("unknown loop variable `{name}` in bound")))?;
        let off = if self.eat("+") {
            self.number()?
        } else if self.eat("-") {
            -self.number()?
        } else {
            0
        };
        Ok(Bound::OuterPlus(level, off))
    }

    fn parse_loops(
        &mut self,
        loop_vars: &mut Vec<String>,
        levels: &mut Vec<LoopLevel>,
    ) -> Result<(), ParseError> {
        self.expect("for")?;
        self.expect("(")?;
        self.expect("int")?;
        let var = self.ident()?;
        self.expect("=")?;
        let lo = self.parse_bound(loop_vars)?;
        self.expect(";")?;
        let var2 = self.ident()?;
        if var2 != var {
            return Err(self.error("loop condition must test the loop variable"));
        }
        self.expect("<")?;
        let hi = self.parse_bound(loop_vars)?;
        self.expect(";")?;
        self.expect("++")?;
        let var3 = self.ident()?;
        if var3 != var {
            return Err(self.error("loop increment must use the loop variable"));
        }
        self.expect(")")?;
        self.expect("{")?;
        loop_vars.push(var);
        levels.push(LoopLevel::new(lo, hi));
        if self.peek_keyword("for") {
            self.parse_loops(loop_vars, levels)?;
        }
        Ok(())
    }

    // --- statements ---------------------------------------------------------

    fn parse_body(
        &mut self,
        arrays: &Arrays,
        loop_vars: &[String],
        depth: usize,
    ) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("}") {
                break;
            }
            body.push(self.parse_stmt(arrays, loop_vars)?);
        }
        // Close the remaining loop braces.
        for _ in 1..depth {
            self.expect("}")?;
        }
        Ok(body)
    }

    fn array_id(&self, arrays: &Arrays, name: &str) -> Result<ArrayId, ParseError> {
        arrays
            .iter()
            .position(|(n, _)| n == name)
            .map(ArrayId)
            .ok_or_else(|| self.error(format!("unknown array `{name}`")))
    }

    fn parse_stmt(&mut self, arrays: &Arrays, loop_vars: &[String]) -> Result<Stmt, ParseError> {
        self.skip_ws();
        let stmt_start = self.pos;
        let guard = if self.peek_keyword("if") {
            self.expect("if")?;
            self.expect("(")?;
            let g = self.parse_expr(arrays, loop_vars)?;
            self.expect(")")?;
            Some(g)
        } else {
            None
        };
        // Guards must be affine (no loads — enforced by validation), so any
        // spans recorded while parsing one are discarded to keep the span
        // list aligned with the statement's canonical memory-op order.
        self.load_spans.clear();
        self.skip_ws();
        let target_start = self.pos;
        let target = self.ident()?;
        let array = self.array_id(arrays, &target)?;
        self.expect("[")?;
        self.skip_ws();
        let index_start = self.pos;
        let index = self.parse_expr(arrays, loop_vars)?;
        let index_span = Span::new(index_start, self.pos);
        let index_load_spans = std::mem::take(&mut self.load_spans);
        self.expect("]")?;
        let target_span = Span::new(target_start, self.pos);
        self.skip_ws();
        let compound = self.rest().starts_with("+=") || self.rest().starts_with("-=");
        let value = if self.eat("+=") {
            Expr::load(array, index.clone()).add(self.parse_expr(arrays, loop_vars)?)
        } else if self.eat("-=") {
            Expr::load(array, index.clone()).sub(self.parse_expr(arrays, loop_vars)?)
        } else if self.eat("=") {
            self.parse_expr(arrays, loop_vars)?
        } else {
            return Err(self.error("expected `=`, `+=` or `-=`"));
        };
        let rhs_load_spans = std::mem::take(&mut self.load_spans);
        self.expect(";")?;
        // Canonical memory-op order: index loads, then value loads, then the
        // store. A compound update's value is `load(target) op rhs`, whose
        // loads are the cloned index's loads, the implicit target load, then
        // the right-hand side's loads.
        let mut loads = index_load_spans.clone();
        if compound {
            loads.extend(index_load_spans);
            loads.push(target_span);
        }
        loads.extend(rhs_load_spans);
        let spans = StmtSpans {
            stmt: Some(Span::new(stmt_start, self.pos)),
            target: Some(target_span),
            index: Some(index_span),
            loads,
        };
        Ok(match guard {
            Some(g) => Stmt::guarded(array, index, value, g),
            None => Stmt::store(array, index, value),
        }
        .with_spans(spans))
    }

    // --- expressions (precedence climbing) ----------------------------------

    fn parse_expr(&mut self, arrays: &Arrays, loop_vars: &[String]) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive(arrays, loop_vars)?;
        let op = if self.eat("==") {
            BinOp::Eq
        } else if self.eat("!=") {
            BinOp::Ne
        } else if self.eat("<=") {
            BinOp::Le
        } else if self.eat(">=") {
            BinOp::Ge
        } else if self.eat("<") {
            BinOp::Lt
        } else if self.eat(">") {
            BinOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.parse_additive(arrays, loop_vars)?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_additive(
        &mut self,
        arrays: &Arrays,
        loop_vars: &[String],
    ) -> Result<Expr, ParseError> {
        let mut e = self.parse_multiplicative(arrays, loop_vars)?;
        loop {
            if self.eat("+") {
                e = e.add(self.parse_multiplicative(arrays, loop_vars)?);
            } else if self.peek_minus() {
                self.expect("-")?;
                e = e.sub(self.parse_multiplicative(arrays, loop_vars)?);
            } else {
                return Ok(e);
            }
        }
    }

    /// `-` begins a subtraction only when not immediately part of `-=`.
    fn peek_minus(&mut self) -> bool {
        self.skip_ws();
        self.rest().starts_with('-')
            && !self.rest().starts_with("-=")
            // A negative literal after an operator never reaches here; a
            // bare `-` in additive position is subtraction.
            && self.rest().len() > 1
    }

    fn parse_multiplicative(
        &mut self,
        arrays: &Arrays,
        loop_vars: &[String],
    ) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary(arrays, loop_vars)?;
        loop {
            if self.eat("*") {
                e = e.mul(self.parse_primary(arrays, loop_vars)?);
            } else if self.eat("/") {
                e = Expr::bin(BinOp::Div, e, self.parse_primary(arrays, loop_vars)?);
            } else if self.eat("%") {
                e = Expr::bin(BinOp::Rem, e, self.parse_primary(arrays, loop_vars)?);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self, arrays: &Arrays, loop_vars: &[String]) -> Result<Expr, ParseError> {
        self.skip_ws();
        let primary_start = self.pos;
        let c = self
            .rest()
            .chars()
            .next()
            .ok_or_else(|| self.error("unexpected end of input in expression"))?;
        if c.is_ascii_digit() || c == '-' {
            return Ok(Expr::lit(self.number()?));
        }
        if c == '(' {
            self.expect("(")?;
            let e = self.parse_expr(arrays, loop_vars)?;
            self.expect(")")?;
            return Ok(e);
        }
        let name = self.ident()?;
        self.skip_ws();
        // A declared array shadows everything else: an array that happens to
        // be named like an opaque function (`int h3_8[4];`) must still parse
        // as an array access, matching what `pretty::render` emits.
        let is_array = arrays.iter().any(|(n, _)| n == &name);
        if is_array && self.rest().starts_with('[') {
            let array = self.array_id(arrays, &name)?;
            self.expect("[")?;
            let idx = self.parse_expr(arrays, loop_vars)?;
            self.expect("]")?;
            // Record after any inner loads, matching `Expr::loads` order.
            self.load_spans.push(Span::new(primary_start, self.pos));
            return Ok(Expr::load(array, idx));
        }
        if !is_array && self.rest().starts_with('(') {
            // Opaque runtime function: h<seed>_<modulus>(expr).
            if let Some(spec) = parse_opaque_name(&name) {
                self.expect("(")?;
                let arg = self.parse_expr(arrays, loop_vars)?;
                self.expect(")")?;
                return Ok(arg.opaque(spec));
            }
            // min(x, y) / max(x, y) — the spelling `pretty::render` uses
            // for `BinOp::Min`/`BinOp::Max`.
            if name == "min" || name == "max" {
                let op = if name == "min" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                self.expect("(")?;
                let lhs = self.parse_expr(arrays, loop_vars)?;
                self.expect(",")?;
                let rhs = self.parse_expr(arrays, loop_vars)?;
                self.expect(")")?;
                return Ok(Expr::bin(op, lhs, rhs));
            }
        }
        if let Some(level) = loop_vars.iter().position(|v| *v == name) {
            return Ok(Expr::var(level));
        }
        Err(self.error(format!(
            "`{name}` is neither a loop variable, an array access, nor an opaque function"
        )))
    }
}

/// `h<seed>_<modulus>` names denote opaque runtime functions.
fn parse_opaque_name(name: &str) -> Option<OpaqueFn> {
    let rest = name.strip_prefix('h')?;
    let (seed, modulus) = rest.split_once('_')?;
    let seed: u64 = seed.parse().ok()?;
    let modulus: Value = modulus.parse().ok()?;
    (modulus > 0).then(|| OpaqueFn::new(seed, modulus))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden;

    #[test]
    fn parses_histogram() {
        let spec = parse_kernel(
            "hist",
            "int h[8];\nfor (int i = 0; i < 32; ++i) { h[h3_8(i)] += 1; }",
        )
        .expect("parses");
        assert_eq!(spec.iteration_count(), 32);
        let g = golden::execute(&spec);
        assert_eq!(g.arrays[0].iter().sum::<i64>(), 32);
    }

    #[test]
    fn parse_then_pretty_round_trips_semantics() {
        let src = "int a[16];
int b[4] = { 2, 0, 3, 1 };
for (int i = 0; i < 4; ++i) {
  a[b[i]] += 7;
  b[i] = b[i] * 2;
}";
        let spec = parse_kernel("rt", src).expect("parses");
        let g1 = golden::execute(&spec);
        // Render and re-parse: semantics must be identical.
        let rendered = crate::pretty::render(&spec);
        let body_only: String = rendered
            .lines()
            .filter(|l| !l.starts_with("//"))
            .collect::<Vec<_>>()
            .join("\n");
        let spec2 = parse_kernel("rt2", &body_only).expect("re-parses");
        let g2 = golden::execute(&spec2);
        assert_eq!(g1.arrays, g2.arrays);
    }

    #[test]
    fn parses_triangular_bounds_and_guards() {
        let src = "int a[36];
for (int i = 0; i < 6; ++i) {
  for (int j = i + 1; j < 6; ++j) {
    if (j % 2 == 0) a[i * 6 + j] = i + j;
  }
}";
        let spec = parse_kernel("tri", src).expect("parses");
        assert_eq!(spec.levels.len(), 2);
        assert_eq!(spec.iteration_count(), 15);
        assert!(spec.body[0].guard.is_some());
    }

    #[test]
    fn reports_unknown_identifiers() {
        let err = parse_kernel(
            "bad",
            "int a[4];\nfor (int i = 0; i < 4; ++i) { a[i] = z; }",
        )
        .expect_err("must fail");
        assert!(err.message.contains('z'), "{err}");
    }

    #[test]
    fn reports_initializer_length_mismatch() {
        let err = parse_kernel(
            "bad",
            "int a[4] = { 1, 2 };\nfor (int i = 0; i < 4; ++i) { a[i] = 1; }",
        )
        .expect_err("must fail");
        assert!(err.message.contains("2 values for length 4"), "{err}");
    }

    #[test]
    fn reports_duplicate_arrays_and_trailing_garbage() {
        let err = parse_kernel(
            "bad",
            "int a[4];\nint a[4];\nfor (int i = 0; i < 4; ++i) { a[i] = 1; }",
        )
        .expect_err("must fail");
        assert!(err.message.contains("declared twice"));

        let err = parse_kernel(
            "bad",
            "int a[4];\nfor (int i = 0; i < 4; ++i) { a[i] = 1; } garbage",
        )
        .expect_err("must fail");
        assert!(err.message.contains("trailing input"), "{err}");
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// declare\nint a[4]; // the array\nfor (int i = 0; i < 4; ++i) {\n  // body\n  a[i] = i; \n}";
        let spec = parse_kernel("c", src).expect("parses");
        let g = golden::execute(&spec);
        assert_eq!(g.arrays[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn operator_precedence_is_conventional() {
        let spec = parse_kernel(
            "prec",
            "int a[16];\nfor (int i = 0; i < 4; ++i) { a[i] = 1 + i * 2; }",
        )
        .expect("parses");
        let g = golden::execute(&spec);
        assert_eq!(g.arrays[0][3], 7, "1 + (3*2), not (1+3)*2");
    }

    #[test]
    fn statements_carry_source_spans() {
        let src = "int a[8];\nint b[4] = { 2, 0, 3, 1 };\nfor (int i = 0; i < 4; ++i) {\n  a[b[i]] += 7;\n  b[i] = b[i] * 2;\n}";
        let spec = parse_kernel("spans", src).expect("parses");

        let s0 = &spec.body[0];
        let stmt_span = s0.span().expect("stmt span");
        assert_eq!(&src[stmt_span.start..stmt_span.end], "a[b[i]] += 7;");
        let idx = s0.index_span().expect("index span");
        assert_eq!(&src[idx.start..idx.end], "b[i]");
        // Canonical op order for `a[b[i]] += 7`: load b[i] (index), load
        // b[i] (cloned index inside the implicit target load), load a[b[i]],
        // then the store. Spans must cover every op.
        assert_eq!(s0.mem_op_count(), 4);
        let texts: Vec<&str> = (0..4)
            .map(|k| {
                let sp = s0.op_span(k).expect("op span");
                &src[sp.start..sp.end]
            })
            .collect();
        assert_eq!(texts, vec!["b[i]", "b[i]", "a[b[i]]", "a[b[i]]"]);

        let s1 = &spec.body[1];
        let stmt_span = s1.span().expect("stmt span");
        assert_eq!(&src[stmt_span.start..stmt_span.end], "b[i] = b[i] * 2;");
        assert_eq!(s1.mem_op_count(), 2);
        let sp = s1.op_span(0).expect("value load span");
        assert_eq!(&src[sp.start..sp.end], "b[i]");
        let (line, col) = sp.line_col(src);
        assert_eq!((line, col), (5, 10));
    }

    #[test]
    fn guarded_statement_spans_include_the_guard() {
        let src = "int a[8];\nfor (int i = 0; i < 4; ++i) {\n  if (i % 2 == 0) a[i] += 1;\n}";
        let spec = parse_kernel("g", src).expect("parses");
        let sp = spec.body[0].span().expect("span");
        assert_eq!(&src[sp.start..sp.end], "if (i % 2 == 0) a[i] += 1;");
        // Guard loads never leak into the op spans.
        assert_eq!(spec.body[0].mem_op_count(), 2);
        assert!(spec.body[0].op_span(0).is_some());
        assert!(spec.body[0].op_span(1).is_some());
    }

    #[test]
    fn render_points_a_caret_at_the_failure() {
        let src = "int a[4];\nfor (int i = 0; i < 4; ++i) {\n  a[i + 1 = 5;\n}";
        let err = parse_kernel("bad", src).expect_err("must fail");
        let rendered = err.render("bad.pvk", src);
        assert!(rendered.starts_with("error: expected `]`"), "{rendered}");
        assert!(rendered.contains("--> bad.pvk:3:11"), "{rendered}");
        assert!(rendered.contains("3 |   a[i + 1 = 5;"), "{rendered}");
        // The caret lines up with the offending `=` in the echoed source.
        let text_line = rendered.lines().nth(3).unwrap();
        let caret_line = rendered.lines().nth(4).unwrap();
        assert_eq!(caret_line.find('^'), text_line.find('='), "{rendered}");
    }

    #[test]
    fn expect_reports_end_of_input() {
        let err = parse_kernel("bad", "int a[4];\nfor (int i = 0; i < 4; ++i) { a[i] = 1")
            .expect_err("must fail");
        assert!(err.message.contains("end of input"), "{err}");
    }

    #[test]
    fn subtraction_and_compound_ops() {
        let spec = parse_kernel(
            "sub",
            "int a[8] = { 9, 9, 9, 9, 9, 9, 9, 9 };\nfor (int i = 0; i < 8; ++i) { a[i] -= i; }",
        )
        .expect("parses");
        let g = golden::execute(&spec);
        assert_eq!(g.arrays[0], vec![9, 8, 7, 6, 5, 4, 3, 2]);
    }
}
