//! Synthesis: lowering a [`KernelSpec`] to an elastic dataflow netlist.
//!
//! This is the reproduction's analogue of the paper's LLVM pass: it builds
//! the datapath (induction-variable forks, constant generators, ALU trees,
//! guard branches) and leaves every memory access as an *open port*
//! described by a [`MemoryInterface`]. A disambiguation controller — LSQ or
//! PreVV — is attached afterwards, becoming the consumer/producer of those
//! port channels. Swapping controllers therefore changes nothing else in the
//! circuit, exactly like the paper swaps Dynamatic's LSQ for PreVV
//! components.
//!
//! ## Guarded statements and fake tokens
//!
//! A guarded statement's memory ports receive their address/value tokens
//! through a [`Branch`] steered by the guard. When the guard is false the
//! address token is diverted to the port's *fake channel* (paper §V-C), so
//! the controller learns the op will not happen this iteration. Synthesis
//! can be told to drop fake tokens instead ([`SynthOptions::fake_tokens`] =
//! false), which reproduces the §V-C deadlock.

use prevv_dataflow::components::{
    BinaryAlu, Branch, Buffer, Constant, Fork, IterSource, Sink, UnOp, UnaryAlu,
};
use prevv_dataflow::{ChannelId, Netlist, SquashBus, Value};

use crate::depend::{analyze, refine_pairs, AmbiguousPair, Dependences};
use crate::expr::Expr;
use crate::golden::MemOpKind;
use crate::iface::{ArrayLayout, MemoryInterface, MemoryPort};
use crate::kernel::{ArrayInit, KernelError, KernelSpec};

/// Synthesis options.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Emit fake tokens for guarded ops (paper §V-C). Disabling this
    /// reproduces the premature-queue deadlock the paper describes.
    pub fake_tokens: bool,
    /// Pipeline latency of opaque-function units.
    pub opaque_latency: u32,
    /// Capacity of the elastic buffers placed on induction-variable and
    /// guard fan-out channels. This is the slack that lets the iteration
    /// source run ahead of slow consumers (Dynamatic's buffer placement);
    /// without it the pipeline serializes on the slowest operand.
    pub slack: usize,
    /// Drop ambiguous pairs that [`refine_pairs`] proves safe (every
    /// collision protected by same-iteration program order) from the
    /// controller's validated set, so the arbiter skips searching for them —
    /// the `prevv-analyze` PV004 fast path. The conservative analysis is
    /// still available in [`SynthesizedKernel::deps`].
    pub bypass_safe_pairs: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            fake_tokens: true,
            opaque_latency: 2,
            slack: 8,
            bypass_safe_pairs: true,
        }
    }
}

/// A synthesized kernel: the open netlist plus everything a controller and
/// the experiment harness need.
#[derive(Debug)]
pub struct SynthesizedKernel {
    /// The datapath netlist with open memory-port channels.
    pub netlist: Netlist,
    /// Description of the open ports.
    pub interface: MemoryInterface,
    /// The squash bus shared by the iteration source (and, later, the
    /// attached controller).
    pub bus: SquashBus,
    /// The kernel this circuit implements.
    pub spec: KernelSpec,
    /// Dependence analysis results (conservative: every ambiguous pair,
    /// including any the interface bypasses).
    pub deps: Dependences,
    /// Pairs proven safe and excluded from `interface.pairs` (empty unless
    /// [`SynthOptions::bypass_safe_pairs`] found any).
    pub bypassed: Vec<AmbiguousPair>,
}

/// Synthesizes a kernel with default options.
///
/// # Errors
///
/// Returns [`KernelError`] if the spec fails validation.
pub fn synthesize(spec: &KernelSpec) -> Result<SynthesizedKernel, KernelError> {
    synthesize_with(spec, &SynthOptions::default())
}

/// Synthesizes a kernel with explicit options.
///
/// # Errors
///
/// Returns [`KernelError`] if the spec fails validation.
pub fn synthesize_with(
    spec: &KernelSpec,
    opts: &SynthOptions,
) -> Result<SynthesizedKernel, KernelError> {
    spec.validate()?;
    let deps = analyze(spec);
    let refinement = if opts.bypass_safe_pairs {
        refine_pairs(spec, &deps)
    } else {
        crate::depend::Refinement {
            pairs: deps.pairs.clone(),
            bypassed: Vec::new(),
        }
    };
    let mut b = Builder {
        opts,
        net: Netlist::new(),
        level_uses: vec![Vec::new(); spec.levels.len()],
        ports: Vec::new(),
        sinks: Vec::new(),
        deps: &deps,
    };

    for (si, stmt) in spec.body.iter().enumerate() {
        b.lower_stmt(si, stmt);
    }

    // The iteration source: one output per loop level plus the allocation
    // stream, emitted at initiation interval 1 in program order.
    let bus = SquashBus::new();
    let alloc_in = b.net.channel();
    let level_chs: Vec<ChannelId> = (0..spec.levels.len()).map(|_| b.net.channel()).collect();
    let space = spec.iteration_space();
    let iterations = space.len();
    let rows: Vec<Vec<Value>> = space
        .into_iter()
        .enumerate()
        .map(|(it, row)| {
            let mut r = Vec::with_capacity(1 + row.len());
            r.push(it as Value);
            r.extend(row);
            r
        })
        .collect();
    let mut outs = vec![alloc_in];
    outs.extend(level_chs.iter().copied());
    b.net
        .add("iter_source", IterSource::new(rows, outs, bus.clone()));

    // Distribute each induction variable to its use sites, decoupling each
    // consumer with an elastic buffer so one slow consumer does not stall
    // the iteration source.
    for (l, ch) in level_chs.into_iter().enumerate() {
        let uses = std::mem::take(&mut b.level_uses[l]);
        if uses.is_empty() {
            b.sinks.push(ch);
        } else {
            let slots = b.buffer_all(&uses, &format!("i{l}"));
            b.net.add(format!("fork_i{l}"), Fork::new(ch, slots));
        }
    }

    if !b.sinks.is_empty() {
        let sinks = std::mem::take(&mut b.sinks);
        b.net.add("discard", Sink::new(sinks));
    }

    // Array layout in the flat RAM.
    let mut base = 0;
    let arrays = spec
        .arrays
        .iter()
        .map(|a| {
            let layout = ArrayLayout {
                name: a.name.clone(),
                base,
                len: a.len,
                init: match &a.init {
                    ArrayInit::Zero => vec![0; a.len],
                    ArrayInit::Values(v) => v.clone(),
                },
            };
            base += a.len;
            layout
        })
        .collect();

    let interface = MemoryInterface {
        ports: b.ports,
        alloc_in,
        arrays,
        iterations,
        pairs: refinement.pairs,
    };

    Ok(SynthesizedKernel {
        netlist: b.net,
        interface,
        bus,
        spec: spec.clone(),
        deps,
        bypassed: refinement.bypassed,
    })
}

struct Builder<'a> {
    opts: &'a SynthOptions,
    net: Netlist,
    /// Channels each loop level's fork must feed (filled lazily).
    level_uses: Vec<Vec<ChannelId>>,
    ports: Vec<MemoryPort>,
    /// Channels to be consumed by a shared discard sink.
    sinks: Vec<ChannelId>,
    deps: &'a Dependences,
}

/// Lazily collected guard-copy requests for one statement.
struct GuardCtx {
    value_ch: ChannelId,
    uses: Vec<ChannelId>,
}

impl GuardCtx {
    fn fresh(&mut self, net: &mut Netlist) -> ChannelId {
        let ch = net.channel();
        self.uses.push(ch);
        ch
    }
}

impl Builder<'_> {
    fn lower_stmt(&mut self, si: usize, stmt: &crate::kernel::Stmt) {
        let mut guard = stmt.guard.as_ref().map(|g| {
            let value_ch = self.lower_expr(g, &mut None);
            GuardCtx {
                value_ch,
                uses: Vec::new(),
            }
        });

        let addr = self.lower_expr(&stmt.index, &mut guard);
        let value = self.lower_expr(&stmt.value, &mut guard);

        // The store port.
        let port_id = self.ports.len();
        let (addr_in, fake_in) = self.gate_addr(si, addr, &mut guard);
        let data_in = match &mut guard {
            Some(g) => {
                let cond = g.fresh(&mut self.net);
                let taken = self.net.channel();
                let dropped = self.net.channel();
                self.net.add(
                    format!("gate_st_val_s{si}"),
                    Branch::new(value, cond, taken, dropped),
                );
                self.sinks.push(dropped);
                taken
            }
            None => value,
        };
        debug_assert_eq!(self.deps.ops[port_id].kind, MemOpKind::Store);
        debug_assert_eq!(self.deps.ops[port_id].array, stmt.array);
        self.ports.push(MemoryPort {
            op: self.deps.ops[port_id].clone(),
            addr_in,
            data_in: Some(data_in),
            data_out: None,
            fake_in,
        });

        // Wire the statement's guard forks (buffered, like the induction
        // variables, so a late guard consumer cannot serialize the loop).
        if let Some(g) = guard {
            if g.uses.is_empty() {
                self.sinks.push(g.value_ch);
            } else {
                let slots = self.buffer_all(&g.uses, &format!("guard_s{si}"));
                self.net
                    .add(format!("fork_guard_s{si}"), Fork::new(g.value_ch, slots));
            }
        }
    }

    /// Interposes an elastic buffer in front of each channel in `uses`,
    /// returning the buffers' input channels (to be driven by a fork).
    fn buffer_all(&mut self, uses: &[ChannelId], label: &str) -> Vec<ChannelId> {
        uses.iter()
            .enumerate()
            .map(|(k, &use_ch)| {
                let slot = self.net.channel();
                self.net.add(
                    format!("buf_{label}_u{k}"),
                    Buffer::new(self.opts.slack, slot, use_ch),
                );
                slot
            })
            .collect()
    }

    /// Lowers an expression, returning the channel carrying its value (one
    /// token per iteration). Loads encountered become memory ports in
    /// canonical order.
    fn lower_expr(&mut self, e: &Expr, guard: &mut Option<GuardCtx>) -> ChannelId {
        match e {
            Expr::Const(v) => {
                let trigger = self.net.channel();
                // Constants are triggered once per iteration by the
                // outermost induction variable's token.
                self.level_uses[0].push(trigger);
                let out = self.net.channel();
                self.net
                    .add(format!("const_{v}"), Constant::new(*v, trigger, out));
                out
            }
            Expr::IndVar(l) => {
                let ch = self.net.channel();
                self.level_uses[*l].push(ch);
                ch
            }
            Expr::Binary(op, lhs, rhs) => {
                let l = self.lower_expr(lhs, guard);
                let r = self.lower_expr(rhs, guard);
                let out = self.net.channel();
                self.net
                    .add(format!("alu_{op}"), BinaryAlu::new(*op, l, r, out));
                out
            }
            Expr::Opaque(f, x) => {
                let input = self.lower_expr(x, guard);
                let out = self.net.channel();
                let fun = *f;
                self.net.add(
                    format!("opaque_{}", f.seed),
                    UnaryAlu::with_latency(
                        UnOp::Opaque(std::rc::Rc::new(move |v| fun.apply(v))),
                        self.opts.opaque_latency,
                        input,
                        out,
                    ),
                );
                out
            }
            Expr::Load(array, idx) => {
                let addr = self.lower_expr(idx, guard);
                let port_id = self.ports.len();
                let si = self.deps.ops[port_id].stmt;
                let (addr_in, fake_in) = self.gate_addr(si, addr, guard);
                let data_out = self.net.channel();
                debug_assert_eq!(self.deps.ops[port_id].kind, MemOpKind::Load);
                debug_assert_eq!(self.deps.ops[port_id].array, *array);
                self.ports.push(MemoryPort {
                    op: self.deps.ops[port_id].clone(),
                    addr_in,
                    data_in: None,
                    data_out: Some(data_out),
                    fake_in,
                });
                data_out
            }
        }
    }

    /// Routes an address channel into a port, inserting the guard branch and
    /// fake-token path for guarded statements.
    fn gate_addr(
        &mut self,
        si: usize,
        addr: ChannelId,
        guard: &mut Option<GuardCtx>,
    ) -> (ChannelId, Option<ChannelId>) {
        match guard {
            None => (addr, None),
            Some(g) => {
                let cond = g.fresh(&mut self.net);
                let taken = self.net.channel();
                let fake = self.net.channel();
                self.net.add(
                    format!("gate_addr_s{si}"),
                    Branch::new(addr, cond, taken, fake),
                );
                if self.opts.fake_tokens {
                    (taken, Some(fake))
                } else {
                    // Reproduces the paper's §V-C deadlock: the controller
                    // never learns the op was skipped.
                    self.sinks.push(fake);
                    (taken, None)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArrayId;
    use crate::kernel::{ArrayDecl, Stmt};
    use prevv_dataflow::components::LoopLevel;

    fn accum_kernel() -> KernelSpec {
        let a = ArrayId(0);
        KernelSpec::new(
            "accum",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid")
    }

    #[test]
    fn ports_follow_canonical_order() {
        let s = synthesize(&accum_kernel()).expect("synthesizes");
        assert_eq!(s.interface.ports.len(), 2);
        assert!(s.interface.ports[0].is_load());
        assert!(s.interface.ports[1].is_store());
        assert_eq!(s.interface.ports[0].op.seq, 0);
        assert_eq!(s.interface.ports[1].op.seq, 1);
        assert_eq!(s.interface.iterations, 4);
    }

    #[test]
    fn load_port_channels_are_open() {
        let s = synthesize(&accum_kernel()).expect("synthesizes");
        // Without a controller the netlist must *not* validate: the port
        // channels are open by design.
        assert!(s.netlist.validate().is_err());
        let p = &s.interface.ports[0];
        assert!(p.data_out.is_some());
        assert!(p.data_in.is_none());
        assert!(p.fake_in.is_none());
    }

    #[test]
    fn guarded_statement_gets_fake_channels() {
        use prevv_dataflow::components::BinOp;
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "guarded",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::guarded(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
                Expr::bin(BinOp::Lt, Expr::var(0), Expr::lit(2)),
            )],
        )
        .expect("valid");
        let s = synthesize(&k).expect("synthesizes");
        assert!(s.interface.ports.iter().all(|p| p.fake_in.is_some()));

        let s2 = synthesize_with(
            &k,
            &SynthOptions {
                fake_tokens: false,
                ..Default::default()
            },
        )
        .expect("synthesizes");
        assert!(s2.interface.ports.iter().all(|p| p.fake_in.is_none()));
    }

    #[test]
    fn array_layout_is_packed() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let k = KernelSpec::new(
            "two_arrays",
            vec![LoopLevel::upto(2)],
            vec![ArrayDecl::zeroed("a", 8), ArrayDecl::zeroed("b", 4)],
            vec![Stmt::store(b, Expr::var(0), Expr::load(a, Expr::var(0)))],
        )
        .expect("valid");
        let s = synthesize(&k).expect("synthesizes");
        assert_eq!(s.interface.arrays[0].base, 0);
        assert_eq!(s.interface.arrays[1].base, 8);
        assert_eq!(s.interface.ram_words(), 12);
        let ram = s.interface.initial_ram();
        assert_eq!(ram.len(), 12);
    }

    #[test]
    fn interface_counts() {
        // The single-level accumulation's load/store pair only ever collides
        // within one iteration (load before store), so the default
        // `bypass_safe_pairs` refinement removes it from the validated set.
        let s = synthesize(&accum_kernel()).expect("synthesizes");
        assert_eq!(s.interface.load_ports(), 1);
        assert_eq!(s.interface.store_ports(), 1);
        assert_eq!(s.interface.ambiguous_ops().len(), 0);
        assert_eq!(s.bypassed.len(), 1);
        assert_eq!(s.deps.pairs.len(), 1, "conservative analysis is retained");

        // Opting out restores the conservative interface.
        let s = synthesize_with(
            &accum_kernel(),
            &SynthOptions {
                bypass_safe_pairs: false,
                ..Default::default()
            },
        )
        .expect("synthesizes");
        assert_eq!(s.interface.ambiguous_ops().len(), 2);
        assert!(s.bypassed.is_empty());
    }
}
