//! Kernel specifications: a loop nest plus a straight-line body of guarded
//! update statements — the input language of the synthesizer, standing in
//! for the C kernels the paper compiles with Dynamatic.

use prevv_dataflow::components::{count_iterations, iteration_space, LoopLevel};
use prevv_dataflow::Value;

use crate::expr::{ArrayId, Expr};
use crate::span::Span;

/// How an array's initial contents are produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayInit {
    /// All zeros.
    Zero,
    /// Explicit values (length must equal the declared length).
    Values(Vec<Value>),
}

/// One array declared by a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name (for reports).
    pub name: String,
    /// Number of words.
    pub len: usize,
    /// Initial contents.
    pub init: ArrayInit,
}

impl ArrayDecl {
    /// Declares a zero-initialized array.
    pub fn zeroed(name: impl Into<String>, len: usize) -> Self {
        ArrayDecl {
            name: name.into(),
            len,
            init: ArrayInit::Zero,
        }
    }

    /// Declares an array with explicit initial values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from `len`.
    pub fn with_values(name: impl Into<String>, values: Vec<Value>) -> Self {
        ArrayDecl {
            name: name.into(),
            len: values.len(),
            init: ArrayInit::Values(values),
        }
    }

    /// Materializes the initial contents.
    pub fn initial(&self) -> Vec<Value> {
        match &self.init {
            ArrayInit::Zero => vec![0; self.len],
            ArrayInit::Values(v) => v.clone(),
        }
    }
}

/// Source locations attached to a parsed statement; all fields are optional
/// because kernels built programmatically carry no source text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtSpans {
    /// The whole statement, guard included, up to the closing `;`.
    pub stmt: Option<Span>,
    /// The store target `a[...]`, index included.
    pub target: Option<Span>,
    /// The index expression between the target's brackets.
    pub index: Option<Span>,
    /// Spans of the load operations in canonical program order (index loads
    /// first, then value loads) — aligned with [`Expr::loads`].
    pub loads: Vec<Span>,
}

/// A guarded store statement: `if guard { array[index] = value }`.
///
/// All memory traffic in a kernel comes from these statements: the loads are
/// the `Expr::Load` nodes inside `index` and `value`, and the store is the
/// statement itself. Read-modify-write updates (`a[x] += v`) are expressed
/// by loading inside `value`.
///
/// Equality compares semantics only: two statements with the same array,
/// index, value and guard are equal even if one was parsed (and carries
/// source spans) and the other built programmatically.
#[derive(Debug, Clone, Eq)]
pub struct Stmt {
    /// Target array.
    pub array: ArrayId,
    /// Index expression (reduced modulo the array length, see
    /// [`KernelSpec::resolve_index`]).
    pub index: Expr,
    /// Value expression.
    pub value: Expr,
    /// Optional guard: the statement executes only when this evaluates
    /// nonzero. Guarded statements are what create the deadlock hazard of
    /// paper §V-C.
    pub guard: Option<Expr>,
    /// Source locations (populated by the parser, empty otherwise).
    spans: StmtSpans,
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        self.array == other.array
            && self.index == other.index
            && self.value == other.value
            && self.guard == other.guard
    }
}

impl Stmt {
    /// An unguarded store.
    pub fn store(array: ArrayId, index: Expr, value: Expr) -> Self {
        Stmt {
            array,
            index,
            value,
            guard: None,
            spans: StmtSpans::default(),
        }
    }

    /// A guarded store.
    pub fn guarded(array: ArrayId, index: Expr, value: Expr, guard: Expr) -> Self {
        Stmt {
            array,
            index,
            value,
            guard: Some(guard),
            spans: StmtSpans::default(),
        }
    }

    /// Attaches source spans (builder style; used by the parser).
    pub fn with_spans(mut self, spans: StmtSpans) -> Self {
        self.spans = spans;
        self
    }

    /// Source locations recorded for this statement, if it was parsed.
    pub fn spans(&self) -> &StmtSpans {
        &self.spans
    }

    /// Span of the whole statement, when known.
    pub fn span(&self) -> Option<Span> {
        self.spans.stmt
    }

    /// Span of the store's index expression, when known.
    pub fn index_span(&self) -> Option<Span> {
        self.spans.index
    }

    /// Span of the `k`-th memory operation of this statement in canonical
    /// program order (index loads, value loads, then the store — the order
    /// of [`Stmt::mem_op_count`] and `depend::enumerate_ops`). Returns
    /// `None` when out of range or when the statement carries no spans.
    pub fn op_span(&self, k: usize) -> Option<Span> {
        if k < self.spans.loads.len() {
            Some(self.spans.loads[k])
        } else if k == self.spans.loads.len() && k + 1 == self.mem_op_count() {
            self.spans.target
        } else {
            None
        }
    }

    /// Memory operations of this statement in canonical program order:
    /// loads of the index expression, loads of the value expression, then
    /// the store itself. Guard-expression loads are not supported (guards
    /// must be affine), which [`KernelSpec::validate`] enforces.
    pub fn mem_op_count(&self) -> usize {
        self.index.loads().len() + self.value.loads().len() + 1
    }
}

/// A complete kernel: loop nest, arrays, and body.
///
/// Equality compares semantics only (name, levels, arrays, body); the
/// optional `depth_q` directive recorded by the parser is configuration
/// metadata, like statement spans.
#[derive(Debug, Clone, Eq)]
pub struct KernelSpec {
    /// Kernel name (reports and labels).
    pub name: String,
    /// Loop levels, outermost first. The iteration space is their product,
    /// possibly triangular via [`prevv_dataflow::components::Bound`].
    pub levels: Vec<LoopLevel>,
    /// Declared arrays, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Straight-line body executed once per innermost iteration.
    pub body: Vec<Stmt>,
    /// Premature-queue depth pinned by a `depth_q = N;` source directive,
    /// with the directive's span (populated by the parser, `None`
    /// otherwise). Overrides CLI depth options: the file records the
    /// configuration it was authored for.
    depth_hint: Option<(usize, Span)>,
}

impl PartialEq for KernelSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.levels == other.levels
            && self.arrays == other.arrays
            && self.body == other.body
    }
}

/// Problems detected by [`KernelSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A statement references an undeclared array.
    UnknownArray(ArrayId),
    /// An induction variable deeper than the loop nest is referenced.
    UnknownIndVar(usize),
    /// A guard expression touches memory or opaque functions.
    NonAffineGuard(usize),
    /// The kernel has no loop levels.
    NoLoops,
    /// The kernel body is empty.
    EmptyBody,
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::UnknownArray(a) => write!(f, "statement references undeclared {a}"),
            KernelError::UnknownIndVar(l) => {
                write!(f, "induction variable level {l} exceeds loop nest depth")
            }
            KernelError::NonAffineGuard(s) => {
                write!(f, "guard of statement {s} must be an affine expression")
            }
            KernelError::NoLoops => write!(f, "kernel has no loop levels"),
            KernelError::EmptyBody => write!(f, "kernel body is empty"),
        }
    }
}

impl std::error::Error for KernelError {}

impl KernelSpec {
    /// Creates a kernel and validates it.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError`] found.
    pub fn new(
        name: impl Into<String>,
        levels: Vec<LoopLevel>,
        arrays: Vec<ArrayDecl>,
        body: Vec<Stmt>,
    ) -> Result<Self, KernelError> {
        let spec = KernelSpec {
            name: name.into(),
            levels,
            arrays,
            body,
            depth_hint: None,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Attaches a `depth_q = N;` directive (builder style; used by the
    /// parser).
    #[must_use]
    pub fn with_depth_hint(mut self, depth: usize, span: Span) -> Self {
        self.depth_hint = Some((depth, span));
        self
    }

    /// The `depth_q` pinned by a source directive, with its span, if any.
    pub fn depth_hint(&self) -> Option<(usize, Span)> {
        self.depth_hint
    }

    /// Checks referential integrity of the kernel.
    ///
    /// # Errors
    ///
    /// See [`KernelError`].
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.levels.is_empty() {
            return Err(KernelError::NoLoops);
        }
        if self.body.is_empty() {
            return Err(KernelError::EmptyBody);
        }
        for (si, stmt) in self.body.iter().enumerate() {
            self.check_expr(&stmt.index)?;
            self.check_expr(&stmt.value)?;
            if stmt.array.0 >= self.arrays.len() {
                return Err(KernelError::UnknownArray(stmt.array));
            }
            if let Some(g) = &stmt.guard {
                self.check_expr(g)?;
                if g.is_runtime_dependent() {
                    return Err(KernelError::NonAffineGuard(si));
                }
            }
        }
        Ok(())
    }

    fn check_expr(&self, e: &Expr) -> Result<(), KernelError> {
        match e {
            Expr::Const(_) => Ok(()),
            Expr::IndVar(l) => {
                if *l >= self.levels.len() {
                    Err(KernelError::UnknownIndVar(*l))
                } else {
                    Ok(())
                }
            }
            Expr::Load(a, idx) => {
                if a.0 >= self.arrays.len() {
                    return Err(KernelError::UnknownArray(*a));
                }
                self.check_expr(idx)
            }
            Expr::Binary(_, l, r) => {
                self.check_expr(l)?;
                self.check_expr(r)
            }
            Expr::Opaque(_, x) => self.check_expr(x),
        }
    }

    /// The full iteration space in program order.
    pub fn iteration_space(&self) -> Vec<Vec<Value>> {
        iteration_space(&self.levels)
    }

    /// Total number of innermost iterations.
    ///
    /// Computed without materializing the space, so it is cheap even for
    /// 10^6+-iteration nests that [`KernelSpec::iteration_space`] could not
    /// reasonably enumerate.
    pub fn iteration_count(&self) -> usize {
        count_iterations(&self.levels)
    }

    /// Memory operations per iteration (loads + stores over all statements,
    /// ignoring guards).
    pub fn mem_ops_per_iter(&self) -> usize {
        self.body.iter().map(Stmt::mem_op_count).sum()
    }

    /// Reduces a raw index into the valid range of `array` (Euclidean
    /// remainder, so negative indices wrap). Opaque index functions can
    /// produce arbitrary values; both the golden interpreter and the
    /// synthesized circuit apply this same reduction so results always
    /// agree.
    pub fn resolve_index(&self, array: ArrayId, raw: Value) -> usize {
        let len = self.arrays[array.0].len as Value;
        raw.rem_euclid(len) as usize
    }

    /// Total datapath operator count (for area estimation).
    pub fn datapath_op_count(&self) -> usize {
        self.body
            .iter()
            .map(|s| {
                s.index.op_count() + s.value.op_count() + s.guard.as_ref().map_or(0, Expr::op_count)
            })
            .sum()
    }

    /// Multiplier-class operator count (for area estimation).
    pub fn datapath_mul_count(&self) -> usize {
        self.body
            .iter()
            .map(|s| {
                s.index.mul_count()
                    + s.value.mul_count()
                    + s.guard.as_ref().map_or(0, Expr::mul_count)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::{Bound, LoopLevel};

    fn toy() -> KernelSpec {
        // for i in 0..4 { a[b[i]] += 1; b[i] += 2 }  (paper Fig. 2a)
        let a = ArrayId(0);
        let b = ArrayId(1);
        KernelSpec::new(
            "fig2a",
            vec![LoopLevel::upto(4)],
            vec![
                ArrayDecl::zeroed("a", 8),
                ArrayDecl::with_values("b", vec![0, 1, 2, 3]),
            ],
            vec![
                Stmt::store(
                    a,
                    Expr::load(b, Expr::var(0)),
                    Expr::load(a, Expr::load(b, Expr::var(0))).add(Expr::lit(1)),
                ),
                Stmt::store(
                    b,
                    Expr::var(0),
                    Expr::load(b, Expr::var(0)).add(Expr::lit(2)),
                ),
            ],
        )
        .expect("valid kernel")
    }

    #[test]
    fn validation_accepts_well_formed() {
        let k = toy();
        assert_eq!(k.iteration_count(), 4);
        // stmt 0: loads b[i], b[i] (in value), a[b[i]] + store = 4 ops;
        // stmt 1: load b[i] + store = 2 ops
        assert_eq!(k.mem_ops_per_iter(), 6);
    }

    #[test]
    fn validation_rejects_unknown_array() {
        let r = KernelSpec::new(
            "bad",
            vec![LoopLevel::upto(2)],
            vec![ArrayDecl::zeroed("a", 4)],
            vec![Stmt::store(ArrayId(3), Expr::var(0), Expr::lit(1))],
        );
        assert_eq!(r.unwrap_err(), KernelError::UnknownArray(ArrayId(3)));
    }

    #[test]
    fn validation_rejects_deep_indvar() {
        let r = KernelSpec::new(
            "bad",
            vec![LoopLevel::upto(2)],
            vec![ArrayDecl::zeroed("a", 4)],
            vec![Stmt::store(ArrayId(0), Expr::var(2), Expr::lit(1))],
        );
        assert_eq!(r.unwrap_err(), KernelError::UnknownIndVar(2));
    }

    #[test]
    fn validation_rejects_memory_guard() {
        let a = ArrayId(0);
        let r = KernelSpec::new(
            "bad",
            vec![LoopLevel::upto(2)],
            vec![ArrayDecl::zeroed("a", 4)],
            vec![Stmt::guarded(
                a,
                Expr::var(0),
                Expr::lit(1),
                Expr::load(a, Expr::var(0)),
            )],
        );
        assert_eq!(r.unwrap_err(), KernelError::NonAffineGuard(0));
    }

    #[test]
    fn resolve_index_wraps_euclidean() {
        let k = toy();
        assert_eq!(k.resolve_index(ArrayId(0), 9), 1);
        assert_eq!(k.resolve_index(ArrayId(0), -1), 7);
    }

    #[test]
    fn triangular_nest_counts() {
        let k = KernelSpec::new(
            "tri",
            vec![
                LoopLevel::upto(4),
                LoopLevel::new(Bound::OuterPlus(0, 0), Bound::Const(4)),
            ],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(
                ArrayId(0),
                Expr::var(0).mul(Expr::lit(4)).add(Expr::var(1)),
                Expr::lit(1),
            )],
        )
        .expect("valid");
        assert_eq!(k.iteration_count(), 10);
        assert_eq!(k.datapath_op_count(), 2);
        assert_eq!(k.datapath_mul_count(), 1);
    }
}
