//! The contract between a synthesized datapath and a memory disambiguation
//! controller.
//!
//! Synthesis produces a netlist whose memory accesses end in open channels;
//! a controller (the Dynamatic-style LSQ from `prevv-mem`, or the PreVV
//! architecture from `prevv-core`) is then *attached*: it becomes the
//! consumer of every port's address/data channels and the producer of every
//! load's result channel. This mirrors how the paper's LLVM pass swaps the
//! LSQ for PreVV components without touching the rest of the circuit.

use std::collections::HashSet;

use prevv_dataflow::{ChannelId, Value};

use crate::depend::{AmbiguousPair, StaticMemOp};
use crate::golden::MemOpKind;

/// Placement of one kernel array inside the flat simulated RAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Array name (reports).
    pub name: String,
    /// First word of the array in the flat RAM.
    pub base: usize,
    /// Number of words.
    pub len: usize,
    /// Initial contents.
    pub init: Vec<Value>,
}

impl ArrayLayout {
    /// Maps a raw index expression result to a flat RAM address, reducing it
    /// into range with Euclidean remainder (identical to the golden model's
    /// [`resolve_index`](crate::KernelSpec::resolve_index)).
    pub fn flat_addr(&self, raw: Value) -> usize {
        self.base + raw.rem_euclid(self.len as Value) as usize
    }
}

/// One memory access port awaiting a controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPort {
    /// The static operation this port implements.
    pub op: StaticMemOp,
    /// Address tokens, one per (unguarded-or-taken) iteration. Open
    /// consumer side: the controller must consume it.
    pub addr_in: ChannelId,
    /// Store value tokens (stores only). Open consumer side.
    pub data_in: Option<ChannelId>,
    /// Load results (loads only). Open producer side: the controller must
    /// produce it.
    pub data_out: Option<ChannelId>,
    /// Fake tokens for guarded ops (paper §V-C): one token arrives here per
    /// iteration whose guard was false. Open consumer side. `None` when the
    /// op is unguarded or fake tokens were disabled at synthesis.
    pub fake_in: Option<ChannelId>,
}

impl MemoryPort {
    /// Is this a load port?
    pub fn is_load(&self) -> bool {
        self.op.kind == MemOpKind::Load
    }

    /// Is this a store port?
    pub fn is_store(&self) -> bool {
        self.op.kind == MemOpKind::Store
    }
}

/// Everything a controller needs to plug into a synthesized kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryInterface {
    /// All ports in canonical program order (`op.seq` ascending).
    pub ports: Vec<MemoryPort>,
    /// One token per iteration, issued in program order — the group
    /// allocation stream (Dynamatic's group allocator input). Controllers
    /// that do not allocate (PreVV) simply consume it.
    pub alloc_in: ChannelId,
    /// Array placement in the flat RAM.
    pub arrays: Vec<ArrayLayout>,
    /// Total number of iterations the kernel will issue.
    pub iterations: usize,
    /// The ambiguous pairs found by dependence analysis.
    pub pairs: Vec<AmbiguousPair>,
}

impl MemoryInterface {
    /// Total words of RAM needed.
    pub fn ram_words(&self) -> usize {
        self.arrays.iter().map(|a| a.len).sum()
    }

    /// Initial RAM image (arrays at their bases).
    pub fn initial_ram(&self) -> Vec<Value> {
        let mut ram = vec![0; self.ram_words()];
        for a in &self.arrays {
            ram[a.base..a.base + a.len].copy_from_slice(&a.init);
        }
        ram
    }

    /// Ids (into [`Self::ports`]) of ops in at least one ambiguous pair.
    pub fn ambiguous_ops(&self) -> HashSet<usize> {
        self.pairs.iter().flat_map(|p| [p.load, p.store]).collect()
    }

    /// Number of load ports.
    pub fn load_ports(&self) -> usize {
        self.ports.iter().filter(|p| p.is_load()).count()
    }

    /// Number of store ports.
    pub fn store_ports(&self) -> usize {
        self.ports.iter().filter(|p| p.is_store()).count()
    }

    /// Extracts the final array contents from a flat RAM image.
    pub fn split_ram<'a>(&self, ram: &'a [Value]) -> Vec<&'a [Value]> {
        self.arrays
            .iter()
            .map(|a| &ram[a.base..a.base + a.len])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_addr_wraps_like_golden() {
        let a = ArrayLayout {
            name: "a".into(),
            base: 100,
            len: 8,
            init: vec![0; 8],
        };
        assert_eq!(a.flat_addr(3), 103);
        assert_eq!(a.flat_addr(9), 101);
        assert_eq!(a.flat_addr(-1), 107);
    }
}
