//! C-like rendering of kernels — what the paper's HLS input would look
//! like, reconstructed from the IR. Used by reports, examples, and error
//! messages.

use std::fmt::Write;

use crate::expr::Expr;
use crate::kernel::{ArrayInit, KernelSpec};
use prevv_dataflow::components::Bound;

/// Renders a kernel as pseudo-C.
///
/// ```
/// use prevv_ir::{pretty, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};
/// use prevv_dataflow::components::LoopLevel;
///
/// # fn main() -> Result<(), prevv_ir::KernelError> {
/// let a = ArrayId(0);
/// let k = KernelSpec::new(
///     "inc",
///     vec![LoopLevel::upto(8)],
///     vec![ArrayDecl::zeroed("a", 8)],
///     vec![Stmt::store(a, Expr::var(0), Expr::load(a, Expr::var(0)).add(Expr::lit(1)))],
/// )?;
/// let src = pretty::render(&k);
/// assert!(src.contains("for (int i = 0; i < 8; ++i)"));
/// assert!(src.contains("a[i] = (a[i] + 1);"));
/// # Ok(())
/// # }
/// ```
pub fn render(spec: &KernelSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// kernel: {}", spec.name);
    for a in &spec.arrays {
        match &a.init {
            ArrayInit::Zero => {
                let _ = writeln!(out, "int {}[{}];", a.name, a.len);
            }
            ArrayInit::Values(v) => {
                let vals = v
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "int {}[{}] = {{ {vals} }};", a.name, a.len);
            }
        }
    }
    // The depth_q directive is configuration the file was authored for;
    // dropping it here would silently strip the pinned depth on every
    // render -> parse round trip.
    if let Some((depth, _)) = spec.depth_hint() {
        let _ = writeln!(out, "depth_q = {depth};");
    }
    let names = ["i", "j", "k", "l", "m", "n"];
    for (lvl, level) in spec.levels.iter().enumerate() {
        let v = names.get(lvl).copied().unwrap_or("v");
        let lo = bound(&level.lo, &names);
        let hi = bound(&level.hi, &names);
        let _ = writeln!(
            out,
            "{}for (int {v} = {lo}; {v} < {hi}; ++{v}) {{",
            "  ".repeat(lvl)
        );
    }
    let body_indent = "  ".repeat(spec.levels.len());
    for stmt in &spec.body {
        let target = &spec.arrays[stmt.array.0].name;
        let idx = expr(&stmt.index, spec);
        let val = expr(&stmt.value, spec);
        match &stmt.guard {
            Some(g) => {
                let _ = writeln!(
                    out,
                    "{body_indent}if ({}) {target}[{idx}] = {val};",
                    expr(g, spec)
                );
            }
            None => {
                let _ = writeln!(out, "{body_indent}{target}[{idx}] = {val};");
            }
        }
    }
    for lvl in (0..spec.levels.len()).rev() {
        let _ = writeln!(out, "{}}}", "  ".repeat(lvl));
    }
    out
}

fn bound(b: &Bound, names: &[&str]) -> String {
    match b {
        Bound::Const(c) => c.to_string(),
        Bound::OuterPlus(level, off) => {
            let v = names.get(*level).copied().unwrap_or("v");
            match off {
                0 => v.to_string(),
                o if *o > 0 => format!("{v} + {o}"),
                o => format!("{v} - {}", -o),
            }
        }
    }
}

fn expr(e: &Expr, spec: &KernelSpec) -> String {
    let names = ["i", "j", "k", "l", "m", "n"];
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::IndVar(l) => names.get(*l).copied().unwrap_or("v").to_string(),
        Expr::Load(a, idx) => {
            format!("{}[{}]", spec.arrays[a.0].name, expr(idx, spec))
        }
        Expr::Binary(op, l, r) => {
            use prevv_dataflow::components::BinOp as B;
            let sym = match op {
                B::Add => "+",
                B::Sub => "-",
                B::Mul => "*",
                B::Div => "/",
                B::Rem => "%",
                B::And => "&",
                B::Or => "|",
                B::Xor => "^",
                B::Shl => "<<",
                B::Shr => ">>",
                B::Eq => "==",
                B::Ne => "!=",
                B::Lt => "<",
                B::Le => "<=",
                B::Gt => ">",
                B::Ge => ">=",
                B::Min | B::Max => {
                    return format!(
                        "{}({}, {})",
                        if *op == B::Min { "min" } else { "max" },
                        expr(l, spec),
                        expr(r, spec)
                    );
                }
                // `BinOp` is non-exhaustive; render unknown future ops
                // generically rather than failing.
                other => {
                    return format!("{other}({}, {})", expr(l, spec), expr(r, spec));
                }
            };
            format!("({} {sym} {})", expr(l, spec), expr(r, spec))
        }
        // The `h<seed>_<modulus>(...)` spelling round-trips through the
        // parser (`prevv_ir::parse`).
        Expr::Opaque(f, x) => format!("h{}_{}({})", f.seed, f.modulus, expr(x, spec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ArrayId, OpaqueFn};
    use crate::kernel::{ArrayDecl, Stmt};
    use prevv_dataflow::components::{BinOp, LoopLevel};

    #[test]
    fn renders_guarded_triangular_kernel() {
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "demo",
            vec![
                LoopLevel::upto(4),
                LoopLevel::new(Bound::OuterPlus(0, 1), Bound::Const(4)),
            ],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::guarded(
                a,
                Expr::var(0).mul(Expr::lit(4)).add(Expr::var(1)),
                Expr::lit(1),
                Expr::bin(BinOp::Gt, Expr::var(1), Expr::lit(2)),
            )],
        )
        .expect("valid");
        let src = render(&k);
        assert!(src.contains("for (int i = 0; i < 4; ++i) {"));
        assert!(src.contains("for (int j = i + 1; j < 4; ++j) {"));
        assert!(src.contains("if ((j > 2)) a[((i * 4) + j)] = 1;"));
        assert_eq!(src.matches('}').count(), 2);
    }

    /// Strips the leading `// kernel:` line so the text can be re-parsed.
    fn reparse(name: &str, src: &str) -> KernelSpec {
        let body: String = src.lines().skip(1).collect::<Vec<_>>().join("\n");
        crate::parse::parse_kernel(name, &body).expect("round-trips")
    }

    #[test]
    fn depth_hint_round_trips() {
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "pinned",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(a, Expr::var(0), Expr::lit(1))],
        )
        .expect("valid")
        .with_depth_hint(32, crate::span::Span::point(0));
        let src = render(&k);
        assert!(src.contains("depth_q = 32;"), "{src}");
        let reparsed = reparse("pinned", &src);
        assert_eq!(reparsed.depth_hint().map(|(d, _)| d), Some(32));
    }

    #[test]
    fn array_named_like_opaque_round_trips() {
        // An array whose name matches the `h<seed>_<modulus>` opaque spelling
        // must still parse as an array access.
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "shadow",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("h3_8", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let src = render(&k);
        let reparsed = reparse("shadow", &src);
        assert_eq!(k, reparsed);
    }

    #[test]
    fn min_max_round_trip() {
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "clamp",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::bin(
                    BinOp::Max,
                    Expr::lit(0),
                    Expr::bin(BinOp::Min, Expr::var(0), Expr::lit(3)),
                ),
            )],
        )
        .expect("valid");
        let src = render(&k);
        assert!(src.contains("max(0, min(i, 3))"), "{src}");
        let reparsed = reparse("clamp", &src);
        assert_eq!(k, reparsed);
    }

    #[test]
    fn renders_opaque_functions() {
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "h",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("h", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0).opaque(OpaqueFn::new(0xAB, 8)),
                Expr::lit(1),
            )],
        )
        .expect("valid");
        let src = render(&k);
        assert!(src.contains("h[h171_8(i)] = 1;"), "{src}");
        // And it round-trips through the parser.
        let body: String = src.lines().skip(1).collect::<Vec<_>>().join("\n");
        let reparsed = crate::parse::parse_kernel("h2", &body).expect("round-trips");
        assert_eq!(
            crate::golden::execute(&k).arrays,
            crate::golden::execute(&reparsed).arrays
        );
    }
}
