//! # prevv-ir — kernel IR, dependence analysis, and synthesis
//!
//! The compiler side of the PreVV reproduction. Kernels are expressed as
//! loop nests with straight-line bodies of (optionally guarded) store
//! statements over expression trees ([`KernelSpec`]); this crate provides:
//!
//! * a **golden interpreter** ([`golden::execute`]) giving the sequential C
//!   semantics every circuit must match;
//! * **dependence analysis** ([`depend::analyze`]) finding the ambiguous
//!   load/store pairs (paper Def. 1) — exact for affine indices, conservative
//!   for runtime-dependent ones;
//! * a **synthesizer** ([`synth::synthesize`]) lowering kernels to elastic
//!   netlists with *open memory ports*, onto which a disambiguation
//!   controller (LSQ from `prevv-mem`, or PreVV from `prevv-core`) is
//!   attached.
//!
//! ## Example
//!
//! ```
//! use prevv_ir::{ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};
//! use prevv_ir::{depend, golden, synth};
//! use prevv_dataflow::components::LoopLevel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // for i in 0..8 { a[i] = a[i] + 1 }
//! let a = ArrayId(0);
//! let spec = KernelSpec::new(
//!     "inc",
//!     vec![LoopLevel::upto(8)],
//!     vec![ArrayDecl::zeroed("a", 8)],
//!     vec![Stmt::store(a, Expr::var(0), Expr::load(a, Expr::var(0)).add(Expr::lit(1)))],
//! )?;
//! let gold = golden::execute(&spec);
//! assert_eq!(gold.array(a), &[1; 8]);
//! let deps = depend::analyze(&spec);
//! assert!(deps.needs_disambiguation());
//! let circuit = synth::synthesize(&spec)?;
//! assert_eq!(circuit.interface.ports.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depend;
mod expr;
pub mod golden;
mod iface;
mod kernel;
pub mod parse;
pub mod pretty;
pub mod span;
pub mod symdep;
pub mod synth;

pub use expr::{ArrayId, BinOp, Expr, OpaqueFn};
pub use golden::{GoldenResult, MemEvent, MemOpKind};
pub use iface::{ArrayLayout, MemoryInterface, MemoryPort};
pub use kernel::{ArrayDecl, ArrayInit, KernelError, KernelSpec, Stmt, StmtSpans};
pub use span::Span;
pub use synth::{synthesize, synthesize_with, SynthOptions, SynthesizedKernel};
