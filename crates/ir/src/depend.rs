//! Memory dependence analysis: finding the ambiguous pairs (paper Def. 1).
//!
//! The paper uses polyhedral analysis (Polly) to identify load/store pairs
//! that may conflict at runtime. Our kernels have bounded loop nests, so we
//! get an *exact* analysis for affine indices by enumerating each access's
//! address set over the iteration space, and a conservative answer
//! (ambiguous) whenever an index depends on memory contents or opaque
//! runtime functions — precisely the situation of the paper's Fig. 2(b)
//! where `f(x)`/`g(x)` defeat the compiler.

use std::collections::HashSet;

use prevv_dataflow::Value;

use crate::expr::{ArrayId, Expr};
use crate::golden::MemOpKind;
use crate::kernel::KernelSpec;
use crate::symdep::{self, PairClass};

/// Largest iteration-space size the exact (enumerating) analyses run on.
///
/// Below this, address sets and collision distances are enumerated exactly,
/// as in PR 1. Above it, only the symbolic tests in [`crate::symdep`] apply;
/// whatever they cannot prove stays conservatively ambiguous/validated.
pub const ENUM_LIMIT: usize = 4096;

/// A static memory operation slot: one load or store site in the kernel
/// body. Each executes at most once per iteration (guards can suppress it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticMemOp {
    /// Dense id (index into [`Dependences::ops`]).
    pub id: usize,
    /// Statement this op belongs to.
    pub stmt: usize,
    /// Program-order sequence number within one iteration — the contents of
    /// the paper's order ROM.
    pub seq: u32,
    /// Load or store.
    pub kind: MemOpKind,
    /// Accessed array.
    pub array: ArrayId,
    /// True if the owning statement is guarded (the op may be replaced by a
    /// fake token at runtime, paper §V-C).
    pub guarded: bool,
    /// The index expression of this access.
    pub index: Expr,
}

/// A load/store pair that may conflict at runtime (paper Def. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AmbiguousPair {
    /// Op id of the load.
    pub load: usize,
    /// Op id of the store.
    pub store: usize,
}

/// The result of dependence analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependences {
    /// All static memory operations in canonical program order.
    pub ops: Vec<StaticMemOp>,
    /// All ambiguous load/store pairs.
    pub pairs: Vec<AmbiguousPair>,
}

impl Dependences {
    /// Ids of ops participating in at least one ambiguous pair — the ops
    /// that must be routed through a disambiguation controller.
    pub fn ambiguous_ops(&self) -> HashSet<usize> {
        self.pairs.iter().flat_map(|p| [p.load, p.store]).collect()
    }

    /// True if the kernel needs any disambiguation at all.
    pub fn needs_disambiguation(&self) -> bool {
        !self.pairs.is_empty()
    }

    /// Number of static loads.
    pub fn load_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| o.kind == MemOpKind::Load)
            .count()
    }

    /// Number of static stores.
    pub fn store_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| o.kind == MemOpKind::Store)
            .count()
    }
}

/// Enumerates the static memory operations of a kernel in canonical order
/// (per statement: index-expression loads, value-expression loads, store).
pub fn enumerate_ops(spec: &KernelSpec) -> Vec<StaticMemOp> {
    let mut ops = Vec::new();
    let mut seq: u32 = 0;
    for (si, stmt) in spec.body.iter().enumerate() {
        let guarded = stmt.guard.is_some();
        for (array, idx) in stmt.index.loads().into_iter().chain(stmt.value.loads()) {
            ops.push(StaticMemOp {
                id: ops.len(),
                stmt: si,
                seq,
                kind: MemOpKind::Load,
                array,
                guarded,
                index: idx.clone(),
            });
            seq += 1;
        }
        ops.push(StaticMemOp {
            id: ops.len(),
            stmt: si,
            seq,
            kind: MemOpKind::Store,
            array: stmt.array,
            guarded,
            index: stmt.index.clone(),
        });
        seq += 1;
    }
    ops
}

/// Runs the dependence analysis.
///
/// Two accesses of the same array form an ambiguous pair when their address
/// sets can intersect. The symbolic GCD/Banerjee tests ([`crate::symdep`])
/// run first and can discharge a pair as disjoint on any space size; for
/// spaces up to [`ENUM_LIMIT`] the address sets of the remaining affine
/// pairs are then enumerated exactly, beyond it they stay conservatively
/// ambiguous. An index that reads memory or applies an opaque function makes
/// the pair ambiguous unconditionally (its addresses are unknowable before
/// runtime). This matches Dynamatic's policy of routing every potentially
/// dependent access through the LSQ.
pub fn analyze(spec: &KernelSpec) -> Dependences {
    let ops = enumerate_ops(spec);
    let small = spec.iteration_count() <= ENUM_LIMIT;
    let space = if small {
        spec.iteration_space()
    } else {
        Vec::new()
    };
    // Precompute each op's address set (None = runtime-dependent or the
    // space is too large to enumerate).
    let addr_sets: Vec<Option<HashSet<usize>>> = ops
        .iter()
        .map(|op| {
            if !small || op.index.is_runtime_dependent() {
                None
            } else {
                Some(
                    space
                        .iter()
                        .map(|row| spec.resolve_index(op.array, eval_affine(&op.index, row)))
                        .collect(),
                )
            }
        })
        .collect();

    let mut pairs = Vec::new();
    for l in &ops {
        if l.kind != MemOpKind::Load {
            continue;
        }
        for s in &ops {
            if s.kind != MemOpKind::Store || s.array != l.array {
                continue;
            }
            let affine = !l.index.is_runtime_dependent() && !s.index.is_runtime_dependent();
            if affine
                && symdep::classify_accesses(spec, &l.index, &s.index, l.array)
                    == PairClass::Disjoint
            {
                // Symbolic fast path: proved never to touch the same cell.
                continue;
            }
            let conflict = match (&addr_sets[l.id], &addr_sets[s.id]) {
                (Some(la), Some(sa)) => !la.is_disjoint(sa),
                _ => true,
            };
            if conflict {
                pairs.push(AmbiguousPair {
                    load: l.id,
                    store: s.id,
                });
            }
        }
    }
    Dependences { ops, pairs }
}

/// The iteration distance profile of one ambiguous pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDistance {
    /// The pair.
    pub pair: AmbiguousPair,
    /// Minimum `|iter(load) − iter(store)|` at which the pair's addresses
    /// collide outside same-iteration program-order protection. `None` means
    /// no such collision exists (proved by enumeration or symbolically), or
    /// that the distance is unknowable statically (runtime-dependent index,
    /// or a space past [`ENUM_LIMIT`] with no symbolic proof). Distance 0
    /// means a same-iteration (ROM-ordered) conflict exists.
    pub min_distance: Option<u64>,
}

/// Minimum unprotected collision distance of one affine pair, by exact
/// enumeration over the materialized space.
fn enumerated_min_distance(
    spec: &KernelSpec,
    load: &StaticMemOp,
    store: &StaticMemOp,
    space: &[Vec<Value>],
) -> Option<u64> {
    let laddrs: Vec<usize> = space
        .iter()
        .map(|row| spec.resolve_index(load.array, eval_affine(&load.index, row)))
        .collect();
    let saddrs: Vec<usize> = space
        .iter()
        .map(|row| spec.resolve_index(store.array, eval_affine(&store.index, row)))
        .collect();
    let mut best: Option<u64> = None;
    for (i1, &la) in laddrs.iter().enumerate() {
        for (i2, &sa) in saddrs.iter().enumerate() {
            if la != sa {
                continue;
            }
            if i1 == i2 && load.seq < store.seq {
                // The load precedes the store in the same iteration:
                // program order already protects it.
                continue;
            }
            let d = i1.abs_diff(i2) as u64;
            best = Some(best.map_or(d, |b| b.min(d)));
            if best == Some(0) {
                break;
            }
        }
    }
    best
}

/// Computes the minimum conflict distance of every ambiguous pair.
///
/// Short distances are what make premature execution race (the producer
/// store has not even arrived when the consumer load issues); the sizing
/// model and the dependence predictor both care about this profile. The
/// symbolic tests serve as a fast path where their verdict is exact (a
/// disjoint proof, or a same-iteration-only proof on a program-order
/// protected pair, both meaning "no unprotected collision"); enumeration
/// covers the rest up to [`ENUM_LIMIT`] iterations.
pub fn pair_distances(spec: &KernelSpec, deps: &Dependences) -> Vec<PairDistance> {
    let small = spec.iteration_count() <= ENUM_LIMIT;
    let space = if small {
        spec.iteration_space()
    } else {
        Vec::new()
    };
    deps.pairs
        .iter()
        .map(|&pair| {
            let load = &deps.ops[pair.load];
            let store = &deps.ops[pair.store];
            if load.index.is_runtime_dependent() || store.index.is_runtime_dependent() {
                return PairDistance {
                    pair,
                    min_distance: None,
                };
            }
            match symdep::classify_accesses(spec, &load.index, &store.index, load.array) {
                PairClass::Disjoint => {
                    return PairDistance {
                        pair,
                        min_distance: None,
                    }
                }
                PairClass::SameIterationOnly if load.seq < store.seq => {
                    return PairDistance {
                        pair,
                        min_distance: None,
                    }
                }
                _ => {}
            }
            if !small {
                // No symbolic proof and the space is too large to enumerate:
                // the distance is unknowable.
                return PairDistance {
                    pair,
                    min_distance: None,
                };
            }
            PairDistance {
                pair,
                min_distance: enumerated_min_distance(spec, load, store, &space),
            }
        })
        .collect()
}

/// The outcome of [`refine_pairs`]: the ambiguous pairs split into those
/// that still need runtime validation and those proven safe statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refinement {
    /// Pairs that must be validated at runtime.
    pub pairs: Vec<AmbiguousPair>,
    /// Pairs whose every address collision is protected by same-iteration
    /// program order — the controller may bypass the arbiter for them
    /// (the `prevv-analyze` PV004 fast path).
    pub bypassed: Vec<AmbiguousPair>,
}

/// Splits the ambiguous pairs into runtime-validated and provably-safe sets.
///
/// A pair is provably safe when both indices are affine (so its address
/// streams are known exactly) and no collision exists outside same-iteration
/// program order: every time the load and store touch the same cell, the
/// load is earlier in the same iteration's order ROM, which the in-order
/// commit of stores below the completion frontier already serializes. The
/// proof comes from the symbolic tests first (a [`PairClass::Disjoint`]
/// verdict, or [`PairClass::SameIterationOnly`] with the load sequenced
/// before the store — both scale to arbitrarily large spaces), falling back
/// to exact enumeration for spaces up to [`ENUM_LIMIT`]; anything unproved
/// stays conservatively validated. Removing a safe pair from the validated
/// set skips the arbiter's head-to-tail search for its ops without weakening
/// validation of any remaining pair — arriving validated ops are still
/// compared against *all* resident queue records.
pub fn refine_pairs(spec: &KernelSpec, deps: &Dependences) -> Refinement {
    let small = spec.iteration_count() <= ENUM_LIMIT;
    let space = if small {
        spec.iteration_space()
    } else {
        Vec::new()
    };
    let mut pairs = Vec::new();
    let mut bypassed = Vec::new();
    for &pair in &deps.pairs {
        let load = &deps.ops[pair.load];
        let store = &deps.ops[pair.store];
        let affine = !load.index.is_runtime_dependent() && !store.index.is_runtime_dependent();
        let safe = affine
            && match symdep::classify_accesses(spec, &load.index, &store.index, load.array) {
                PairClass::Disjoint => true,
                PairClass::SameIterationOnly => load.seq < store.seq,
                PairClass::Unknown => {
                    small && enumerated_min_distance(spec, load, store, &space).is_none()
                }
            };
        if safe {
            bypassed.push(pair);
        } else {
            pairs.push(pair);
        }
    }
    Refinement { pairs, bypassed }
}

fn eval_affine(e: &Expr, row: &[Value]) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Binary(op, l, r) => op.apply(eval_affine(l, row), eval_affine(r, row)),
        Expr::Load(..) | Expr::Opaque(..) => {
            unreachable!("runtime-dependent indices are filtered before evaluation")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArrayDecl, Stmt};
    use prevv_dataflow::components::LoopLevel;

    #[test]
    fn disjoint_affine_accesses_are_not_ambiguous() {
        // load a[i], store b[i]: different arrays; store a[i+8] in 0..4 with
        // a of length 16: load touches 0..4, store touches 8..12 — disjoint.
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "disjoint",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(
                a,
                Expr::var(0).add(Expr::lit(8)),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        assert_eq!(d.load_count(), 1);
        assert_eq!(d.store_count(), 1);
        assert!(d.pairs.is_empty(), "disjoint ranges need no disambiguation");
        assert!(!d.needs_disambiguation());
    }

    #[test]
    fn overlapping_affine_accesses_are_ambiguous() {
        // Accumulation c[i] += 1 over a 2-level nest: load and store hit the
        // same address in different flattened iterations.
        let c = ArrayId(0);
        let k = KernelSpec::new(
            "accum",
            vec![LoopLevel::upto(2), LoopLevel::upto(3)],
            vec![ArrayDecl::zeroed("c", 4)],
            vec![Stmt::store(
                c,
                Expr::var(0),
                Expr::load(c, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        assert_eq!(d.pairs.len(), 1);
        let p = d.pairs[0];
        assert_eq!(d.ops[p.load].kind, MemOpKind::Load);
        assert_eq!(d.ops[p.store].kind, MemOpKind::Store);
        assert_eq!(d.ambiguous_ops().len(), 2);
    }

    #[test]
    fn runtime_indices_are_always_ambiguous() {
        use crate::expr::OpaqueFn;
        // Paper Fig. 2(b): a[b[i] + f(x)] += A; b[i + g(x)] += B.
        let a = ArrayId(0);
        let b = ArrayId(1);
        let f = OpaqueFn::new(1, 4);
        let g = OpaqueFn::new(2, 4);
        let a_idx = Expr::load(b, Expr::var(0)).add(Expr::var(0).opaque(f));
        let b_idx = Expr::var(0).add(Expr::var(0).opaque(g));
        let k = KernelSpec::new(
            "fig2b",
            vec![LoopLevel::upto(8)],
            vec![ArrayDecl::zeroed("a", 16), ArrayDecl::zeroed("b", 16)],
            vec![
                Stmt::store(a, a_idx.clone(), Expr::load(a, a_idx).add(Expr::lit(5))),
                Stmt::store(b, b_idx.clone(), Expr::load(b, b_idx).add(Expr::lit(3))),
            ],
        )
        .expect("valid");
        let d = analyze(&k);
        // Loads of `b` inside statement 0's index expressions conflict with
        // statement 1's store to `b`; loads of `a` conflict with the store
        // to `a`.
        assert!(d.needs_disambiguation());
        assert!(
            d.pairs.len() >= 3,
            "expected several ambiguous pairs, got {:?}",
            d.pairs
        );
    }

    #[test]
    fn pair_distances_identify_reuse() {
        // Accumulation over a 2-level nest: the inner loop has 3 iterations,
        // so the same cell is rewritten at distance 1 (adjacent k).
        let c = ArrayId(0);
        let k = KernelSpec::new(
            "accum",
            vec![LoopLevel::upto(2), LoopLevel::upto(3)],
            vec![ArrayDecl::zeroed("c", 4)],
            vec![Stmt::store(
                c,
                Expr::var(0),
                Expr::load(c, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        let dist = pair_distances(&k, &d);
        assert_eq!(dist.len(), 1);
        assert_eq!(dist[0].min_distance, Some(1), "adjacent-iteration reuse");
    }

    #[test]
    fn pair_distances_respect_program_order_within_iteration() {
        // Load strictly before the store of the same address in one
        // iteration, no cross-iteration reuse (address = i over one level):
        // the only collisions are same-iteration load-before-store, which
        // program order protects, but the load also collides with the
        // PREVIOUS iteration's store? No: address differs per iteration.
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "pure",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        // Conservative pair detection flags it (addresses intersect)...
        assert_eq!(d.pairs.len(), 1);
        // ...but the distance analysis proves no protected-order violation
        // can occur.
        let dist = pair_distances(&k, &d);
        assert_eq!(dist[0].min_distance, None);
    }

    #[test]
    fn refinement_bypasses_program_order_protected_pairs() {
        // Same shape as `pair_distances_respect_program_order_within_iteration`:
        // the only collisions are same-iteration load-before-store.
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "pure",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        let r = refine_pairs(&k, &d);
        assert!(r.pairs.is_empty());
        assert_eq!(r.bypassed.len(), 1);
    }

    #[test]
    fn refinement_keeps_cross_iteration_and_runtime_pairs() {
        use crate::expr::OpaqueFn;
        // Cross-iteration reuse (accumulation over a nest) stays validated.
        let c = ArrayId(0);
        let k = KernelSpec::new(
            "accum",
            vec![LoopLevel::upto(2), LoopLevel::upto(3)],
            vec![ArrayDecl::zeroed("c", 4)],
            vec![Stmt::store(
                c,
                Expr::var(0),
                Expr::load(c, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        let r = refine_pairs(&k, &d);
        assert_eq!(r.pairs.len(), 1);
        assert!(r.bypassed.is_empty());

        // Runtime-dependent indices always stay validated, even though their
        // distance is unknowable.
        let a = ArrayId(0);
        let idx = Expr::var(0).opaque(OpaqueFn::new(3, 4));
        let k = KernelSpec::new(
            "rt",
            vec![LoopLevel::upto(8)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                idx.clone(),
                Expr::load(a, idx).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        let r = refine_pairs(&k, &d);
        assert_eq!(r.pairs.len(), d.pairs.len());
        assert!(r.bypassed.is_empty());
    }

    #[test]
    fn runtime_pairs_have_unknown_distance() {
        use crate::expr::OpaqueFn;
        let a = ArrayId(0);
        let idx = Expr::var(0).opaque(OpaqueFn::new(3, 4));
        let k = KernelSpec::new(
            "rt",
            vec![LoopLevel::upto(8)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                idx.clone(),
                Expr::load(a, idx).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        let dist = pair_distances(&k, &d);
        assert!(dist.iter().all(|p| p.min_distance.is_none()));
    }

    #[test]
    fn huge_space_pairs_resolve_symbolically() {
        // 1000 x 1000 = 10^6 iterations — far past ENUM_LIMIT, so only the
        // symbolic engine can decide anything here.
        let a = ArrayId(0);
        let cell = Expr::var(0).mul(Expr::lit(1000)).add(Expr::var(1));
        let k = KernelSpec::new(
            "huge",
            vec![LoopLevel::upto(1000), LoopLevel::upto(1000)],
            vec![ArrayDecl::zeroed("a", 1_000_000)],
            vec![Stmt::store(
                a,
                cell.clone(),
                Expr::load(a, cell).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        assert!(k.iteration_count() > ENUM_LIMIT);
        let d = analyze(&k);
        // Same-cell load/store: conservatively an ambiguous pair...
        assert_eq!(d.pairs.len(), 1);
        // ...whose every collision is same-iteration load-before-store, so
        // the symbolic refinement bypasses it.
        let r = refine_pairs(&k, &d);
        assert!(r.pairs.is_empty());
        assert_eq!(r.bypassed.len(), 1);
        let dist = pair_distances(&k, &d);
        assert_eq!(dist[0].min_distance, None);
    }

    #[test]
    fn huge_space_disjoint_accesses_drop_out_entirely() {
        // Load the lower half, store the upper half of a 2·10^6 array:
        // symbolically disjoint, so not even an ambiguous pair.
        let a = ArrayId(0);
        let cell = Expr::var(0).mul(Expr::lit(1000)).add(Expr::var(1));
        let k = KernelSpec::new(
            "huge_disjoint",
            vec![LoopLevel::upto(1000), LoopLevel::upto(1000)],
            vec![ArrayDecl::zeroed("a", 2_000_000)],
            vec![Stmt::store(
                a,
                cell.clone().add(Expr::lit(1_000_000)),
                Expr::load(a, cell).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        assert!(d.pairs.is_empty());
        assert!(!d.needs_disambiguation());
    }

    #[test]
    fn huge_space_unproved_pairs_stay_validated() {
        // A loop-carried shift (store a[i+1], load a[i]) on a big space: the
        // symbolic engine cannot prove safety and enumeration is off the
        // table, so the pair must stay in the validated set.
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "huge_carried",
            vec![LoopLevel::upto(1_000_000)],
            vec![ArrayDecl::zeroed("a", 1_000_001)],
            vec![Stmt::store(
                a,
                Expr::var(0).add(Expr::lit(1)),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let d = analyze(&k);
        assert_eq!(d.pairs.len(), 1);
        let r = refine_pairs(&k, &d);
        assert_eq!(r.pairs.len(), 1);
        assert!(r.bypassed.is_empty());
    }

    #[test]
    fn op_enumeration_matches_golden_sequence_numbers() {
        use crate::golden;
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "seqcheck",
            vec![LoopLevel::upto(2)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let ops = enumerate_ops(&k);
        let g = golden::execute(&k);
        // Every traced event's (seq, kind) must match the static table.
        for ev in &g.trace {
            let op = ops
                .iter()
                .find(|o| o.seq == ev.seq)
                .expect("static op exists");
            assert_eq!(op.kind, ev.kind);
            assert_eq!(op.array, ev.array);
        }
    }
}
