//! Symbolic dependence tests over affine index expressions.
//!
//! The exact analysis in [`crate::depend`] enumerates address sets over the
//! whole iteration space, which stops scaling around a few thousand
//! iterations. This module implements the two classical symbolic tests —
//! the **GCD test** and the **Banerjee bounds test** (per direction vector,
//! evaluated exactly at the lattice vertices of each triangular region) —
//! over the affine subset of [`Expr`], so pair-bypass proofs work on
//! iteration spaces of 10^6 and beyond.
//!
//! The engine is deliberately three-valued: it answers [`PairClass::Disjoint`]
//! or [`PairClass::SameIterationOnly`] only when the claim is *proved*, and
//! [`PairClass::Unknown`] otherwise. Callers fall back to enumeration (when
//! the space is small enough) or to the conservative answer. The property
//! tests in `tests/analyzer_properties.rs` check the one-sided contract
//! against the brute-force oracle: a proof may be missed, never wrong.
//!
//! ## Wrap-around soundness
//!
//! Kernel indices are reduced with [`KernelSpec::resolve_index`]
//! (`rem_euclid(len)`), so two syntactically different addresses can alias
//! after wrapping. The symbolic tests reason about the *raw* affine values
//! and are therefore only applied when both access ranges provably fit in
//! `[0, len)` — checked by [`classify_accesses`]; anything else degrades to
//! [`PairClass::Unknown`].

use prevv_dataflow::components::{Bound, LoopLevel};
use prevv_dataflow::Value;

use crate::expr::{BinOp, Expr};
use crate::kernel::KernelSpec;

/// Direction-vector fan-out is 3^levels; beyond this nest depth the Banerjee
/// sweep is skipped (the GCD test still runs).
const MAX_BANERJEE_LEVELS: usize = 8;

/// An affine function of the induction variables:
/// `constant + Σ coeffs[l] · ind_var(l)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineForm {
    /// One coefficient per loop level (outermost first).
    pub coeffs: Vec<i64>,
    /// The constant term.
    pub constant: i64,
}

impl AffineForm {
    /// A constant form.
    fn konst(levels: usize, c: i64) -> Self {
        AffineForm {
            coeffs: vec![0; levels],
            constant: c,
        }
    }

    /// True when every coefficient is zero.
    fn is_const(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Extracts the affine form of `e` over a nest of `levels` loops.
    ///
    /// Returns `None` for anything outside the linear-affine subset: memory
    /// reads, opaque functions, division/remainder/bitwise operators, and
    /// products of two non-constant subexpressions.
    pub fn from_expr(e: &Expr, levels: usize) -> Option<AffineForm> {
        match e {
            Expr::Const(v) => Some(AffineForm::konst(levels, *v)),
            Expr::IndVar(l) => {
                if *l >= levels {
                    return None;
                }
                let mut f = AffineForm::konst(levels, 0);
                f.coeffs[*l] = 1;
                Some(f)
            }
            Expr::Binary(op, l, r) => {
                let a = AffineForm::from_expr(l, levels)?;
                let b = AffineForm::from_expr(r, levels)?;
                match op {
                    BinOp::Add => Some(a.combine(&b, 1)),
                    BinOp::Sub => Some(a.combine(&b, -1)),
                    BinOp::Mul => {
                        if b.is_const() {
                            Some(a.scale(b.constant))
                        } else if a.is_const() {
                            Some(b.scale(a.constant))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            Expr::Load(..) | Expr::Opaque(..) => None,
        }
    }

    fn combine(&self, other: &AffineForm, sign: i64) -> AffineForm {
        AffineForm {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| a + sign * b)
                .collect(),
            constant: self.constant + sign * other.constant,
        }
    }

    fn scale(&self, k: i64) -> AffineForm {
        AffineForm {
            coeffs: self.coeffs.iter().map(|&c| c * k).collect(),
            constant: self.constant * k,
        }
    }

    /// The exact `[min, max]` of this form over the given inclusive
    /// per-level ranges (a box), attained at a corner.
    pub fn range(&self, bounds: &[(i64, i64)]) -> (i64, i64) {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (&c, &(l, u)) in self.coeffs.iter().zip(bounds) {
            if c >= 0 {
                lo += c * l;
                hi += c * u;
            } else {
                lo += c * u;
                hi += c * l;
            }
        }
        (lo, hi)
    }

    /// Evaluates the form at one point.
    pub fn eval(&self, row: &[Value]) -> i64 {
        self.constant
            + self
                .coeffs
                .iter()
                .zip(row)
                .map(|(&c, &v)| c * v)
                .sum::<i64>()
    }
}

/// The verdict of the symbolic tests for one load/store access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairClass {
    /// Proved: the two accesses never touch the same address, in any pair
    /// of iterations.
    Disjoint,
    /// Proved: every address collision happens with both accesses in the
    /// *same* iteration — cross-iteration collisions are impossible. Whether
    /// program order then protects the pair depends on the ops' sequence
    /// numbers (the caller's job).
    SameIterationOnly,
    /// No proof either way; fall back to enumeration or stay conservative.
    Unknown,
}

/// Inclusive per-level iteration ranges of a *rectangular* nest.
///
/// Returns `None` when any bound references an outer variable
/// ([`Bound::OuterPlus`], triangular nests) — the box model the symbolic
/// tests rely on does not apply there. An empty level yields an empty range
/// (`hi < lo`), which callers treat as a trivially empty space.
pub fn rect_bounds(levels: &[LoopLevel]) -> Option<Vec<(i64, i64)>> {
    levels
        .iter()
        .map(|l| match (l.lo, l.hi) {
            (Bound::Const(lo), Bound::Const(hi)) => Some((lo, hi - 1)),
            _ => None,
        })
        .collect()
}

/// Rectangular *hull* of a possibly-triangular nest: inclusive per-level
/// ranges that contain every reachable induction value. For a
/// [`Bound::OuterPlus`] bound the outer variable is replaced by its own hull
/// extreme, so the result is an over-approximation — a superset of the true
/// iteration space. That direction is exactly what the one-sided dependence
/// proofs need: "no collision anywhere in the hull" implies "no collision in
/// the nest", and a raw index range that fits `[0, len)` over the hull fits
/// over the nest. Exact range queries (PV001 bounds checking) must keep
/// using [`rect_bounds`], which refuses triangular nests instead of
/// widening them.
///
/// Returns `None` only for malformed nests whose outer reference points at
/// a not-yet-defined level.
pub fn hull_bounds(levels: &[LoopLevel]) -> Option<Vec<(i64, i64)>> {
    let mut hull: Vec<(i64, i64)> = Vec::with_capacity(levels.len());
    for (li, l) in levels.iter().enumerate() {
        let lo = match l.lo {
            Bound::Const(c) => c,
            Bound::OuterPlus(outer, off) => {
                if outer >= li {
                    return None;
                }
                hull[outer].0 + off
            }
        };
        let hi = match l.hi {
            Bound::Const(c) => c - 1,
            Bound::OuterPlus(outer, off) => {
                if outer >= li {
                    return None;
                }
                hull[outer].1 + off - 1
            }
        };
        hull.push((lo, hi));
    }
    Some(hull)
}

/// Greatest common divisor (non-negative; `gcd(0, 0) == 0`).
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The GCD test: the collision equation `Σ aᵢxᵢ − Σ bᵢyᵢ = Δc` has integer
/// solutions only when `gcd(a₀..aₗ, b₀..bₗ)` divides `Δc`.
fn gcd_excludes(a: &AffineForm, b: &AffineForm) -> bool {
    let g = a
        .coeffs
        .iter()
        .chain(&b.coeffs)
        .fold(0i64, |acc, &c| gcd(acc, c));
    let delta = b.constant - a.constant;
    if g == 0 {
        // Both forms constant: collision iff the constants are equal.
        delta != 0
    } else {
        delta % g != 0
    }
}

/// Per-level contribution bounds of `a·x − b·y` with `x, y ∈ [l, u]` under
/// one direction relation. Returns `None` when the relation is infeasible
/// within the range (which excludes the whole direction vector).
///
/// `dir`: -1 ⇒ `x < y`, 0 ⇒ `x = y`, 1 ⇒ `x > y`.
///
/// Each region is a lattice polytope with integer vertices (a segment for
/// `=`, a triangle for `<`/`>`), and a linear function attains its extremes
/// at vertices — so evaluating the corners gives *exact* integer bounds, not
/// the looser textbook closed forms.
fn level_bounds(a: i64, b: i64, l: i64, u: i64, dir: i8) -> Option<(i64, i64)> {
    if u < l {
        return None;
    }
    let t = |x: i64, y: i64| a * x - b * y;
    let vertices: &[(i64, i64)] = match dir {
        0 => &[(l, l), (u, u)],
        -1 => {
            if u <= l {
                return None;
            }
            &[(l, l + 1), (l, u), (u - 1, u)]
        }
        _ => {
            if u <= l {
                return None;
            }
            &[(l + 1, l), (u, l), (u, u - 1)]
        }
    };
    let vals = vertices.iter().map(|&(x, y)| t(x, y));
    let lo = vals.clone().min().expect("non-empty vertex set");
    let hi = vals.max().expect("non-empty vertex set");
    Some((lo, hi))
}

/// Banerjee bounds per direction vector: can `a(x) = b(y)` hold for any
/// `x, y` in the box whose per-level relation is not all-equal?
///
/// Returns `(same_iter_possible, cross_iter_possible)`.
fn banerjee_directions(a: &AffineForm, b: &AffineForm, bounds: &[(i64, i64)]) -> (bool, bool) {
    let levels = bounds.len();
    let mut same_possible = false;
    let mut cross_possible = false;
    // Enumerate direction vectors as base-3 digits: 0 ⇒ '=', 1 ⇒ '<', 2 ⇒ '>'.
    let total = 3usize.pow(levels as u32);
    'dirs: for code in 0..total {
        let mut lo = a.constant - b.constant;
        let mut hi = lo;
        let mut all_equal = true;
        let mut c = code;
        for (lvl, &(l, u)) in bounds.iter().enumerate() {
            let digit = (c % 3) as i8;
            c /= 3;
            let dir = match digit {
                0 => 0i8,
                1 => -1,
                _ => 1,
            };
            all_equal &= dir == 0;
            match level_bounds(a.coeffs[lvl], b.coeffs[lvl], l, u, dir) {
                Some((tl, th)) => {
                    lo += tl;
                    hi += th;
                }
                None => continue 'dirs, // infeasible direction: excluded
            }
        }
        if lo <= 0 && 0 <= hi {
            if all_equal {
                same_possible = true;
            } else {
                cross_possible = true;
            }
            if same_possible && cross_possible {
                break;
            }
        }
    }
    (same_possible, cross_possible)
}

/// Classifies a load/store pair of affine forms over a rectangular box.
///
/// Sound one-sided contract: `Disjoint` and `SameIterationOnly` are proofs;
/// `Unknown` carries no information. Callers are responsible for the
/// wrap-around precondition (see the module docs) — use
/// [`classify_accesses`] for the checked entry point.
pub fn classify_pair(a: &AffineForm, b: &AffineForm, bounds: &[(i64, i64)]) -> PairClass {
    if bounds.iter().any(|&(l, u)| u < l) {
        return PairClass::Disjoint; // empty iteration space
    }
    if gcd_excludes(a, b) {
        return PairClass::Disjoint;
    }
    if bounds.len() > MAX_BANERJEE_LEVELS {
        return PairClass::Unknown;
    }
    let (same, cross) = banerjee_directions(a, b, bounds);
    match (same, cross) {
        (false, false) => PairClass::Disjoint,
        (true, false) => PairClass::SameIterationOnly,
        _ => PairClass::Unknown,
    }
}

/// Checked entry point: classifies the (load index, store index) pair of a
/// kernel access pair on `array`, or [`PairClass::Unknown`] when the
/// symbolic model does not apply (non-affine index, or a raw index range
/// that can wrap around the array length). Triangular nests are widened to
/// their rectangular hull ([`hull_bounds`]) — sound for the one-sided
/// proofs, at the price of possibly missing proofs near the cut corner.
pub fn classify_accesses(
    spec: &KernelSpec,
    load_index: &Expr,
    store_index: &Expr,
    array: crate::expr::ArrayId,
) -> PairClass {
    let levels = spec.levels.len();
    let (Some(a), Some(b)) = (
        AffineForm::from_expr(load_index, levels),
        AffineForm::from_expr(store_index, levels),
    ) else {
        return PairClass::Unknown;
    };
    // The rectangular hull over-approximates triangular nests, which is
    // sound for every one-sided proof below (disjointness, same-iteration
    // confinement, and the wrap guard).
    let Some(bounds) = hull_bounds(&spec.levels) else {
        return PairClass::Unknown;
    };
    if bounds.iter().any(|&(l, u)| u < l) {
        return PairClass::Disjoint; // empty space: no iterations, no collisions
    }
    let len = spec.arrays[array.0].len as i64;
    for form in [&a, &b] {
        let (lo, hi) = form.range(&bounds);
        if lo < 0 || hi >= len {
            // `resolve_index` would wrap; raw-value reasoning is unsound.
            return PairClass::Unknown;
        }
    }
    classify_pair(&a, &b, &bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArrayId;
    use crate::kernel::{ArrayDecl, Stmt};

    fn bounds1(n: i64) -> Vec<(i64, i64)> {
        vec![(0, n - 1)]
    }

    fn form(coeffs: Vec<i64>, constant: i64) -> AffineForm {
        AffineForm { coeffs, constant }
    }

    #[test]
    fn from_expr_extracts_affine_combinations() {
        // 2*i + 3*j - 5
        let e = Expr::lit(2)
            .mul(Expr::var(0))
            .add(Expr::var(1).mul(Expr::lit(3)))
            .sub(Expr::lit(5));
        let f = AffineForm::from_expr(&e, 2).expect("affine");
        assert_eq!(f, form(vec![2, 3], -5));
        assert_eq!(f.eval(&[1, 2]), 2 + 6 - 5);
    }

    #[test]
    fn from_expr_rejects_nonlinear_and_runtime() {
        let ij = Expr::var(0).mul(Expr::var(1));
        assert_eq!(AffineForm::from_expr(&ij, 2), None);
        let rem = Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(4));
        assert_eq!(AffineForm::from_expr(&rem, 1), None);
        let load = Expr::load(ArrayId(0), Expr::var(0));
        assert_eq!(AffineForm::from_expr(&load, 1), None);
    }

    #[test]
    fn range_is_exact_on_box() {
        let f = form(vec![2, -3], 1);
        // i in [0,4], j in [1,3]: min = 1 + 0 - 9 = -8, max = 1 + 8 - 3 = 6
        assert_eq!(f.range(&[(0, 4), (1, 3)]), (-8, 6));
    }

    #[test]
    fn gcd_test_separates_odd_even() {
        // load 2i, store 2j+1: gcd 2 does not divide 1.
        let a = form(vec![2], 0);
        let b = form(vec![2], 1);
        assert_eq!(classify_pair(&a, &b, &bounds1(100)), PairClass::Disjoint);
    }

    #[test]
    fn banerjee_separates_shifted_ranges() {
        // load i, store i+8 over i in 0..4: ranges [0,3] and [8,11].
        let a = form(vec![1], 0);
        let b = form(vec![1], 8);
        assert_eq!(classify_pair(&a, &b, &bounds1(4)), PairClass::Disjoint);
    }

    #[test]
    fn identical_streams_collide_same_iteration_only() {
        // load i, store i: x = y forces the same iteration.
        let a = form(vec![1], 0);
        let b = form(vec![1], 0);
        assert_eq!(
            classify_pair(&a, &b, &bounds1(1000)),
            PairClass::SameIterationOnly
        );
    }

    #[test]
    fn cross_iteration_reuse_is_unknown() {
        // Outer-var address over a 2-level nest: same cell revisited across
        // inner iterations — the engine must not claim independence.
        let a = form(vec![1, 0], 0);
        let b = form(vec![1, 0], 0);
        assert_eq!(classify_pair(&a, &b, &[(0, 1), (0, 2)]), PairClass::Unknown);
    }

    #[test]
    fn loop_carried_shift_is_unknown() {
        // load i, store i+1: collision at distance 1.
        let a = form(vec![1], 0);
        let b = form(vec![1], 1);
        assert_eq!(classify_pair(&a, &b, &bounds1(64)), PairClass::Unknown);
    }

    #[test]
    fn empty_space_is_disjoint() {
        let a = form(vec![1], 0);
        let b = form(vec![1], 0);
        assert_eq!(classify_pair(&a, &b, &[(0, -1)]), PairClass::Disjoint);
    }

    #[test]
    fn constant_addresses_compare_exactly() {
        assert_eq!(
            classify_pair(&form(vec![0], 3), &form(vec![0], 4), &bounds1(8)),
            PairClass::Disjoint
        );
        // The same constant address collides in *every* pair of iterations,
        // cross-iteration included — must not be claimed same-iteration-only.
        assert_eq!(
            classify_pair(&form(vec![0], 3), &form(vec![0], 3), &bounds1(8)),
            PairClass::Unknown
        );
    }

    #[test]
    fn huge_rectangular_spaces_classify_instantly() {
        // 1000 x 1000 = 10^6 iterations: enumeration is hopeless, the
        // symbolic proof is O(3^levels).
        let bounds = [(0, 999), (0, 999)];
        let a = form(vec![1000, 1], 0); // i*1000 + j (row-major cell)
        let b = form(vec![1000, 1], 0);
        assert_eq!(classify_pair(&a, &b, &bounds), PairClass::SameIterationOnly);
        let shifted = form(vec![1000, 1], 1_000_000); // disjoint upper half
        assert_eq!(classify_pair(&a, &shifted, &bounds), PairClass::Disjoint);
    }

    #[test]
    fn classify_accesses_refuses_wrapping_ranges() {
        // Index i+6 over i in 0..4 on an array of length 8: raw range [6,9]
        // wraps — must degrade to Unknown even though the forms are affine.
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "wrap",
            vec![prevv_dataflow::components::LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0).add(Expr::lit(6)),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        assert_eq!(
            classify_accesses(&spec, &Expr::var(0), &Expr::var(0).add(Expr::lit(6)), a),
            PairClass::Unknown
        );
        // In-range shifted store is provably disjoint.
        assert_eq!(
            classify_accesses(&spec, &Expr::var(0), &Expr::var(0).add(Expr::lit(4)), a),
            PairClass::Disjoint
        );
    }

    #[test]
    fn classify_accesses_refuses_triangular_nests() {
        use prevv_dataflow::components::Bound;
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "tri",
            vec![
                prevv_dataflow::components::LoopLevel::upto(4),
                prevv_dataflow::components::LoopLevel::new(Bound::OuterPlus(0, 0), Bound::Const(4)),
            ],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(a, Expr::var(1), Expr::lit(1))],
        )
        .expect("valid");
        assert_eq!(
            classify_accesses(&spec, &Expr::var(1), &Expr::var(1), a),
            PairClass::Unknown
        );
    }

    #[test]
    fn hull_widens_triangular_nests_soundly() {
        use prevv_dataflow::components::Bound;
        // i in 0..4, j in i..4: hull is the box [0,3] x [0,3].
        let levels = vec![
            prevv_dataflow::components::LoopLevel::upto(4),
            prevv_dataflow::components::LoopLevel::new(Bound::OuterPlus(0, 0), Bound::Const(4)),
        ];
        assert_eq!(hull_bounds(&levels), Some(vec![(0, 3), (0, 3)]));
        // The hull agrees with rect_bounds on rectangular nests.
        let rect = vec![
            prevv_dataflow::components::LoopLevel::upto(4),
            prevv_dataflow::components::LoopLevel::upto(7),
        ];
        assert_eq!(hull_bounds(&rect), rect_bounds(&rect));
    }

    #[test]
    fn hull_proves_disjointness_on_triangular_nests() {
        use prevv_dataflow::components::Bound;
        // The same triangular nest the previous test refuses for the
        // reused-cell pair now *proves* a shifted pair disjoint: load a[j],
        // store a[j + 4] with j in [0, 3] — ranges [0,3] vs [4,7].
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "tri",
            vec![
                prevv_dataflow::components::LoopLevel::upto(4),
                prevv_dataflow::components::LoopLevel::new(Bound::OuterPlus(0, 0), Bound::Const(4)),
            ],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(1).add(Expr::lit(4)),
                Expr::load(a, Expr::var(1)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        assert_eq!(
            classify_accesses(&spec, &Expr::var(1), &Expr::var(1).add(Expr::lit(4)), a),
            PairClass::Disjoint
        );
    }
}
