//! Source spans and rustc-style snippet rendering.
//!
//! The parser records byte spans for statements and memory operations so
//! downstream tooling (the [`parse`](crate::parse) error printer and the
//! `prevv-analyze` lints) can point at the offending source text instead of
//! statement indices.

/// A half-open byte range `[start, end)` into kernel source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span; `end` is clamped to be at least `start`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at one offset.
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// 1-based line and column of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        line_col(source, self.start)
    }
}

/// 1-based line and column of byte `offset` within `source` (columns count
/// characters, not bytes; offsets past the end point one past the last line).
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = clamp_to_char_boundary(source, offset);
    let before = &source[..offset];
    let line = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let col = before[line_start..].chars().count() + 1;
    (line, col)
}

fn clamp_to_char_boundary(source: &str, mut offset: usize) -> usize {
    offset = offset.min(source.len());
    while offset > 0 && !source.is_char_boundary(offset) {
        offset -= 1;
    }
    offset
}

/// Renders a rustc-style source snippet with a caret line:
///
/// ```text
///  --> fig2a.pvk:4:5
///   |
/// 4 |   a[b[i]] += 5;
///   |   ^^^^^^^
/// ```
///
/// The carets underline the span's characters on its starting line (always at
/// least one caret, even for zero-width spans).
pub fn render_snippet(source: &str, origin: &str, span: Span) -> String {
    let start = clamp_to_char_boundary(source, span.start);
    let end = clamp_to_char_boundary(source, span.end.max(span.start));
    let (line, col) = line_col(source, start);

    let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[start..]
        .find('\n')
        .map_or(source.len(), |i| start + i);
    let text = &source[line_start..line_end];

    // Carets cover the span's characters, but never run past the line end.
    let underline_end = end.min(line_end).max(start);
    let n_carets = source[start..underline_end].chars().count().max(1);

    let num = line.to_string();
    let gutter = " ".repeat(num.len());
    let mut out = String::new();
    out.push_str(&format!("{gutter}--> {origin}:{line}:{col}\n"));
    out.push_str(&format!("{gutter} |\n"));
    out.push_str(&format!("{num} | {text}\n"));
    out.push_str(&format!(
        "{gutter} | {}{}",
        " ".repeat(col - 1),
        "^".repeat(n_carets)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 2), (1, 3));
        assert_eq!(line_col(src, 4), (2, 1));
        assert_eq!(line_col(src, 10), (3, 3));
    }

    #[test]
    fn offsets_past_the_end_are_clamped() {
        let src = "ab\ncd";
        assert_eq!(line_col(src, 99), (2, 3));
    }

    #[test]
    fn snippet_underlines_the_span() {
        let src = "int a[4];\nfor (int i = 0; i < 4; ++i) {\n  a[i + 9] = 1;\n}";
        let at = src.find("i + 9").unwrap();
        let s = render_snippet(src, "k.pvk", Span::new(at, at + 5));
        assert!(s.contains("--> k.pvk:3:5"), "{s}");
        assert!(s.contains("3 |   a[i + 9] = 1;"), "{s}");
        assert!(s.lines().last().unwrap().contains("^^^^^"), "{s}");
    }

    #[test]
    fn zero_width_spans_get_one_caret() {
        let s = render_snippet("xy", "k.pvk", Span::point(1));
        assert!(s.lines().last().unwrap().trim_end().ends_with('^'));
        assert_eq!(s.lines().last().unwrap().matches('^').count(), 1);
    }

    #[test]
    fn multibyte_offsets_do_not_panic() {
        let src = "héllo\nwörld";
        for at in 0..=src.len() + 2 {
            let _ = render_snippet(src, "k", Span::point(at));
        }
    }
}
