//! Expression IR for kernel bodies.
//!
//! Index and value expressions are trees over loop induction variables,
//! constants, arithmetic, **array reads** (which lower to load ports), and
//! **opaque runtime functions** — the `f(x)` / `g(x)` of the paper's
//! Fig. 2(b) whose results are unknowable at compile time and therefore
//! defeat static dependence analysis.

use std::fmt;

pub use prevv_dataflow::components::BinOp;
use prevv_dataflow::Value;

/// Identifies an array declared by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}", self.0)
    }
}

/// A deterministic, compile-time-opaque unary function.
///
/// Modeled as a strong integer mix (splitmix64 finalizer) reduced modulo a
/// configurable range. Workload generators use the modulus to control how
/// often runtime indices collide — i.e. how frequent genuine RAW hazards are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpaqueFn {
    /// Seed mixed into the hash; different seeds give independent functions.
    pub seed: u64,
    /// The result is reduced into `0..modulus`.
    pub modulus: Value,
}

impl OpaqueFn {
    /// Creates an opaque function with the given seed and range.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not positive.
    pub fn new(seed: u64, modulus: Value) -> Self {
        assert!(modulus > 0, "opaque function modulus must be positive");
        OpaqueFn { seed, modulus }
    }

    /// Evaluates the function.
    pub fn apply(&self, x: Value) -> Value {
        let mut z = (x as u64)
            .wrapping_add(self.seed)
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z % self.modulus as u64) as Value
    }
}

/// An expression over induction variables, constants, memory, and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal.
    Const(Value),
    /// The induction variable of loop level `n` (0 = outermost).
    IndVar(usize),
    /// A memory read `array[index]`. Lowers to a load port; participates in
    /// dependence analysis.
    Load(ArrayId, Box<Expr>),
    /// A two-operand arithmetic/logic operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// An opaque runtime function applied to a subexpression.
    Opaque(OpaqueFn, Box<Expr>),
}

impl Expr {
    /// Shorthand for a constant.
    pub fn lit(v: Value) -> Self {
        Expr::Const(v)
    }

    /// Shorthand for an induction variable.
    pub fn var(level: usize) -> Self {
        Expr::IndVar(level)
    }

    /// Shorthand for an array read.
    pub fn load(array: ArrayId, index: Expr) -> Self {
        Expr::Load(array, Box::new(index))
    }

    /// Shorthand for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Self {
        Expr::bin(BinOp::Add, self, rhs)
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Self {
        Expr::bin(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Self {
        Expr::bin(BinOp::Mul, self, rhs)
    }

    /// Applies an opaque function to `self`.
    pub fn opaque(self, f: OpaqueFn) -> Self {
        Expr::Opaque(f, Box::new(self))
    }

    /// Collects the array loads in this expression in canonical
    /// (depth-first, left-to-right) order — the order in which they receive
    /// program-order sequence numbers.
    pub fn loads(&self) -> Vec<(ArrayId, &Expr)> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<(ArrayId, &'a Expr)>) {
        match self {
            Expr::Const(_) | Expr::IndVar(_) => {}
            Expr::Load(a, idx) => {
                idx.collect_loads(out);
                out.push((*a, idx));
            }
            Expr::Binary(_, l, r) => {
                l.collect_loads(out);
                r.collect_loads(out);
            }
            Expr::Opaque(_, e) => e.collect_loads(out),
        }
    }

    /// True if the expression depends on memory or opaque functions, i.e.
    /// its value is not a static affine function of the induction variables.
    pub fn is_runtime_dependent(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::IndVar(_) => false,
            Expr::Load(..) | Expr::Opaque(..) => true,
            Expr::Binary(_, l, r) => l.is_runtime_dependent() || r.is_runtime_dependent(),
        }
    }

    /// Number of arithmetic operators (for datapath area estimation).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::IndVar(_) => 0,
            Expr::Load(_, idx) => idx.op_count(),
            Expr::Binary(_, l, r) => 1 + l.op_count() + r.op_count(),
            Expr::Opaque(_, e) => 1 + e.op_count(),
        }
    }

    /// Number of multiplier-class operators (mul/div/rem), which dominate
    /// datapath area and latency.
    pub fn mul_count(&self) -> usize {
        let own = match self {
            Expr::Binary(BinOp::Mul | BinOp::Div | BinOp::Rem, ..) => 1,
            _ => 0,
        };
        own + match self {
            Expr::Const(_) | Expr::IndVar(_) => 0,
            Expr::Load(_, idx) => idx.mul_count(),
            Expr::Binary(_, l, r) => l.mul_count() + r.mul_count(),
            Expr::Opaque(_, e) => e.mul_count(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::IndVar(l) => write!(f, "{}", ["i", "j", "k", "l"].get(*l).unwrap_or(&"v")),
            Expr::Load(a, idx) => write!(f, "{a}[{idx}]"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Opaque(fun, e) => write!(f, "f{}({e})%{}", fun.seed, fun.modulus),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opaque_fn_is_deterministic_and_in_range() {
        let f = OpaqueFn::new(7, 16);
        for x in -100..100 {
            let v = f.apply(x);
            assert!((0..16).contains(&v));
            assert_eq!(v, f.apply(x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let f = OpaqueFn::new(1, 1 << 30);
        let g = OpaqueFn::new(2, 1 << 30);
        let same = (0..64).filter(|&x| f.apply(x) == g.apply(x)).count();
        assert!(same < 4, "independent functions should rarely collide");
    }

    #[test]
    fn loads_are_collected_in_canonical_order() {
        // a[b[i]] + b[i+1]
        let a = ArrayId(0);
        let b = ArrayId(1);
        let e = Expr::load(a, Expr::load(b, Expr::var(0)))
            .add(Expr::load(b, Expr::var(0).add(Expr::lit(1))));
        let loads = e.loads();
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[0].0, b, "inner index load first (depth-first)");
        assert_eq!(loads[1].0, a);
        assert_eq!(loads[2].0, b);
    }

    #[test]
    fn runtime_dependence_classification() {
        assert!(!Expr::var(0).add(Expr::lit(3)).is_runtime_dependent());
        assert!(Expr::load(ArrayId(0), Expr::var(0)).is_runtime_dependent());
        assert!(Expr::var(0)
            .opaque(OpaqueFn::new(0, 8))
            .is_runtime_dependent());
    }

    #[test]
    fn op_counts() {
        let e = Expr::var(0).mul(Expr::var(1)).add(Expr::lit(2));
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.mul_count(), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::load(ArrayId(1), Expr::var(0)).add(Expr::lit(1));
        assert_eq!(e.to_string(), "(arr1[i] add 1)");
    }
}
