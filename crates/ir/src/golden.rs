//! Golden (reference) execution of kernels.
//!
//! Executes a [`KernelSpec`] with strict sequential semantics — the meaning
//! of the original C program — producing the final memory image and a trace
//! of memory events in program order. Circuit simulations are checked
//! against the memory image (the paper's ModelSim-vs-C++ methodology), and
//! the trace doubles as an input for algorithm-level tests of the
//! disambiguation controllers.

use prevv_dataflow::Value;

use crate::expr::{ArrayId, Expr};
use crate::kernel::{KernelSpec, Stmt};

/// Whether a memory event reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

impl std::fmt::Display for MemOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemOpKind::Load => "load",
            MemOpKind::Store => "store",
        })
    }
}

/// One memory access performed by the golden execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Flattened iteration number.
    pub iter: u64,
    /// Program-order sequence number within the iteration.
    pub seq: u32,
    /// Read or write.
    pub kind: MemOpKind,
    /// Accessed array.
    pub array: ArrayId,
    /// Resolved in-array index.
    pub index: usize,
    /// Value read or written.
    pub value: Value,
}

/// Result of a golden execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenResult {
    /// Final contents of each array.
    pub arrays: Vec<Vec<Value>>,
    /// Every memory access in strict program order.
    pub trace: Vec<MemEvent>,
    /// Number of iterations whose guard suppressed the statement (summed
    /// over guarded statements).
    pub guards_skipped: u64,
}

impl GoldenResult {
    /// Final contents of one array.
    pub fn array(&self, id: ArrayId) -> &[Value] {
        &self.arrays[id.0]
    }
}

/// Executes the kernel sequentially.
///
/// The canonical intra-iteration order of memory operations is: for each
/// statement in body order — index-expression loads (depth-first,
/// left-to-right), value-expression loads, then the store. Guarded
/// statements that are skipped contribute no events (their sequence numbers
/// are still reserved, so `seq` values match the synthesized circuit's port
/// numbering exactly).
pub fn execute(spec: &KernelSpec) -> GoldenResult {
    let mut arrays: Vec<Vec<Value>> = spec.arrays.iter().map(|a| a.initial()).collect();
    let mut trace = Vec::new();
    let mut guards_skipped = 0;

    for (iter, row) in spec.iteration_space().into_iter().enumerate() {
        let iter = iter as u64;
        let mut seq: u32 = 0;
        for stmt in &spec.body {
            let taken = match &stmt.guard {
                None => true,
                Some(g) => eval_pure(g, &row) != 0,
            };
            if !taken {
                guards_skipped += 1;
                seq += stmt.mem_op_count() as u32;
                continue;
            }
            exec_stmt(spec, stmt, &row, iter, &mut seq, &mut arrays, &mut trace);
        }
    }

    GoldenResult {
        arrays,
        trace,
        guards_skipped,
    }
}

fn exec_stmt(
    spec: &KernelSpec,
    stmt: &Stmt,
    row: &[Value],
    iter: u64,
    seq: &mut u32,
    arrays: &mut [Vec<Value>],
    trace: &mut Vec<MemEvent>,
) {
    let idx_raw = eval(spec, &stmt.index, row, iter, seq, arrays, trace);
    let value = eval(spec, &stmt.value, row, iter, seq, arrays, trace);
    let index = spec.resolve_index(stmt.array, idx_raw);
    arrays[stmt.array.0][index] = value;
    trace.push(MemEvent {
        iter,
        seq: *seq,
        kind: MemOpKind::Store,
        array: stmt.array,
        index,
        value,
    });
    *seq += 1;
}

/// Evaluates an expression, recording loads in the trace.
fn eval(
    spec: &KernelSpec,
    e: &Expr,
    row: &[Value],
    iter: u64,
    seq: &mut u32,
    arrays: &mut [Vec<Value>],
    trace: &mut Vec<MemEvent>,
) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Load(a, idx) => {
            let raw = eval(spec, idx, row, iter, seq, arrays, trace);
            let index = spec.resolve_index(*a, raw);
            let value = arrays[a.0][index];
            trace.push(MemEvent {
                iter,
                seq: *seq,
                kind: MemOpKind::Load,
                array: *a,
                index,
                value,
            });
            *seq += 1;
            value
        }
        Expr::Binary(op, l, r) => {
            let lv = eval(spec, l, row, iter, seq, arrays, trace);
            let rv = eval(spec, r, row, iter, seq, arrays, trace);
            op.apply(lv, rv)
        }
        Expr::Opaque(f, x) => f.apply(eval(spec, x, row, iter, seq, arrays, trace)),
    }
}

/// Evaluates a memory-free expression (guards).
///
/// # Panics
///
/// Panics on `Load`/`Opaque` nodes; [`KernelSpec::validate`] rejects such
/// guards up front.
fn eval_pure(e: &Expr, row: &[Value]) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Binary(op, l, r) => op.apply(eval_pure(l, row), eval_pure(r, row)),
        Expr::Load(..) | Expr::Opaque(..) => {
            unreachable!("guards are validated to be affine")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ArrayDecl;
    use prevv_dataflow::components::BinOp;
    use prevv_dataflow::components::LoopLevel;

    /// for i in 0..4 { a[b[i]] += 1; b[i] += 2 } — paper Fig. 2(a).
    fn fig2a() -> KernelSpec {
        let a = ArrayId(0);
        let b = ArrayId(1);
        KernelSpec::new(
            "fig2a",
            vec![LoopLevel::upto(4)],
            vec![
                ArrayDecl::zeroed("a", 8),
                ArrayDecl::with_values("b", vec![2, 2, 5, 2]),
            ],
            vec![
                Stmt::store(
                    a,
                    Expr::load(b, Expr::var(0)),
                    Expr::load(a, Expr::load(b, Expr::var(0))).add(Expr::lit(1)),
                ),
                Stmt::store(
                    b,
                    Expr::var(0),
                    Expr::load(b, Expr::var(0)).add(Expr::lit(2)),
                ),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn sequential_semantics_match_hand_execution() {
        let g = execute(&fig2a());
        // b starts [2,2,5,2]; a[b[i]] += 1 before b[i] += 2 each iteration.
        // i=0: a[2]+=1; b[0]=4. i=1: a[2]+=1; b[1]=4. i=2: a[5]+=1; b[2]=7.
        // i=3: a[2]+=1; b[3]=4.
        assert_eq!(g.array(ArrayId(0)), &[0, 0, 3, 0, 0, 1, 0, 0]);
        assert_eq!(g.array(ArrayId(1)), &[4, 4, 7, 4]);
    }

    #[test]
    fn trace_is_in_program_order() {
        let g = execute(&fig2a());
        // 6 events per iteration (3 loads + 1 store in stmt0? No:
        // stmt0 = load b[i] (index), load b[i] + load a[..] (value), store a = 4;
        // stmt1 = load b[i], store b = 2) => 6 per iteration, 24 total.
        assert_eq!(g.trace.len(), 24);
        for w in g.trace.windows(2) {
            assert!(
                (w[0].iter, w[0].seq) < (w[1].iter, w[1].seq),
                "trace must be strictly ordered"
            );
        }
        // First iteration's store to `a` carries seq 3.
        let store = g
            .trace
            .iter()
            .find(|e| e.kind == MemOpKind::Store)
            .expect("has stores");
        assert_eq!(store.seq, 3);
        assert_eq!(store.array, ArrayId(0));
        assert_eq!(store.index, 2);
        assert_eq!(store.value, 1);
    }

    #[test]
    fn guard_skips_reserve_sequence_numbers() {
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "guarded",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![
                // if (i % 2 == 0) a[i] = i
                Stmt::guarded(
                    a,
                    Expr::var(0),
                    Expr::var(0),
                    Expr::bin(
                        BinOp::Eq,
                        Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(2)),
                        Expr::lit(0),
                    ),
                ),
                // a[i+4] = 9 always; its seq must be stable regardless of guard
                Stmt::store(a, Expr::var(0).add(Expr::lit(4)), Expr::lit(9)),
            ],
        )
        .expect("valid");
        let g = execute(&k);
        assert_eq!(g.guards_skipped, 2);
        assert_eq!(g.array(a), &[0, 0, 2, 0, 9, 9, 9, 9]);
        // Second statement's store is always seq 1 (stmt0 reserves seq 0).
        for e in g.trace.iter().filter(|e| e.index >= 4) {
            assert_eq!(e.seq, 1);
        }
    }

    #[test]
    fn opaque_indices_execute_deterministically() {
        use crate::expr::OpaqueFn;
        let a = ArrayId(0);
        let k = KernelSpec::new(
            "hash",
            vec![LoopLevel::upto(16)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0).opaque(OpaqueFn::new(3, 8)),
                Expr::load(a, Expr::var(0).opaque(OpaqueFn::new(3, 8))).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let g1 = execute(&k);
        let g2 = execute(&k);
        assert_eq!(g1, g2);
        let total: i64 = g1.array(a).iter().sum();
        assert_eq!(total, 16, "each iteration increments exactly one cell");
    }
}
