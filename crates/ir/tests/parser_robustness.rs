//! Parser robustness: `parse_kernel` must never panic, and on valid inputs
//! it must agree with the pretty-printer (parse ∘ render = identity on
//! semantics).

use proptest::prelude::*;

use prevv_ir::parse::parse_kernel;
use prevv_ir::{golden, pretty};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary byte soup: the parser returns an error, never panics.
    #[test]
    fn parser_never_panics_on_garbage(src in ".*") {
        let _ = parse_kernel("fuzz", &src);
    }

    /// Structured-ish soup assembled from language fragments — much more
    /// likely to get deep into the parser than raw bytes.
    #[test]
    fn parser_never_panics_on_fragment_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("int a[4];"),
                Just("int a[4] = { 1, 2, 3, 4 };"),
                Just("for (int i = 0; i < 4; ++i) {"),
                Just("}"),
                Just("a[i] += 1;"),
                Just("a[i] = h3_4(i);"),
                Just("if (i % 2 == 0)"),
                Just("b[j]"),
                Just("= = ="),
                Just("(("),
                Just("-"),
                Just("int"),
            ],
            0..12,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_kernel("soup", &src);
    }
}

/// Deterministic render→parse round trips over a corpus of real kernels.
#[test]
fn corpus_round_trips() {
    use prevv_kernels::{extra, paper, suite};
    let corpus = vec![
        paper::polyn_mult(6),
        paper::mm2(3),
        paper::gaussian(4),
        paper::triangular(4),
        extra::fig2b(8, 4),
        extra::guarded_update(12, 3),
        extra::histogram(16, 4, 3),
        suite::stencil1d(8, 1, 2),
    ];
    for spec in corpus {
        let rendered = pretty::render(&spec);
        let body: String = rendered
            .lines()
            .filter(|l| !l.trim_start().starts_with("//"))
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_kernel(&spec.name, &body)
            .unwrap_or_else(|e| panic!("{}: {e}\nsource:\n{body}", spec.name));
        assert_eq!(
            golden::execute(&spec).arrays,
            golden::execute(&reparsed).arrays,
            "{}: semantics drift through render→parse",
            spec.name
        );
    }
}
