//! Unit-level tests of [`PrevvMemory`] driven directly through its channel
//! interface — no synthesized kernel, no datapath. This pins down the exact
//! cycle-level contract for adversarial arrival interleavings that a real
//! circuit only produces probabilistically.

use prevv_core::{PrevvConfig, PrevvMemory, SharedPrevvStats};
use prevv_dataflow::{ChannelId, Component, Signals, SquashBus, Tag, Token};
use prevv_ir::depend::StaticMemOp;
use prevv_ir::{ArrayId, ArrayLayout, Expr, MemOpKind, MemoryInterface, MemoryPort};
use prevv_mem::SharedRam;

/// A hand-built interface: one load port and one store port over an 8-word
/// array, channels numbered manually.
///
/// Channel map: 0 = alloc, 1 = load addr, 2 = load data out,
/// 3 = store addr, 4 = store data.
fn two_port_iface() -> MemoryInterface {
    let ch = ChannelId::from_index;
    let load_op = StaticMemOp {
        id: 0,
        stmt: 0,
        seq: 0,
        kind: MemOpKind::Load,
        array: ArrayId(0),
        guarded: false,
        index: Expr::var(0),
    };
    let store_op = StaticMemOp {
        id: 1,
        stmt: 0,
        seq: 1,
        kind: MemOpKind::Store,
        array: ArrayId(0),
        guarded: false,
        index: Expr::var(0),
    };
    MemoryInterface {
        ports: vec![
            MemoryPort {
                op: load_op,
                addr_in: ch(1),
                data_in: None,
                data_out: Some(ch(2)),
                fake_in: None,
            },
            MemoryPort {
                op: store_op,
                addr_in: ch(3),
                data_in: Some(ch(4)),
                data_out: None,
                fake_in: None,
            },
        ],
        alloc_in: ch(0),
        arrays: vec![ArrayLayout {
            name: "a".into(),
            base: 0,
            len: 8,
            init: vec![0; 8],
        }],
        iterations: 64,
        pairs: vec![prevv_ir::depend::AmbiguousPair { load: 0, store: 1 }],
    }
}

struct Bench {
    ctrl: PrevvMemory,
    ram: SharedRam,
    stats: SharedPrevvStats,
    log: prevv_core::SharedSquashLog,
    bus: SquashBus,
    cycle: u64,
    results: Vec<Token>,
}

impl Bench {
    fn new(config: PrevvConfig) -> Self {
        let bus = SquashBus::new();
        let (ctrl, ram, stats) =
            PrevvMemory::new(two_port_iface(), config, bus.clone()).expect("deep enough");
        let log = ctrl.squash_log();
        Bench {
            ctrl,
            ram,
            stats,
            log,
            bus,
            cycle: 0,
            results: Vec::new(),
        }
    }

    /// Runs one cycle, optionally driving load-addr / store-addr+data
    /// tokens, always accepting load results. Returns tokens accepted from
    /// us this cycle as (load_addr_taken, store_taken).
    fn cycle(&mut self, load_addr: Option<Token>, store: Option<(Token, Token)>) -> (bool, bool) {
        let ch = ChannelId::from_index;
        let mut sig = Signals::new(5);
        if let Some(t) = load_addr {
            sig.drive(ch(1), t);
        }
        if let Some((a, d)) = store {
            sig.drive(ch(3), a);
            sig.drive(ch(4), d);
        }
        sig.accept(ch(2));
        let converged = sig.settle_with(8, |s| self.ctrl.eval(s));
        assert!(converged, "controller eval must converge");
        let load_taken = sig.fired(ch(1));
        let store_taken = sig.fired(ch(3)) && sig.fired(ch(4));
        if let Some(t) = sig.taken(ch(2)) {
            self.results.push(t);
        }
        self.ctrl.commit(&sig);
        // Apply any squash the way the engine would.
        if let Some(from) = self.bus.take_pending(|_| 1) {
            self.ctrl.flush(from);
        }
        self.cycle += 1;
        (load_taken, store_taken)
    }

    fn idle_cycles(&mut self, n: usize) {
        for _ in 0..n {
            self.cycle(None, None);
        }
    }

    fn ram_at(&self, addr: usize) -> i64 {
        self.ram.borrow().image()[addr]
    }
}

fn tok(value: i64, iter: u64) -> Token {
    Token::tagged(value, Tag::new(iter))
}

#[test]
fn store_then_load_forwards_from_the_queue() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    // Iteration 0: store a[3] = 42 arrives first; its iteration's load has
    // not arrived yet, so the store cannot commit.
    let (_, st) = b.cycle(None, Some((tok(3, 0), tok(42, 0))));
    assert!(st, "store accepted");
    // Iteration 1: load a[3] arrives with the store resident-uncommitted.
    let (ld, _) = b.cycle(Some(tok(3, 1)), None);
    assert!(ld, "load accepted");
    b.idle_cycles(4);
    assert_eq!(b.stats.borrow().forwards, 1, "value came from the queue");
    assert_eq!(b.stats.borrow().squashes, 0);
    assert_eq!(b.stats.borrow().ram_writes, 0, "no premature RAM write");
    assert_eq!(b.ram_at(3), 0);
    // Result delivery is iteration-ordered: nothing can leave until
    // iteration 0's load arrives (every port sees one op per iteration).
    assert!(b.results.is_empty(), "iteration 0 gates delivery");
    b.cycle(Some(tok(1, 0)), None);
    b.idle_cycles(8);
    assert_eq!(b.results.len(), 2);
    assert_eq!(b.results[0].tag.iter, 0);
    assert_eq!(
        (b.results[1].tag.iter, b.results[1].value),
        (1, 42),
        "the forwarded value reaches the datapath"
    );
    // With both iterations complete the store retires and commits.
    assert_eq!(b.ram_at(3), 42);
}

#[test]
fn frontier_gates_commit_and_completion_releases_it() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    // Iteration 0: both ops arrive (load a[0], store a[3]).
    b.cycle(Some(tok(0, 0)), Some((tok(3, 0), tok(42, 0))));
    b.idle_cycles(8);
    // All of iteration 0 arrived, so the frontier passed it and the store
    // committed in (iter, seq) order.
    assert_eq!(b.stats.borrow().ram_writes, 1);
    assert_eq!(b.ram_at(3), 42);
    assert_eq!(b.results.len(), 1, "load result delivered");
    assert_eq!(b.results[0].value, 0, "a[0] was zero");
}

#[test]
fn late_store_flags_premature_load_and_squashes() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    // Iteration 0's load (unrelated address) keeps the contract intact.
    b.cycle(Some(tok(0, 0)), None);
    // Iteration 1's load of a[5] executes prematurely (nothing resident).
    b.cycle(Some(tok(5, 1)), None);
    b.idle_cycles(6);
    assert_eq!(b.results.len(), 2);
    assert_eq!(b.results[1].value, 0, "read stale zero");
    // Now iteration 0's store to a[5] with a different value arrives.
    b.cycle(None, Some((tok(5, 0), tok(99, 0))));
    b.idle_cycles(2);
    let stats = *b.stats.borrow();
    assert_eq!(stats.violations, 1, "value mismatch must be detected");
    assert_eq!(stats.squashes, 1);
    assert!(b.bus.epoch() >= 1, "engine-side flush bumped the epoch");
    // The datapath replays iteration 1's load under the new epoch. By now
    // iteration 0 is complete, so its store has committed (or will bypass).
    b.cycle(Some(Token::tagged(5, Tag::with_epoch(1, 1))), None);
    b.idle_cycles(10);
    assert_eq!(b.ram_at(5), 99, "store committed after retirement");
    let last = b.results.last().expect("replayed result");
    assert_eq!(
        (last.tag.iter, last.value),
        (1, 99),
        "replayed load observes the store"
    );
}

#[test]
fn benign_same_value_store_does_not_squash() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    b.cycle(Some(tok(0, 0)), None);
    // Load of iteration 1 reads a[5] = 0 prematurely.
    b.cycle(Some(tok(5, 1)), None);
    b.idle_cycles(6);
    // Iteration 0's store writes the SAME value the load already read.
    b.cycle(None, Some((tok(5, 0), tok(0, 0))));
    b.idle_cycles(4);
    let stats = *b.stats.borrow();
    assert_eq!(stats.squashes, 0, "value validation accepts equal values");
    assert_eq!(stats.violations, 0);
}

#[test]
fn waw_commits_in_program_order_despite_reversed_arrival() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    // Iteration 1's store arrives BEFORE iteration 0's store, same address.
    b.cycle(None, Some((tok(2, 1), tok(111, 1))));
    b.cycle(None, Some((tok(2, 0), tok(222, 0))));
    // Loads of iterations 0 and 1 also arrive so the frontier can move.
    b.cycle(Some(tok(0, 0)), None);
    b.cycle(Some(tok(1, 1)), None);
    b.idle_cycles(12);
    assert_eq!(b.stats.borrow().ram_writes, 2);
    assert_eq!(
        b.ram_at(2),
        111,
        "iteration 1's store must be the final value (WAW order)"
    );
}

#[test]
fn queue_backpressures_when_admission_would_starve_older_iterations() {
    // Depth exactly 2 (= ports per iteration): only one iteration may be in
    // flight; a younger iteration's op must wait.
    let mut b = Bench::new(PrevvConfig::with_depth(2));
    let (ld, _) = b.cycle(Some(tok(0, 0)), None);
    assert!(ld);
    b.idle_cycles(4);
    // Iteration 1's load cannot be admitted: iteration 0's store is still
    // outstanding and owns the reserved slot.
    let (ld1, _) = b.cycle(Some(tok(1, 1)), None);
    let accepted_early = ld1;
    // Iteration 0's store arrives; iteration 0 completes, retires, and the
    // queue drains.
    b.cycle(None, Some((tok(4, 0), tok(7, 0))));
    b.idle_cycles(8);
    // Now iteration 1's load is admitted.
    let (ld1_retry, _) = if accepted_early {
        (true, false)
    } else {
        b.cycle(Some(tok(1, 1)), None)
    };
    assert!(ld1_retry, "after draining, the load must be admitted");
    assert!(
        b.stats.borrow().queue_full_stalls > 0 || accepted_early,
        "the reservation should have stalled at least once"
    );
}

#[test]
fn predictor_learns_and_prevents_the_second_squash() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    // Round 1: loads run three iterations ahead of their producer stores at
    // distance 1 on the same address — a guaranteed race.
    b.cycle(Some(tok(2, 0)), None);
    b.cycle(Some(tok(2, 1)), None);
    b.idle_cycles(4);
    // The store of iteration 0 arrives with a conflicting value: squash.
    b.cycle(None, Some((tok(2, 0), tok(50, 0))));
    b.idle_cycles(2);
    assert_eq!(b.stats.borrow().squashes, 1);
    assert_eq!(b.stats.borrow().predictions_learned, 1);
    let ev = b.stats.borrow();
    drop(ev);
    // Replay iteration 1 under the new epoch; the predictor now holds the
    // load until port 1's op of iteration 0 has arrived — it has, so the
    // bypass forwards 50 with no further squash.
    b.cycle(Some(Token::tagged(2, Tag::with_epoch(1, 1))), None);
    b.idle_cycles(6);
    assert_eq!(b.stats.borrow().squashes, 1, "no repeat squash");
    let last = b.results.last().expect("replayed result");
    assert_eq!(last.value, 50, "bypassed from the resident store");
    // And the event log recorded exactly the one violation with distance 1.
    assert_eq!(b.log.borrow().len(), 1);
    assert_eq!(b.log.borrow()[0].distance, 1);
    assert_eq!(b.log.borrow()[0].from_iter, 1);
}

#[test]
fn predictor_hold_is_address_qualified() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    // Teach the predictor a (load <- store, d=1) dependence via one squash.
    b.cycle(Some(tok(2, 0)), None);
    b.cycle(Some(tok(2, 1)), None);
    b.idle_cycles(4);
    b.cycle(None, Some((tok(2, 0), tok(50, 0))));
    b.idle_cycles(2);
    assert_eq!(b.stats.borrow().squashes, 1);
    // Replay: iteration 1's store goes to a DIFFERENT address (7), and its
    // address token is visible when iteration 2's load (addr 3) issues —
    // the qualified hold must let the load through without waiting for the
    // store's data.
    b.cycle(Some(Token::tagged(2, Tag::with_epoch(1, 1))), None);
    b.idle_cycles(4);
    let holds_before = b.stats.borrow().predictor_holds;
    // Offer iteration 1's store addr+data and iteration 2's load together.
    b.cycle(
        Some(Token::tagged(3, Tag::with_epoch(2, 1))),
        Some((
            Token::tagged(7, Tag::with_epoch(1, 1)),
            Token::tagged(9, Tag::with_epoch(1, 1)),
        )),
    );
    b.idle_cycles(8);
    // The iteration-2 load must complete (deliver a result) without a new
    // squash; any holds taken must be transient.
    assert_eq!(b.stats.borrow().squashes, 1, "no new squash");
    let _ = holds_before;
    assert!(
        b.results.iter().any(|t| t.tag.iter == 2),
        "iteration 2's load delivered: {:?}",
        b.results
    );
}

#[test]
fn out_of_order_results_deliver_in_iteration_order() {
    let mut b = Bench::new(PrevvConfig::prevv16());
    // Store a[6] = 5 in iteration 0 (resident → iteration 2's load will
    // bypass instantly) plus iteration 0's own load.
    b.cycle(Some(tok(4, 0)), Some((tok(6, 0), tok(5, 0))));
    // Drive the next loads in consecutive cycles: iter 1 (RAM, slow),
    // iter 2 (bypass, fast — it would complete first without reordering).
    b.cycle(Some(tok(7, 1)), None);
    b.cycle(Some(tok(6, 2)), None);
    b.idle_cycles(10);
    assert_eq!(b.results.len(), 3);
    let iters: Vec<u64> = b.results.iter().map(|t| t.tag.iter).collect();
    assert_eq!(
        iters,
        vec![0, 1, 2],
        "the port reorders completions into iteration order"
    );
    assert_eq!(b.results[1].value, 0, "a[7] was zero");
    assert_eq!(b.results[2].value, 5, "bypassed from iteration 0's store");
}
