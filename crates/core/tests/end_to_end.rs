//! End-to-end differential tests: synthesized circuits with the PreVV
//! controller must reproduce the golden (sequential C) semantics on every
//! hazard pattern the paper discusses — and deadlock exactly when the paper
//! says they would (§V-C without fake tokens).

use prevv_core::{PrevvConfig, PrevvMemory, PrevvStats};
use prevv_dataflow::components::{BinOp, LoopLevel};
use prevv_dataflow::{SimConfig, SimError, SimReport, Simulator};
use prevv_ir::{
    golden, synthesize_with, ArrayDecl, ArrayId, Expr, KernelSpec, OpaqueFn, Stmt, SynthOptions,
};

#[derive(Debug)]
struct RunOutcome {
    arrays: Vec<Vec<i64>>,
    report: SimReport,
    stats: PrevvStats,
}

fn run_prevv(spec: &KernelSpec, config: PrevvConfig) -> RunOutcome {
    run_prevv_with(spec, config, &SynthOptions::default()).expect("simulation completes")
}

fn run_prevv_with(
    spec: &KernelSpec,
    config: PrevvConfig,
    opts: &SynthOptions,
) -> Result<RunOutcome, SimError> {
    let mut s = synthesize_with(spec, opts).expect("synthesizes");
    let (ctrl, ram, stats) =
        PrevvMemory::new(s.interface.clone(), config, s.bus.clone()).expect("queue deep enough");
    s.netlist.add("prevv", ctrl);
    let mut sim = Simulator::new(s.netlist, s.bus)?.with_config(SimConfig {
        max_cycles: 2_000_000,
        watchdog: 2_000,
        ..SimConfig::default()
    });
    let report = sim.run()?;
    let ram = ram.borrow();
    let arrays = s
        .interface
        .split_ram(ram.image())
        .into_iter()
        .map(<[i64]>::to_vec)
        .collect();
    let stats = *stats.borrow();
    Ok(RunOutcome {
        arrays,
        report,
        stats,
    })
}

fn assert_matches_golden(spec: &KernelSpec, out: &RunOutcome) {
    let gold = golden::execute(spec);
    for (i, decl) in spec.arrays.iter().enumerate() {
        assert_eq!(
            out.arrays[i], gold.arrays[i],
            "array `{}` of kernel `{}` diverged from golden",
            decl.name, spec.name
        );
    }
}

/// Paper Fig. 2(a): sequential-update RAW.
fn fig2a(n: i64) -> KernelSpec {
    let a = ArrayId(0);
    let b = ArrayId(1);
    KernelSpec::new(
        "fig2a",
        vec![LoopLevel::upto(n)],
        vec![
            ArrayDecl::zeroed("a", 2 * n as usize),
            ArrayDecl::with_values("b", (0..n).map(|i| i % 5).collect()),
        ],
        vec![
            // a[b[i]] += 7
            Stmt::store(
                a,
                Expr::load(b, Expr::var(0)),
                Expr::load(a, Expr::load(b, Expr::var(0))).add(Expr::lit(7)),
            ),
            // b[i] += 3
            Stmt::store(
                b,
                Expr::var(0),
                Expr::load(b, Expr::var(0)).add(Expr::lit(3)),
            ),
        ],
    )
    .expect("valid kernel")
}

/// Paper Fig. 2(b): function-dependent RAW with runtime-only indices.
fn fig2b(n: i64, range: i64) -> KernelSpec {
    let a = ArrayId(0);
    let b = ArrayId(1);
    let f = OpaqueFn::new(101, range);
    let g = OpaqueFn::new(202, range);
    let a_idx = Expr::load(b, Expr::var(0)).add(Expr::var(0).opaque(f));
    let b_idx = Expr::var(0).add(Expr::var(0).opaque(g));
    KernelSpec::new(
        "fig2b",
        vec![LoopLevel::upto(n)],
        vec![
            ArrayDecl::zeroed("a", (2 * range) as usize),
            ArrayDecl::with_values("b", (0..n).map(|i| i % range).collect()),
        ],
        vec![
            Stmt::store(a, a_idx.clone(), Expr::load(a, a_idx).add(Expr::lit(1))),
            Stmt::store(b, b_idx.clone(), Expr::load(b, b_idx).add(Expr::lit(2))),
        ],
    )
    .expect("valid kernel")
}

/// Worst-case hazard: every iteration updates the same cell.
fn serial_reduction(n: i64) -> KernelSpec {
    let s = ArrayId(0);
    KernelSpec::new(
        "reduce",
        vec![LoopLevel::upto(n)],
        vec![ArrayDecl::zeroed("s", 4)],
        vec![Stmt::store(
            s,
            Expr::lit(0),
            Expr::load(s, Expr::lit(0)).add(Expr::var(0)),
        )],
    )
    .expect("valid kernel")
}

/// Histogram with controllable collision rate (smaller `bins` = more RAW).
fn histogram(n: i64, bins: i64) -> KernelSpec {
    let h = ArrayId(0);
    let idx = Expr::var(0).opaque(OpaqueFn::new(31, bins));
    KernelSpec::new(
        "histogram",
        vec![LoopLevel::upto(n)],
        vec![ArrayDecl::zeroed("h", bins as usize)],
        vec![Stmt::store(
            h,
            idx.clone(),
            Expr::load(h, idx).add(Expr::lit(1)),
        )],
    )
    .expect("valid kernel")
}

/// The §V-C shape: a guarded update that would starve the arbiter.
fn guarded(n: i64) -> KernelSpec {
    let a = ArrayId(0);
    KernelSpec::new(
        "guarded",
        vec![LoopLevel::upto(n)],
        vec![ArrayDecl::zeroed("a", 8)],
        vec![Stmt::guarded(
            a,
            Expr::lit(3),
            Expr::load(a, Expr::lit(3)).add(Expr::lit(1)),
            Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(3)),
                Expr::lit(0),
            ),
        )],
    )
    .expect("valid kernel")
}

#[test]
fn fig2a_matches_golden() {
    let spec = fig2a(24);
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &out);
}

#[test]
fn fig2b_matches_golden_and_exercises_validation() {
    let spec = fig2b(32, 6);
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &out);
    assert!(out.stats.validations > 0, "ambiguous ops must be validated");
}

#[test]
fn serial_reduction_squashes_and_recovers() {
    let spec = serial_reduction(48);
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &out);
    assert!(
        out.stats.squashes > 0,
        "every iteration conflicts; premature execution must mis-speculate at least once"
    );
    assert_eq!(out.report.squashes, out.stats.squashes);
}

#[test]
fn dense_histogram_is_correct_under_heavy_collisions() {
    let spec = histogram(96, 4);
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &out);
    let total: i64 = out.arrays[0].iter().sum();
    assert_eq!(total, 96);
}

#[test]
fn sparse_histogram_rarely_squashes() {
    let sparse = histogram(64, 512);
    let dense = histogram(64, 2);
    let out_sparse = run_prevv(&sparse, PrevvConfig::prevv16());
    let out_dense = run_prevv(&dense, PrevvConfig::prevv16());
    assert_matches_golden(&sparse, &out_sparse);
    assert_matches_golden(&dense, &out_dense);
    assert!(
        out_sparse.stats.squashes <= out_dense.stats.squashes,
        "collision rate should drive the squash rate: sparse {} vs dense {}",
        out_sparse.stats.squashes,
        out_dense.stats.squashes
    );
}

#[test]
fn guarded_kernel_completes_with_fake_tokens() {
    let spec = guarded(24);
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &out);
    assert!(
        out.stats.fakes > 0,
        "untaken guards must deliver fake tokens"
    );
}

#[test]
fn guarded_kernel_deadlocks_without_fake_tokens() {
    // The paper's §V-C deadlock: with a small queue and no fake tokens, the
    // arbiter waits forever for arrivals of untaken iterations and the full
    // queue stalls the pipeline.
    let spec = guarded(64);
    let opts = SynthOptions {
        fake_tokens: false,
        ..SynthOptions::default()
    };
    let err = run_prevv_with(&spec, PrevvConfig::with_depth(4), &opts)
        .expect_err("must deadlock without fake tokens");
    assert!(
        matches!(err, SimError::Deadlock { .. }),
        "expected deadlock, got {err}"
    );
}

/// Adjacent-producer chain engineered so the store arrives *before* the
/// consuming load completes and stays uncommitted for a while:
/// `a[i] = i + 1` (fast store), `b[i] = a[i*1 - 1]` (slow load address via a
/// multiplier), and `c[i] = ((i*i)*i)*i` (a deep multiplier chain that delays
/// iteration completion, holding the frontier — and thus commits — back).
fn adjacent_chain(n: i64) -> KernelSpec {
    let a = ArrayId(0);
    let b = ArrayId(1);
    let c = ArrayId(2);
    KernelSpec::new(
        "chain",
        vec![LoopLevel::upto(n)],
        vec![
            ArrayDecl::zeroed("a", n as usize),
            ArrayDecl::zeroed("b", n as usize),
            ArrayDecl::zeroed("c", n as usize),
        ],
        vec![
            Stmt::store(a, Expr::var(0), Expr::var(0).add(Expr::lit(1))),
            Stmt::store(
                b,
                Expr::var(0),
                Expr::load(a, Expr::var(0).mul(Expr::lit(1)).sub(Expr::lit(1))),
            ),
            Stmt::store(
                c,
                Expr::var(0),
                Expr::var(0)
                    .mul(Expr::var(0))
                    .mul(Expr::var(0))
                    .mul(Expr::var(0)),
            ),
        ],
    )
    .expect("valid kernel")
}

#[test]
fn forwarding_mode_reduces_squashes_on_adjacent_chain() {
    let spec = adjacent_chain(48);
    let mut plain_cfg = PrevvConfig::prevv16();
    plain_cfg.forwarding = false;
    let plain = run_prevv(&spec, plain_cfg);
    assert_matches_golden(&spec, &plain);
    let fwd = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &fwd);
    assert!(
        fwd.stats.squashes <= plain.stats.squashes,
        "forwarding must not squash more: {} vs {}",
        fwd.stats.squashes,
        plain.stats.squashes
    );
    assert!(
        fwd.stats.forwards > 0 || plain.stats.squashes == 0,
        "on this chain forwarding should trigger whenever plain mode squashes          (plain squashes: {}, forwards: {})",
        plain.stats.squashes,
        fwd.stats.forwards
    );
}

#[test]
fn pure_squash_mode_stays_correct_on_the_reduction() {
    let spec = serial_reduction(48);
    let mut cfg = PrevvConfig::prevv16();
    cfg.forwarding = false;
    let out = run_prevv(&spec, cfg);
    assert_matches_golden(&spec, &out);
    assert!(
        out.stats.squashes > 0,
        "without bypass every reuse squashes"
    );
}

#[test]
fn tiny_queue_is_correct_but_stalls() {
    let spec = fig2a(24);
    let small = run_prevv(&spec, PrevvConfig::with_depth(6));
    let large = run_prevv(&spec, PrevvConfig::prevv64());
    assert_matches_golden(&spec, &small);
    assert_matches_golden(&spec, &large);
    assert!(
        small.stats.queue_high_water <= 6,
        "queue must respect depth_q"
    );
    assert!(
        large.report.cycles <= small.report.cycles,
        "deeper premature queue must not be slower: {} vs {}",
        large.report.cycles,
        small.report.cycles
    );
}

#[test]
fn two_level_accumulation_matches_golden() {
    // 2mm-style: c[i*4+j] accumulated over k — the ambiguous pattern of the
    // paper's matrix kernels.
    let c = ArrayId(0);
    let spec = KernelSpec::new(
        "accum2",
        vec![LoopLevel::upto(4), LoopLevel::upto(4), LoopLevel::upto(4)],
        vec![ArrayDecl::zeroed("c", 16)],
        vec![Stmt::store(
            c,
            Expr::var(0).mul(Expr::lit(4)).add(Expr::var(1)),
            Expr::load(c, Expr::var(0).mul(Expr::lit(4)).add(Expr::var(1)))
                .add(Expr::var(2).mul(Expr::lit(3))),
        )],
    )
    .expect("valid");
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &out);
}

#[test]
fn prevv_beats_or_matches_nothing_but_stays_correct_on_triangular() {
    use prevv_dataflow::components::Bound;
    let a = ArrayId(0);
    let spec = KernelSpec::new(
        "tri",
        vec![
            LoopLevel::upto(6),
            LoopLevel::new(Bound::OuterPlus(0, 0), Bound::Const(6)),
        ],
        vec![ArrayDecl::zeroed("a", 36)],
        vec![Stmt::store(
            a,
            Expr::var(0).mul(Expr::lit(6)).add(Expr::var(1)),
            Expr::load(a, Expr::var(1).mul(Expr::lit(6)).add(Expr::var(0))).add(Expr::lit(1)),
        )],
    )
    .expect("valid");
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    assert_matches_golden(&spec, &out);
}

#[test]
fn replay_statistics_are_consistent() {
    let spec = serial_reduction(40);
    let out = run_prevv(&spec, PrevvConfig::prevv16());
    if out.stats.squashes > 0 {
        assert!(
            out.stats.replayed_iters >= out.stats.squashes,
            "each squash replays at least one iteration"
        );
    }
    assert!(out.stats.ram_writes >= 40, "every iteration stores once");
}
