//! Property-based tests of the PreVV data structures in isolation: the
//! premature queue's structural invariants under arbitrary operation
//! sequences, and metamorphic properties of the arbiter's validation.

use proptest::prelude::*;

use prevv_core::{Arbiter, PrematureQueue, PrematureRecord, QueueState, Verdict};
use prevv_dataflow::Tag;
use prevv_ir::MemOpKind;

#[derive(Debug, Clone)]
enum Op {
    Push {
        iter: u64,
        seq: u32,
        store: bool,
        addr: usize,
        value: i64,
    },
    PopHead,
    RetireBelow(u64),
    Flush(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32, 0u32..4, any::<bool>(), 0usize..8, -4i64..4).prop_map(
            |(iter, seq, store, addr, value)| Op::Push {
                iter,
                seq,
                store,
                addr,
                value
            }
        ),
        Just(Op::PopHead),
        (0u64..32).prop_map(Op::RetireBelow),
        (0u64..32).prop_map(Op::Flush),
    ]
}

fn record(iter: u64, seq: u32, store: bool, addr: usize, value: i64) -> PrematureRecord {
    let kind = if store {
        MemOpKind::Store
    } else {
        MemOpKind::Load
    };
    PrematureRecord::real(seq as usize, kind, Tag::new(iter), seq, addr, value)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Structural invariants of the circular queue hold under any operation
    /// sequence: occupancy within bounds, state classification consistent,
    /// high-water monotone, flush removes exactly the squashed suffix.
    #[test]
    fn queue_invariants_hold(depth in 1usize..24, ops in proptest::collection::vec(op_strategy(), 0..64)) {
        let mut q = PrematureQueue::new(depth);
        let mut last_high = 0;
        for op in ops {
            match op {
                Op::Push { iter, seq, store, addr, value } => {
                    if !q.is_full() {
                        q.push(record(iter, seq, store, addr, value));
                    }
                }
                Op::PopHead => { q.pop_head(); }
                Op::RetireBelow(bound) => {
                    q.retire_if(|r| r.iter < bound, depth);
                    prop_assert!(q.iter().all(|r| r.iter >= bound),
                        "retire_if with unlimited budget must clear everything eligible");
                }
                Op::Flush(from) => {
                    // Emulate the squash contract: only uncommitted records
                    // exist here, so flushing is always legal.
                    q.flush(from);
                    prop_assert!(q.iter().all(|r| r.iter < from));
                }
            }
            prop_assert!(q.len() <= q.depth());
            prop_assert_eq!(q.is_full(), q.len() == q.depth());
            prop_assert_eq!(q.free(), q.depth() - q.len());
            match q.state() {
                QueueState::Full => prop_assert!(q.is_full()),
                QueueState::Normal | QueueState::WrapAround => prop_assert!(!q.is_full()),
            }
            prop_assert!(q.head_pos() < q.depth());
            prop_assert!(q.tail_pos() < q.depth());
            prop_assert!(q.high_water() >= last_high, "high water is monotone");
            last_high = q.high_water();
        }
    }

    /// Metamorphic: validation verdicts are insensitive to the queue's
    /// *arrival order* — only program order (iter, seq) matters. Shuffling
    /// resident records must not change the verdict.
    #[test]
    fn arbiter_verdict_is_arrival_order_independent(
        residents in proptest::collection::vec(
            (0u64..8, 0u32..4, any::<bool>(), 0usize..4, -2i64..2), 0..10),
        arriving in (0u64..8, 0u32..4, any::<bool>(), 0usize..4, -2i64..2),
        rotate_by in 0usize..10,
    ) {
        // Deduplicate (iter, seq): program order must identify ops uniquely.
        let mut seen = std::collections::HashSet::new();
        let residents: Vec<_> = residents
            .into_iter()
            .filter(|&(iter, seq, ..)| seen.insert((iter, seq)))
            .collect();
        prop_assume!(seen.insert((arriving.0, arriving.1)));

        let build = |order: &[( u64, u32, bool, usize, i64)]| {
            let mut q = PrematureQueue::new(32);
            for &(iter, seq, store, addr, value) in order {
                q.push(record(iter, seq, store, addr, value));
            }
            q
        };
        let arriving = record(arriving.0, arriving.1, arriving.2, arriving.3, arriving.4);

        let ports: std::collections::HashSet<usize> = (0..8).collect();
        let mut arb1 = Arbiter::new(ports.clone(), false);
        let mut arb2 = Arbiter::new(ports, false);

        let q1 = build(&residents);
        let mut rotated = residents.clone();
        if !rotated.is_empty() {
            let k = rotate_by % rotated.len();
            rotated.rotate_left(k);
        }
        let q2 = build(&rotated);

        let v1 = arb1.validate(&q1, &arriving);
        let v2 = arb2.validate(&q2, &arriving);
        prop_assert_eq!(v1, v2, "verdict depends on arrival order");
    }

    /// Value-validation soundness seed: if every resident record holds the
    /// same value as the arriving op, no squash can occur (Eq. 5 requires a
    /// mismatch).
    #[test]
    fn equal_values_never_squash(
        residents in proptest::collection::vec((0u64..8, 0u32..4, any::<bool>(), 0usize..4), 0..12),
        arriving in (0u64..8, 0u32..4, any::<bool>(), 0usize..4),
        value in -3i64..3,
    ) {
        let mut q = PrematureQueue::new(32);
        for (iter, seq, store, addr) in residents {
            q.push(record(iter, seq, store, addr, value));
        }
        let arriving = record(arriving.0, arriving.1, arriving.2, arriving.3, value);
        let mut arb = Arbiter::new((0..8).collect(), false);
        let v = arb.validate(&q, &arriving);
        prop_assert!(!matches!(v, Verdict::Squash(_)), "equal values squashed: {v:?}");
    }
}
