//! The PreVV retirement protocol as a pure, cloneable state machine.
//!
//! [`ProtocolState`] owns exactly the state that decides whether the
//! protocol makes progress: the premature queue, the completion *frontier*
//! (all iterations below it have fully arrived), the in-order store-commit
//! cursor, and the per-iteration arrival/admission counts behind the
//! deadlock-free admission reservation. Every transition is a plain method
//! with no I/O, no interior mutability and no timing — which makes the same
//! functions usable both by the cycle-accurate controller
//! ([`PrevvMemory`](crate::PrevvMemory) delegates here every cycle) and by
//! the `prevv-analyze` bounded model checker, which clones states and
//! explores every arrival interleaving exhaustively. Keeping one
//! implementation eliminates drift between what is *simulated* and what is
//! *verified*.
//!
//! The protocol invariants encoded here (and checked by the model checker's
//! PV2xx lints):
//!
//! * **Frontier** — iteration `i` completes when all `ports_per_iter` of its
//!   operations have arrived, really or fakely (paper §IV-B). Records of
//!   iterations at or beyond the frontier are always still resident, so
//!   residency plus the frontier decides per-op arrival exactly.
//! * **Admission reservation** — an op of iteration `i` may take a queue
//!   slot only if every not-yet-admitted op of an *older* iteration still
//!   has a reserved slot afterwards. Without this a queue full of young
//!   records would block the very arrivals the frontier waits for (the
//!   paper's §V-C deadlock shape, caused by capacity rather than guards).
//! * **In-order commit** — stores write RAM strictly in `(iteration,
//!   ROM-sequence)` order once the frontier has passed them, preserving WAW
//!   order; fake stores consume their commit slot without touching RAM.
//! * **Squash flush** — a squash from iteration `f` drops every record of
//!   iterations `>= f`; committed stores are never dropped because the
//!   frontier (and hence the commit cursor) never passes a pending squash
//!   point.

use std::collections::BTreeMap;

use prevv_ir::MemOpKind;

use crate::queue::PrematureQueue;
use crate::record::PrematureRecord;

/// What [`ProtocolState::commit_step`] did for one store slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitStep {
    /// A real store committed: write `value` to `addr` in RAM.
    Write {
        /// Flat RAM address of the committed store.
        addr: usize,
        /// Value written.
        value: prevv_dataflow::Value,
    },
    /// A fake store consumed its commit slot without touching RAM.
    Fake,
    /// Nothing to commit: the next store slot's iteration has not been
    /// passed by the frontier yet (or the kernel has no stores).
    Blocked,
}

/// The pure protocol state: everything that decides progress, nothing that
/// decides timing. Compare states via [`ProtocolState::key`], which is
/// insensitive to physical queue geometry.
#[derive(Debug)]
pub struct ProtocolState {
    /// The premature queue (paper Fig. 4).
    pub queue: PrematureQueue,
    /// All iterations below this have fully arrived; their loads can retire
    /// and their stores commit.
    pub frontier: u64,
    /// Global store-slot commit cursor: `next_commit / stores_per_iter` is
    /// the iteration, `next_commit % stores_per_iter` indexes the ascending
    /// store-sequence list.
    pub next_commit: u64,
    /// Arrived-op counts per iteration (real + fake), for the frontier.
    pub arrived: BTreeMap<u64, u32>,
    /// Admitted-op counts per iteration (arrived plus loads in flight):
    /// input to the admission reservation.
    pub admitted: BTreeMap<u64, u32>,
}

impl Clone for ProtocolState {
    fn clone(&self) -> Self {
        ProtocolState {
            queue: self.queue.clone(),
            frontier: self.frontier,
            next_commit: self.next_commit,
            arrived: self.arrived.clone(),
            admitted: self.admitted.clone(),
        }
    }

    /// Field-wise assignment so the queue ring and map nodes are reused.
    /// The model checker leans on this in its scratch-state hot loop.
    fn clone_from(&mut self, source: &Self) {
        self.queue.clone_from(&source.queue);
        self.frontier = source.frontier;
        self.next_commit = source.next_commit;
        self.arrived.clone_from(&source.arrived);
        self.admitted.clone_from(&source.admitted);
    }
}

impl ProtocolState {
    /// A fresh protocol state over an empty queue of capacity `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (see [`PrematureQueue::new`]).
    pub fn new(depth: usize) -> Self {
        ProtocolState {
            queue: PrematureQueue::new(depth),
            frontier: 0,
            next_commit: 0,
            arrived: BTreeMap::new(),
            admitted: BTreeMap::new(),
        }
    }

    /// Free queue slots after subtracting `inflight` reservations held by
    /// operations admitted but not yet arrived (in-flight RAM reads).
    pub fn free_slots(&self, inflight: usize) -> usize {
        self.queue
            .depth()
            .saturating_sub(self.queue.len() + inflight)
    }

    /// Ops of iterations in `[frontier, iter)` that have not been admitted
    /// yet. They will all need queue slots, and the frontier (hence
    /// retirement) cannot advance without them.
    pub fn outstanding_before(&self, iter: u64, ports_per_iter: u32) -> usize {
        if iter <= self.frontier {
            // Ops of complete iterations never re-arrive; guard anyway so a
            // malformed driver cannot panic the range query below.
            return 0;
        }
        let per = u64::from(ports_per_iter);
        let range_iters = iter - self.frontier;
        let already: u64 = self
            .admitted
            .range(self.frontier..iter)
            .map(|(_, &n)| u64::from(n))
            .sum();
        (range_iters * per).saturating_sub(already) as usize
    }

    /// Deadlock-free admission: an op of `iter` may take a queue slot only
    /// if every not-yet-admitted op of an *older* iteration still has a
    /// reserved slot afterwards.
    pub fn can_admit(&self, iter: u64, ports_per_iter: u32, inflight: usize) -> bool {
        self.free_slots(inflight) > self.outstanding_before(iter, ports_per_iter)
    }

    /// Counts one admission of an op of `iter` (called when the op's input
    /// tokens are consumed, which may precede its arrival by a RAM read).
    pub fn note_admitted(&mut self, iter: u64) {
        *self.admitted.entry(iter).or_insert(0) += 1;
    }

    /// Appends an (already validated) record and counts its arrival.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; callers gate on [`Self::can_admit`].
    pub fn record_arrival(&mut self, rec: PrematureRecord) {
        *self.arrived.entry(rec.iter).or_insert(0) += 1;
        self.queue.push(rec);
    }

    /// Advances the frontier over every fully-arrived iteration, but never
    /// past `cap` (the pending squash point, if any): iterations at and
    /// beyond a pending squash are about to be flushed and replayed, so they
    /// must not become retire- or commit-eligible.
    pub fn advance_frontier(&mut self, ports_per_iter: u32, cap: u64) {
        while self.frontier < cap
            && self
                .arrived
                .get(&self.frontier)
                .is_some_and(|&n| n >= ports_per_iter)
        {
            self.arrived.remove(&self.frontier);
            self.admitted.remove(&self.frontier);
            self.frontier += 1;
        }
    }

    /// True when an uncommitted store slot is already below the frontier —
    /// [`commit_step`](ProtocolState::commit_step) has work to do, though it
    /// may still be blocked on write bandwidth. Controllers use this to
    /// decide whether a quiet cycle can skip the commit/retire pipeline.
    pub fn commit_pending(&self, stores_per_iter: usize) -> bool {
        stores_per_iter != 0 && self.next_commit / (stores_per_iter as u64) < self.frontier
    }

    /// Iteration of the first uncommitted store slot (`u64::MAX` for
    /// store-free kernels).
    pub fn commit_iter(&self, stores_per_iter: usize) -> u64 {
        if stores_per_iter == 0 {
            u64::MAX
        } else {
            self.next_commit / stores_per_iter as u64
        }
    }

    /// Tries to commit the next store slot in `(iteration, sequence)` order.
    /// `store_seqs` lists the ROM-sequence numbers of the kernel's store
    /// ports, ascending. Marks the record committed and advances the cursor;
    /// the caller performs the RAM write described by the returned
    /// [`CommitStep`]. A real store is only committed when `allow_write` is
    /// true (the caller's write-bandwidth budget); fake stores consume their
    /// slot regardless, since they need no RAM port.
    pub fn commit_step(&mut self, store_seqs: &[u32], allow_write: bool) -> CommitStep {
        if store_seqs.is_empty() {
            return CommitStep::Blocked;
        }
        let per_iter = store_seqs.len() as u64;
        let iter = self.next_commit / per_iter;
        if iter >= self.frontier {
            return CommitStep::Blocked;
        }
        let seq = store_seqs[(self.next_commit % per_iter) as usize];
        let Some(rec) = self
            .queue
            .iter_mut()
            .find(|r| r.iter == iter && r.seq == seq)
        else {
            // The frontier guarantees arrival; a missing record would be a
            // retirement bug.
            debug_assert!(
                false,
                "store (iter {iter}, seq {seq}) vanished before commit"
            );
            return CommitStep::Blocked;
        };
        if rec.fake {
            rec.committed = true;
            self.next_commit += 1;
            return CommitStep::Fake;
        }
        if !allow_write {
            return CommitStep::Blocked;
        }
        rec.committed = true;
        self.next_commit += 1;
        CommitStep::Write {
            addr: rec.addr.expect("real record"),
            value: rec.value,
        }
    }

    /// Retires up to `budget` records: loads of iterations below the
    /// frontier (nothing older can still flag them) and stores whose commit
    /// slot has been consumed. Returns the number retired.
    pub fn retire(&mut self, budget: usize) -> usize {
        let frontier = self.frontier;
        self.queue.retire_if(
            |r| match r.kind {
                MemOpKind::Load => r.iter < frontier,
                MemOpKind::Store => r.committed,
            },
            budget,
        )
    }

    /// Squash flush: drops all records and arrival/admission counts of
    /// iterations `>= from_iter`. The frontier and commit cursor never move
    /// backwards — squashes never reach committed state.
    pub fn flush(&mut self, from_iter: u64) {
        debug_assert!(self.frontier <= from_iter);
        self.queue.flush(from_iter);
        self.arrived.retain(|&iter, _| iter < from_iter);
        self.admitted.retain(|&iter, _| iter < from_iter);
    }

    /// Exact per-port arrival check: every arrived record of iterations at
    /// or beyond the frontier is still resident (loads retire only below
    /// the frontier, stores only after commit, which requires the same), so
    /// residency plus the frontier decides arrival precisely. A simple
    /// high-water mark would be wrong here: a *fake* of a later iteration
    /// can arrive before an earlier iteration's real op.
    pub fn port_op_arrived(&self, port: usize, iter: u64) -> bool {
        iter < self.frontier || self.queue.iter().any(|r| r.port == port && r.iter == iter)
    }

    /// Issue-time bypass probe: the value and iteration of the youngest
    /// resident older store to `addr`, if any — the latency equivalent of
    /// the LSQ's store-to-load forwarding.
    pub fn resident_bypass(
        &self,
        addr: usize,
        order: (u64, u32),
    ) -> Option<(prevv_dataflow::Value, u64)> {
        self.queue
            .iter()
            .filter(|s| {
                !s.fake && s.kind == MemOpKind::Store && s.addr == Some(addr) && s.order() < order
            })
            .max_by_key(|s| s.order())
            .map(|s| (s.value, s.iter))
    }

    /// A canonical, hashable encoding of this state. Two states with equal
    /// keys are indistinguishable to every transition above (the queue's
    /// physical pointer positions and high-water statistics are excluded on
    /// purpose) — this is what the model checker hash-conses on.
    pub fn key(&self) -> ProtocolKey {
        let mut records = Vec::new();
        self.project_records(&mut records);
        ProtocolKey {
            records,
            frontier: self.frontier,
            next_commit: self.next_commit,
        }
    }

    /// Fills `scratch` with this state's canonically ordered record
    /// projections (clearing whatever it held). Factored out of
    /// [`Self::key`] so hot loops can recycle one arena instead of
    /// allocating a fresh `Vec` per state.
    fn project_records(&self, scratch: &mut Vec<RecordKey>) {
        scratch.clear();
        scratch.extend(self.queue.iter().map(|r| {
            (
                r.port,
                r.iter,
                r.seq,
                r.kind,
                r.fake,
                r.addr,
                r.value,
                r.committed,
            )
        }));
        // Canonical order: `(iter, seq)` is unique per record, so the sort
        // erases the arrival history entirely. Interleavings that merely
        // permute independent arrivals collapse onto one key — the property
        // the model checker's partial-order reduction relies on.
        scratch.sort_unstable_by_key(|r| (r.1, r.2, r.0));
    }

    /// Streams the canonical key encoding into `f` without allocating:
    /// exactly the words of `self.key().fold_words(f)`, but the record
    /// projections live in the caller's reusable `scratch` buffer. This is
    /// the model checker's fingerprint path — one call per explored
    /// transition.
    pub fn fold_key_words(&self, scratch: &mut Vec<RecordKey>, f: impl FnMut(u64)) {
        self.project_records(scratch);
        fold_record_words(self.frontier, self.next_commit, scratch, f);
    }
}

/// One record's projection inside a [`ProtocolKey`]: `(port, iter, seq,
/// kind, fake, addr, value, committed)`. Public so fingerprint hot loops
/// can hold a reusable projection arena for
/// [`ProtocolState::fold_key_words`].
pub type RecordKey = (
    usize,
    u64,
    u32,
    MemOpKind,
    bool,
    Option<usize>,
    prevv_dataflow::Value,
    bool,
);

/// Canonical hashable projection of a [`ProtocolState`] (see
/// [`ProtocolState::key`]). The arrival/admission maps are derivable from
/// the records plus the frontier whenever every admission arrives atomically
/// (as in the model checker), so they are not part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProtocolKey {
    records: Vec<RecordKey>,
    frontier: u64,
    next_commit: u64,
}

impl ProtocolKey {
    /// Feeds the canonical encoding into `f` as a stream of `u64` words —
    /// the hook hash-compacted state stores fingerprint on. The encoding is
    /// injective (every field is widened, none overlap) and independent of
    /// the process's hash seeds, so fingerprints are stable across runs,
    /// threads and platforms.
    pub fn fold_words(&self, f: impl FnMut(u64)) {
        fold_record_words(self.frontier, self.next_commit, &self.records, f);
    }
}

/// The shared word encoding behind [`ProtocolKey::fold_words`] and
/// [`ProtocolState::fold_key_words`].
fn fold_record_words(
    frontier: u64,
    next_commit: u64,
    records: &[RecordKey],
    mut f: impl FnMut(u64),
) {
    f(frontier);
    f(next_commit);
    f(records.len() as u64);
    for &(port, iter, seq, kind, fake, addr, value, committed) in records {
        f(iter);
        let flags = u64::from(kind == MemOpKind::Store)
            | (u64::from(fake) << 1)
            | (u64::from(committed) << 2)
            | (u64::from(addr.is_some()) << 3);
        f((port as u64) << 40 | u64::from(seq) << 8 | flags);
        f(addr.unwrap_or(0) as u64);
        f(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::Tag;

    fn real(port: usize, kind: MemOpKind, iter: u64, seq: u32) -> PrematureRecord {
        PrematureRecord::real(port, kind, Tag::new(iter), seq, port, 7)
    }

    #[test]
    fn reservation_protects_older_iterations() {
        // depth 5, 2 ops/iter: loads of iterations 0..3 admitted, the fourth
        // iteration's load must be refused — the remaining free slots are
        // reserved for the outstanding older stores.
        let mut p = ProtocolState::new(5);
        for it in 0..3u64 {
            assert!(p.can_admit(it, 2, 0), "load of iter {it} admits");
            p.note_admitted(it);
            p.record_arrival(real(0, MemOpKind::Load, it, 0));
        }
        assert!(!p.can_admit(3, 2, 0), "iter 3 must wait for older stores");
        assert!(p.can_admit(0, 2, 0), "the oldest iteration always admits");
    }

    #[test]
    fn frontier_advances_only_over_complete_iterations() {
        let mut p = ProtocolState::new(8);
        p.note_admitted(0);
        p.record_arrival(real(0, MemOpKind::Load, 0, 0));
        p.advance_frontier(2, u64::MAX);
        assert_eq!(p.frontier, 0, "one of two ops arrived");
        p.note_admitted(0);
        p.record_arrival(real(1, MemOpKind::Store, 0, 1));
        p.advance_frontier(2, u64::MAX);
        assert_eq!(p.frontier, 1);
        assert!(p.arrived.is_empty() && p.admitted.is_empty());
    }

    #[test]
    fn frontier_respects_the_squash_cap() {
        let mut p = ProtocolState::new(8);
        for it in 0..3u64 {
            p.note_admitted(it);
            p.record_arrival(real(0, MemOpKind::Load, it, 0));
        }
        p.advance_frontier(1, 2);
        assert_eq!(p.frontier, 2, "capped at the pending squash point");
    }

    #[test]
    fn commit_walks_stores_in_rom_order_and_skips_fakes() {
        let mut p = ProtocolState::new(8);
        p.record_arrival(real(1, MemOpKind::Store, 0, 1));
        p.record_arrival(PrematureRecord::fake(2, MemOpKind::Store, Tag::new(0), 3));
        p.record_arrival(real(0, MemOpKind::Load, 0, 0));
        *p.arrived.entry(0).or_insert(0) = 3;
        p.advance_frontier(3, u64::MAX);
        assert_eq!(p.frontier, 1);
        assert_eq!(
            p.commit_step(&[1, 3], false),
            CommitStep::Blocked,
            "a real store waits for write bandwidth"
        );
        assert_eq!(
            p.commit_step(&[1, 3], true),
            CommitStep::Write { addr: 1, value: 7 }
        );
        assert_eq!(p.commit_step(&[1, 3], false), CommitStep::Fake);
        assert_eq!(p.commit_step(&[1, 3], true), CommitStep::Blocked);
        // Both stores and the now-old load retire.
        assert_eq!(p.retire(8), 3);
        assert!(p.queue.is_empty());
    }

    #[test]
    fn flush_drops_young_state_only() {
        let mut p = ProtocolState::new(8);
        for it in 0..4u64 {
            p.note_admitted(it);
            p.record_arrival(real(0, MemOpKind::Load, it, 0));
        }
        p.flush(2);
        assert_eq!(p.queue.len(), 2);
        assert!(p.arrived.keys().all(|&it| it < 2));
        assert!(p.admitted.keys().all(|&it| it < 2));
    }

    #[test]
    fn key_ignores_physical_queue_geometry() {
        // Two states reaching the same logical contents through different
        // push/pop histories share a key.
        let mut a = ProtocolState::new(4);
        a.record_arrival(real(0, MemOpKind::Load, 1, 0));

        let mut b = ProtocolState::new(4);
        b.record_arrival(real(0, MemOpKind::Load, 0, 0));
        b.queue.pop_head();
        b.record_arrival(real(0, MemOpKind::Load, 1, 0));
        b.arrived.remove(&0);

        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn key_is_arrival_order_canonical() {
        // The same multiset of records, arrived in different orders, shares
        // one key — and therefore one fingerprint word stream.
        let mut a = ProtocolState::new(4);
        a.record_arrival(real(0, MemOpKind::Load, 0, 0));
        a.record_arrival(real(1, MemOpKind::Store, 0, 1));

        let mut b = ProtocolState::new(4);
        b.record_arrival(real(1, MemOpKind::Store, 0, 1));
        b.record_arrival(real(0, MemOpKind::Load, 0, 0));

        assert_eq!(a.key(), b.key());
        let mut wa = Vec::new();
        let mut wb = Vec::new();
        a.key().fold_words(|w| wa.push(w));
        b.key().fold_words(|w| wb.push(w));
        assert_eq!(wa, wb);
        assert!(!wa.is_empty());
    }
}
