//! The PreVV memory controller: premature execution + value validation.
//!
//! This component replaces the LSQ behind the same
//! [`MemoryInterface`](prevv_ir::MemoryInterface). Its operation per the
//! paper:
//!
//! * **Premature stage** (§III): loads issue to RAM the moment their address
//!   arrives — no ordering checks, no allocation; their (possibly wrong)
//!   results flow downstream immediately. Stores are buffered, never touching
//!   RAM prematurely.
//! * **Validation stage** (§III, §IV-C): every completed operation is turned
//!   into a [`PrematureRecord`] and validated by the [`Arbiter`] against the
//!   premature queue before being appended. A violation posts a squash on
//!   the [`SquashBus`]; the engine flushes the pipeline and the iteration
//!   source replays from the first bad iteration.
//! * **Retirement** (§IV-B): a record retires once every operation of
//!   strictly earlier iterations has arrived (really or fakely) — tracked by
//!   the completion *frontier* — because only those could still flag it.
//!   Retired stores commit to RAM strictly in `(iteration, ROM-sequence)`
//!   order, which preserves WAW ordering; WAR hazards cannot occur at all
//!   because stores never write early.
//! * **Fake tokens** (§V-C): guarded ops whose guard was false deliver a
//!   fake record that advances the frontier without validating, preventing
//!   the queue-overflow deadlock.
//! * **Backpressure** (Fig. 4c): a full queue stalls arrivals, which stalls
//!   the ports, which stalls the pipeline — exactly the `depth_q` trade-off
//!   the sizing experiments sweep.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use prevv_dataflow::{Component, Ports, Signals, SquashBus, Tag, Token};
use prevv_ir::{MemOpKind, MemoryInterface};
use prevv_mem::{shared, DelayLine, PortIo, Ram, SharedRam};

use crate::arbiter::{Arbiter, Verdict, Violation};
use crate::config::PrevvConfig;
use crate::protocol::{CommitStep, ProtocolState};
use crate::record::PrematureRecord;

/// Aggregate statistics of a PreVV run, shared with the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrevvStats {
    /// Squashes requested by the arbiter.
    pub squashes: u64,
    /// Iterations replayed (approximate: distance from the squash point to
    /// the newest iteration seen at that moment).
    pub replayed_iters: u64,
    /// Arrivals validated.
    pub validations: u64,
    /// Queue records walked during validations.
    pub comparisons: u64,
    /// Violations detected.
    pub violations: u64,
    /// Loads satisfied by forwarding (forwarding mode only).
    pub forwards: u64,
    /// Fake tokens processed.
    pub fakes: u64,
    /// Peak premature-queue occupancy.
    pub queue_high_water: usize,
    /// Cycles an arrival stalled because the queue was full (Fig. 4c).
    pub queue_full_stalls: u64,
    /// Cycles a load was held back by the livelock guard.
    pub conservative_holds: u64,
    /// Cycles a load was held back by the dependence predictor.
    pub predictor_holds: u64,
    /// Dependence-predictor entries learned.
    pub predictions_learned: u64,
    /// RAM reads issued.
    pub ram_reads: u64,
    /// Stores committed to RAM.
    pub ram_writes: u64,
}

/// Shared handle to the statistics, readable after simulation.
pub type SharedPrevvStats = Rc<RefCell<PrevvStats>>;

/// One squash, as recorded in the controller's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquashEvent {
    /// Controller cycle at which the violation was detected.
    pub cycle: u64,
    /// First replayed iteration.
    pub from_iter: u64,
    /// Load port that consumed stale data.
    pub load_port: usize,
    /// Store port it raced.
    pub store_port: usize,
    /// Iteration distance of the race.
    pub distance: u64,
}

/// Shared handle to the squash event log.
pub type SharedSquashLog = Rc<RefCell<Vec<SquashEvent>>>;

/// Errors raised when constructing a PreVV controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrevvError {
    /// `depth_q` cannot hold one iteration's operations: the completion
    /// frontier could never advance and the pipeline would deadlock.
    QueueTooShallow {
        /// Memory operations per iteration.
        needed: usize,
        /// Configured `depth_q`.
        depth: usize,
    },
}

impl std::fmt::Display for PrevvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrevvError::QueueTooShallow { needed, depth } => write!(
                f,
                "premature queue depth {depth} cannot hold one iteration's {needed} memory ops"
            ),
        }
    }
}

impl std::error::Error for PrevvError {}

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    port: usize,
    addr: usize,
    seq: u32,
    tag: Tag,
}

/// The PreVV controller component.
#[derive(Debug)]
pub struct PrevvMemory {
    io: PortIo,
    ram: SharedRam,
    config: PrevvConfig,
    bus: SquashBus,
    /// The pure protocol state machine: premature queue, frontier, commit
    /// cursor, and admission reservation — the exact transition functions
    /// the `prevv-analyze` model checker explores (see `protocol.rs`).
    protocol: ProtocolState,
    arbiter: Arbiter,
    reads: DelayLine<PendingLoad>,
    /// Round-robin start port for input processing fairness.
    rr_start: usize,
    /// ROM-sequence numbers of the store ports, ascending.
    store_seqs: Vec<u32>,
    ports_per_iter: u32,
    /// Iterations under the livelock guard: their loads wait until all
    /// older stores committed.
    conservative: HashSet<u64>,
    /// Memory dependence predictor (store-set style, cf. the paper's
    /// reference [3]): after a violation, the racing load port waits for
    /// each predicted store port's op of `iter - distance` to *arrive*
    /// before issuing; the queue bypass then forwards the value, so the
    /// same race cannot squash twice. A load port may race several store
    /// ports (e.g. a guarded store at distance 0 plus its own statement's
    /// store at distance 1), so the full set is kept.
    predictor: HashMap<usize, HashMap<usize, u64>>,

    squash_blame: HashMap<u64, u32>,
    pending_squash: Option<u64>,
    max_arrived_iter: u64,
    stats: SharedPrevvStats,
    local: PrevvStats,
    log: SharedSquashLog,
    /// Cycle counter + env-gated tracing (`PREVV_DEBUG=1`).
    cycles_seen: u64,
    trace: bool,
    /// Did the last commit mutate the io adapter — the only state `eval`
    /// reads? Backs [`Component::eval_invalidated`]: a cycle that merely
    /// ticks the RAM delay line is progress for the watchdog but cannot
    /// change any wire, so the event scheduler skips re-evaluating us.
    eval_dirty: bool,
    /// Do the commit/retire cursors still have work (a commit-eligible
    /// store blocked on write bandwidth, or a retirement budget that ran
    /// out)? A quiet cycle may only skip the protocol pipeline when false.
    backlog: bool,
    /// Stall-counter deltas `(queue_full, predictor, conservative)` of the
    /// last fully-stalled slow cycle — one where the pipeline admitted,
    /// completed, committed, and retired nothing. While no channel fires,
    /// no read completes, and no backlog or squash appears, every
    /// hold-relevant input to `process_inputs` is provably unchanged, so
    /// the next cycle's slow path would recompute exactly these deltas;
    /// the fast path replays them instead of re-deriving each hold (which
    /// costs predictor probes and premature-queue scans per cycle).
    /// Invalidated by any cycle that moves state, and by `flush`.
    hold_replay: Option<(u64, u64, u64)>,
}

impl PrevvMemory {
    /// Creates the controller over a fresh RAM initialized from the
    /// interface's array images.
    ///
    /// The `bus` must be the synthesized kernel's squash bus (shared with
    /// its iteration source) — squashes rewind that source.
    ///
    /// # Errors
    ///
    /// Returns [`PrevvError::QueueTooShallow`] when `depth_q` is smaller
    /// than the number of memory operations per iteration.
    pub fn new(
        iface: MemoryInterface,
        config: PrevvConfig,
        bus: SquashBus,
    ) -> Result<(Self, SharedRam, SharedPrevvStats), PrevvError> {
        if config.depth < iface.ports.len() {
            return Err(PrevvError::QueueTooShallow {
                needed: iface.ports.len(),
                depth: config.depth,
            });
        }
        let ram = shared(Ram::new(iface.initial_ram()));
        let stats = Rc::new(RefCell::new(PrevvStats::default()));
        // Runtime validation always covers the full ambiguous set; the §V-B
        // pair reduction is an area-model concern (see DESIGN.md §4).
        let validated = iface.ambiguous_ops();
        let store_seqs: Vec<u32> = iface
            .ports
            .iter()
            .filter(|p| p.is_store())
            .map(|p| p.op.seq)
            .collect();
        let ports_per_iter = iface.ports.len() as u32;
        let depth = config.depth;
        let forwarding = config.forwarding;
        Ok((
            PrevvMemory {
                // Deeper input FIFOs than the LSQ default: early-arriving
                // store *address* tokens are what lets the address-qualified
                // predictor hold release (paper Fig. 3's input FIFO, sized
                // for address visibility).
                io: PortIo::with_capacity(iface, 16),
                ram: ram.clone(),
                config,
                bus,
                protocol: ProtocolState::new(depth),
                arbiter: Arbiter::new(validated, forwarding),
                reads: DelayLine::new(),
                rr_start: 0,
                store_seqs,
                ports_per_iter,
                conservative: HashSet::new(),
                predictor: HashMap::new(),
                squash_blame: HashMap::new(),
                pending_squash: None,
                max_arrived_iter: 0,
                stats: stats.clone(),
                local: PrevvStats::default(),
                log: Rc::new(RefCell::new(Vec::new())),
                cycles_seen: 0,
                trace: std::env::var_os("PREVV_DEBUG").is_some(),
                eval_dirty: true,
                backlog: true,
                hold_replay: None,
            },
            ram,
            stats,
        ))
    }

    /// The premature queue's current occupancy (for sizing experiments).
    pub fn queue_len(&self) -> usize {
        self.protocol.queue.len()
    }

    /// Shared handle to the squash event log: every violation the arbiter
    /// detects, with the racing ports and distance — the raw material for
    /// squash-rate analysis and dependence-predictor studies.
    pub fn squash_log(&self) -> SharedSquashLog {
        self.log.clone()
    }

    /// A human-readable snapshot of the controller state, for debugging
    /// stuck pipelines.
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "frontier={} next_commit={} free={} reads_inflight={}",
            self.protocol.frontier,
            self.protocol.next_commit,
            self.free_slots(),
            self.reads.len()
        );
        let _ = writeln!(s, "predictor={:?}", self.predictor);
        let _ = writeln!(s, "arrived={:?}", self.protocol.arrived);
        let _ = write!(s, "queue: ");
        for r in self.protocol.queue.iter() {
            let _ = write!(
                s,
                "[p{} i{} s{} {:?}{}{}] ",
                r.port,
                r.iter,
                r.seq,
                r.kind,
                if r.fake { " fake" } else { "" },
                if r.committed { " C" } else { "" }
            );
        }
        s
    }

    fn free_slots(&self) -> usize {
        self.protocol.free_slots(self.reads.len())
    }

    /// Deadlock-free admission (see [`ProtocolState::can_admit`]): loads in
    /// flight to RAM hold reservations too.
    fn can_admit(&self, iter: u64) -> bool {
        self.protocol
            .can_admit(iter, self.ports_per_iter, self.reads.len())
    }

    fn note_admitted(&mut self, iter: u64) {
        self.protocol.note_admitted(iter);
    }

    /// Validates, applies the verdict, inserts, and counts one arrival.
    fn insert(&mut self, mut rec: PrematureRecord) {
        match self.arbiter.validate(&self.protocol.queue, &rec) {
            Verdict::Clean => {}
            Verdict::Forward(v) => {
                rec.value = v;
            }
            Verdict::Squash(v) => {
                self.log.borrow_mut().push(SquashEvent {
                    cycle: self.cycles_seen,
                    from_iter: v.from_iter,
                    load_port: v.load_port,
                    store_port: v.store_port,
                    distance: v.distance,
                });
                if self.trace {
                    eprintln!(
                        "SQUASH @{} from={} load_port={} store_port={} d={} arriving=[p{} i{} s{} {:?} a{:?} v{}]\n{}",
                        self.cycles_seen, v.from_iter, v.load_port, v.store_port, v.distance,
                        rec.port, rec.iter, rec.seq, rec.kind, rec.addr, rec.value,
                        self.debug_snapshot()
                    );
                }
                self.learn(v);
                self.pending_squash = Some(
                    self.pending_squash
                        .map_or(v.from_iter, |f| f.min(v.from_iter)),
                );
            }
        }

        if rec.fake {
            self.local.fakes += 1;
        }
        if rec.kind == MemOpKind::Load && !rec.fake {
            // Deliver the (premature) result downstream now.
            self.io
                .push_result(rec.port, Token::tagged(rec.value, rec.tag));
        }
        self.max_arrived_iter = self.max_arrived_iter.max(rec.iter);
        self.protocol.record_arrival(rec);
    }

    fn process_read_completions(&mut self) -> u32 {
        let completed = self.reads.tick();
        let n = completed.len() as u32;
        for p in completed {
            // Sample RAM at completion: every committed store is, by the
            // frontier invariant, older than this load, so the sample is
            // either exactly right or stale-but-validated-against-a-resident
            // store.
            let value = self.ram.borrow_mut().read(p.addr);
            let rec = PrematureRecord::real(p.port, MemOpKind::Load, p.tag, p.seq, p.addr, value);
            self.insert(rec);
        }
        n
    }

    /// Records a violation in the dependence predictor. When the same load
    /// port races the same store port at varying distances, the *minimum*
    /// distance is kept: per-port arrivals are (nearly) iteration-ordered,
    /// so waiting for the closest store implies the farther ones arrived
    /// too.
    fn learn(&mut self, v: Violation) {
        let entry = self
            .predictor
            .entry(v.load_port)
            .or_default()
            .entry(v.store_port)
            .or_insert(v.distance);
        *entry = (*entry).min(v.distance);
        self.local.predictions_learned += 1;
    }

    /// Predictor hold: should this load (whose resolved address is `addr`)
    /// wait for the predicted store? Address-qualified: store address
    /// tokens arrive well before store data, so once the predicted store's
    /// address is visible and differs from the load's, the load proceeds
    /// immediately — only true aliases serialize (the discipline an LSQ
    /// enforces with its CAM, recovered here with one learned entry).
    fn predictor_holds(&self, port: usize, iter: u64, addr: usize) -> bool {
        let Some(deps) = self.predictor.get(&port) else {
            return false;
        };
        deps.iter().any(|(&store_port, &distance)| {
            if iter < distance {
                return false;
            }
            let needed = iter - distance;
            if self.port_op_arrived(store_port, needed) {
                return false; // store arrived: the queue bypass handles it
            }
            match self.io.find_addr(store_port, needed) {
                // Address announced and different: provably no conflict.
                Some(t) => self.io.resolve(store_port, t.value) == addr,
                // Address not visible yet: conservatively hold.
                None => true,
            }
        })
    }

    /// Exact per-port arrival check (see [`ProtocolState::port_op_arrived`]).
    fn port_op_arrived(&self, port: usize, iter: u64) -> bool {
        self.protocol.port_op_arrived(port, iter)
    }

    /// Issue-time bypass probe (see [`ProtocolState::resident_bypass`]):
    /// saves the RAM round-trip (and its port bandwidth) whenever the
    /// producer store has already arrived — the latency equivalent of the
    /// LSQ's store-to-load forwarding.
    fn resident_bypass(
        &self,
        addr: usize,
        order: (u64, u32),
    ) -> Option<(prevv_dataflow::Value, u64)> {
        self.protocol.resident_bypass(addr, order)
    }

    /// Iteration of the first uncommitted store slot.
    fn commit_iter(&self) -> u64 {
        self.protocol.commit_iter(self.store_seqs.len())
    }

    fn process_inputs(&mut self, mut budget: u32) {
        let mut read_budget = self.config.timing.read_ports;
        let n = self.io.port_count();
        if n == 0 {
            return;
        }
        self.rr_start = (self.rr_start + 1) % n;
        for k in 0..n {
            let p = (self.rr_start + k) % n;
            if budget == 0 {
                break;
            }
            // Fake tokens (either-or with the real arrival per iteration).
            while budget > 0 {
                let Some(&f) = self.io.peek_fake(p) else {
                    break;
                };

                if !self.can_admit(f.tag.iter) {
                    self.local.queue_full_stalls += 1;
                    break;
                }
                self.note_admitted(f.tag.iter);
                self.io.take_fake(p).expect("peeked");
                let op = &self.io.port(p).op;
                let (kind, seq) = (op.kind, op.seq);
                if kind == MemOpKind::Load {
                    // Fake loads still owe a dummy token downstream.
                    self.io.push_result(p, Token::tagged(0, f.tag));
                }
                self.insert(PrematureRecord::fake(p, kind, f.tag, seq));
                budget -= 1;
            }
            if self.io.port(p).is_load() {
                // Multiple early exits below; silence clippy's while-let
                // suggestion, which cannot express them.
                #[allow(clippy::while_let_loop)]
                loop {
                    let Some(&a) = self.io.peek_addr(p) else {
                        break;
                    };
                    let addr = self.io.resolve(p, a.value);
                    if self.predictor_holds(p, a.tag.iter, addr) {
                        // A previous squash taught us this load races a
                        // specific store: wait for that store to arrive so
                        // the queue bypass can forward its value.
                        self.local.predictor_holds += 1;
                        break;
                    }
                    if self.conservative.contains(&a.tag.iter) && self.commit_iter() < a.tag.iter {
                        // Livelock guard: wait until all older stores have
                        // committed before re-reading.
                        self.local.conservative_holds += 1;
                        break;
                    }
                    if !self.can_admit(a.tag.iter) {
                        self.local.queue_full_stalls += 1;
                        break;
                    }
                    let seq = self.io.port(p).op.seq;
                    // Same-iteration bypass is unconditional (see the
                    // arbiter's intra-iteration forwarding note); the
                    // cross-iteration bypass is the `forwarding` option.
                    let bypass = self
                        .resident_bypass(addr, (a.tag.iter, seq))
                        .filter(|&(_, s_iter)| self.config.forwarding || s_iter == a.tag.iter);
                    {
                        if let Some((v, _)) = bypass {
                            // Zero-RAM forwarding from the premature queue.
                            if budget == 0 {
                                break;
                            }
                            self.note_admitted(a.tag.iter);
                            self.io.take_addr(p).expect("peeked");
                            self.insert(PrematureRecord::real(
                                p,
                                MemOpKind::Load,
                                a.tag,
                                seq,
                                addr,
                                v,
                            ));
                            self.local.forwards += 1;
                            budget -= 1;
                            continue;
                        }
                    }
                    if read_budget == 0 {
                        break;
                    }
                    self.note_admitted(a.tag.iter);
                    self.io.take_addr(p).expect("peeked");
                    self.reads.push(
                        self.config.timing.read_latency,
                        PendingLoad {
                            port: p,
                            addr,
                            seq,
                            tag: a.tag,
                        },
                    );
                    self.local.ram_reads += 1;
                    read_budget -= 1;
                }
            } else {
                while budget > 0 {
                    let (Some(&a), Some(&d)) = (self.io.peek_addr(p), self.io.peek_data(p)) else {
                        break;
                    };
                    debug_assert_eq!(a.tag.iter, d.tag.iter, "store streams stay paired");
                    if !self.can_admit(a.tag.iter) {
                        self.local.queue_full_stalls += 1;
                        break;
                    }
                    self.note_admitted(a.tag.iter);
                    self.io.take_addr(p).expect("peeked");
                    self.io.take_data(p).expect("peeked");
                    let addr = self.io.resolve(p, a.value);
                    let seq = self.io.port(p).op.seq;
                    self.insert(PrematureRecord::real(
                        p,
                        MemOpKind::Store,
                        a.tag,
                        seq,
                        addr,
                        d.value,
                    ));
                    budget -= 1;
                }
            }
        }
    }

    fn advance_frontier(&mut self) {
        // Never advance past a pending squash point: the iterations at and
        // beyond it are about to be flushed and replayed, so they must not
        // become retire- or commit-eligible this cycle.
        let cap = self.pending_squash.unwrap_or(u64::MAX);
        self.protocol.advance_frontier(self.ports_per_iter, cap);
    }

    fn commit_stores(&mut self) {
        let mut budget = self.config.timing.write_ports;
        loop {
            match self.protocol.commit_step(&self.store_seqs, budget > 0) {
                CommitStep::Write { addr, value } => {
                    self.ram.borrow_mut().write(addr, value);
                    self.local.ram_writes += 1;
                    budget -= 1;
                }
                // A fake store consumes its commit slot without touching RAM
                // (and without write bandwidth); marking it committed lets
                // the head retire it in order.
                CommitStep::Fake => {}
                CommitStep::Blocked => break,
            }
        }
    }

    fn retire(&mut self) -> usize {
        self.protocol.retire(self.config.retire_per_cycle as usize)
    }

    /// Records whether the commit/retire cursors still have work that a
    /// quiet cycle must not skip: a commit-eligible store slot remains
    /// (write bandwidth ran out this cycle), or retirement consumed its
    /// whole budget (more records may be retirable next cycle).
    fn note_backlog(&mut self, retired: usize) {
        self.backlog = self.protocol.commit_pending(self.store_seqs.len())
            || retired >= self.config.retire_per_cycle as usize;
    }

    fn post_squash(&mut self) {
        let Some(from) = self.pending_squash.take() else {
            return;
        };
        self.bus.post(from);
        self.local.squashes += 1;
        self.local.replayed_iters += (self.max_arrived_iter + 1).saturating_sub(from);
        let blame = self.squash_blame.entry(from).or_insert(0);
        *blame += 1;
        if *blame >= self.config.livelock_threshold {
            self.conservative.insert(from);
        }
    }

    fn publish_stats(&mut self) {
        let a = self.arbiter.stats();
        let mut s = self.local;
        s.validations = a.validations;
        s.comparisons = a.comparisons;
        s.violations = a.violations;
        // Forwards = issue-time queue bypasses plus arbiter-level forwards.
        s.forwards = a.forwards + self.local.forwards;
        s.queue_high_water = self.protocol.queue.high_water();
        *self.stats.borrow_mut() = s;
    }
}

impl Component for PrevvMemory {
    fn type_name(&self) -> &'static str {
        "prevv_memory"
    }

    fn ports(&self) -> Ports {
        self.io.channel_ports()
    }

    fn eval(&self, sig: &mut Signals) {
        self.io.eval(sig);
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        // Changed-signal for the scheduler/watchdog: io queue mutations, RAM
        // reads in flight (the delay line ticks), or any protocol cursor /
        // queue motion. Counters and the stats mirror are bookkeeping and
        // must not count, or a wedged circuit would never trip the watchdog.
        let ticking = !self.reads.is_empty();

        // Quiet-cycle fast paths: none of our channels fired and no squash
        // or commit/retire backlog is pending. Two tiers: (a) the input
        // FIFOs are empty, so only the RAM delay line can move; (b) inputs
        // are buffered but every head token proved held on the last slow
        // cycle (`hold_replay`) and nothing a hold reads has changed since,
        // so the stall counters are replayed instead of re-derived. Both
        // tests are pure functions of the fixpoint wires and committed
        // controller state, so both schedulers take the same path on the
        // same cycle.
        if self.pending_squash.is_none() && !self.backlog && !self.trace && !self.io.any_fired(sig)
        {
            let quiet_inputs = !self.io.has_pending_inputs();
            if (quiet_inputs || self.hold_replay.is_some()) && !self.reads.due() {
                // Keep the port round-robin in lockstep with the slow path
                // (process_inputs rotates once per commit).
                let n = self.io.port_count();
                if n > 0 {
                    self.rr_start = (self.rr_start + 1) % n;
                }
                self.reads.tick_quiet();
                self.cycles_seen += 1;
                if !quiet_inputs {
                    let (qf, ph, ch) = self.hold_replay.expect("guarded above");
                    self.local.queue_full_stalls += qf;
                    self.local.predictor_holds += ph;
                    self.local.conservative_holds += ch;
                    // The mirror is synced by every counter-moving path, so
                    // patching the three hold counters is equivalent to (and
                    // much cheaper than) a full publish.
                    let mut s = self.stats.borrow_mut();
                    s.queue_full_stalls = self.local.queue_full_stalls;
                    s.predictor_holds = self.local.predictor_holds;
                    s.conservative_holds = self.local.conservative_holds;
                }
                self.eval_dirty = false;
                // Exactly the slow path's verdict for this cycle: counters
                // and the stats mirror moved, but only the delay line is
                // watchdog progress.
                return ticking;
            }
            if quiet_inputs {
                // Completions are due (each pushes a result into the io
                // adapter); run the pipeline on them. There are no pending
                // inputs, so process_inputs stays a no-op and is skipped.
                let n = self.io.port_count();
                if n > 0 {
                    self.rr_start = (self.rr_start + 1) % n;
                }
                self.cycles_seen += 1;
                self.process_read_completions();
                self.advance_frontier();
                self.commit_stores();
                let retired = self.retire();
                self.note_backlog(retired);
                self.post_squash();
                self.publish_stats();
                self.hold_replay = None;
                self.eval_dirty = self.io.take_dirty();
                return true;
            }
        }

        let stalls = (
            self.local.queue_full_stalls,
            self.local.predictor_holds,
            self.local.conservative_holds,
        );
        let proto = (
            self.protocol.frontier,
            self.protocol.next_commit,
            self.protocol.queue.len(),
            self.pending_squash,
        );
        self.io.commit_io(sig);
        // PreVV needs no group allocation: drain and ignore the stream.
        while self.io.take_alloc().is_some() {}

        let used = self.process_read_completions();
        let budget = self.config.validations_per_cycle.saturating_sub(used);
        self.process_inputs(budget);
        self.advance_frontier();
        self.commit_stores();
        let retired = self.retire();
        self.note_backlog(retired);
        self.post_squash();
        self.publish_stats();
        self.cycles_seen += 1;
        if self.trace && self.cycles_seen.is_multiple_of(512) {
            eprintln!(
                "--- prevv @ {} commits ---\n{}",
                self.cycles_seen,
                self.debug_snapshot()
            );
        }

        self.eval_dirty = self.io.take_dirty();
        let proto_now = (
            self.protocol.frontier,
            self.protocol.next_commit,
            self.protocol.queue.len(),
            self.pending_squash,
        );
        // A fully-stalled cycle — nothing admitted, completed, committed,
        // retired, or squashed — deterministically recomputes the same
        // stall-counter deltas next cycle (until some channel fires, a read
        // completes, or a backlog appears, all of which the fast-path guard
        // watches). Cache the deltas so those cycles can be replayed.
        let moved =
            self.eval_dirty || used > 0 || retired > 0 || self.backlog || proto != proto_now;
        self.hold_replay = if moved {
            None
        } else {
            Some((
                self.local.queue_full_stalls - stalls.0,
                self.local.predictor_holds - stalls.1,
                self.local.conservative_holds - stalls.2,
            ))
        };
        self.eval_dirty || ticking || !self.reads.is_empty() || proto != proto_now
    }

    fn flush(&mut self, from_iter: u64) {
        self.io.flush(from_iter);
        self.reads.flush_if(|p| p.tag.iter >= from_iter);
        // frontier <= from_iter and next_commit target < frontier are
        // invariants (squashes never reach committed state), so neither
        // cursor moves (asserted inside the protocol flush).
        self.protocol.flush(from_iter);
        // A flush rewrites queues behind the fast-path bookkeeping's back:
        // force the next commit down the full pipeline.
        self.backlog = true;
        self.eval_dirty = true;
        self.hold_replay = None;
    }

    fn eval_invalidated(&self) -> bool {
        self.eval_dirty
    }

    fn is_idle(&self) -> bool {
        self.io.is_idle() && self.protocol.queue.is_empty() && self.reads.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.io.occupancy() + self.protocol.queue.len() + self.reads.len()
    }

    fn capacity(&self) -> usize {
        self.config.depth
    }

    fn latency(&self) -> u32 {
        // A load's best case short of a queue bypass: the RAM round-trip
        // plus the arrival-processing commit that pushes its result.
        self.config.timing.read_latency + 1
    }
}
