//! The arbiter: premature value validation (paper §III, Eq. 2–5, and §IV-C).
//!
//! On every arrival (the paper's LMerge/SMerge output) the arbiter walks the
//! premature queue head to tail and applies the violation test: an
//! earlier-iteration operation of the opposite kind at the same index with a
//! *different value* proves that the later operation consumed stale data, so
//! the pipeline behind it must be squashed. Ties on the iteration number are
//! broken with the order-ROM sequence numbers, as the paper prescribes.
//!
//! Two readings beyond the paper's literal text are implemented (see
//! DESIGN.md §4):
//!
//! * **Symmetric check** — arrivals are unordered, so an arriving *load*
//!   must also be compared against resident earlier-iteration stores
//!   (otherwise a load arriving after its conflicting store would never be
//!   validated and the scheme would be unsound).
//! * **Youngest-store matching** — a load is compared only against the
//!   youngest older store to the same address: that store's value is what
//!   the load should have observed. Comparing against every older store
//!   would raise false squashes when the same address is written twice.
//!
//! Note what is *not* here: WAR hazards cannot occur (premature stores never
//! touch RAM before commit), and WAW hazards are handled by the in-order
//! commit cursor, so only RAW validation logic exists — one comparator
//! walking a FIFO instead of the LSQ's per-entry CAM.

use std::collections::HashSet;

use prevv_dataflow::Value;
use prevv_ir::MemOpKind;

use crate::queue::PrematureQueue;
use crate::record::PrematureRecord;

/// A detected violation: which iteration must replay, and which load/store
/// port pair raced (so the controller's dependence predictor can prevent
/// the same race after the replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// First mis-speculated iteration.
    pub from_iter: u64,
    /// Port of the load that consumed stale data.
    pub load_port: usize,
    /// Port of the store it should have observed.
    pub store_port: usize,
    /// Iteration distance `load.iter - store.iter` (0 = same iteration,
    /// ordered by the ROM sequence).
    pub distance: u64,
}

/// Outcome of validating one arriving operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No violation: all compared values matched (or nothing to compare).
    Clean,
    /// Forwarding mode only: the arriving load should use this value (from
    /// the youngest older resident store) instead of its premature one.
    Forward(Value),
    /// A violation was detected: squash and replay.
    Squash(Violation),
}

impl Verdict {
    /// The squash restart iteration, if this verdict is a squash.
    pub fn squash_from(&self) -> Option<u64> {
        match self {
            Verdict::Squash(v) => Some(v.from_iter),
            _ => None,
        }
    }
}

/// Counters describing the arbiter's work (the paper's "search burden").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Arrivals validated.
    pub validations: u64,
    /// Queue records examined across all validations.
    pub comparisons: u64,
    /// Violations found (each triggers one squash request).
    pub violations: u64,
    /// Loads satisfied by forwarding (forwarding mode only).
    pub forwards: u64,
    /// Arrivals whose validation was skipped because the port is not in any
    /// ambiguous pair (pair-reduction benefit, paper §V-B).
    pub skipped: u64,
}

/// The validation engine.
#[derive(Debug, Clone)]
pub struct Arbiter {
    /// Ports whose arrivals trigger a validation search. Ports outside every
    /// ambiguous pair are exempt (they cannot conflict, by dependence
    /// analysis), which is the §V-B dimension reduction.
    validated_ports: HashSet<usize>,
    /// Forward from resident stores instead of squashing (ablation option).
    forwarding: bool,
    stats: ArbiterStats,
}

impl Arbiter {
    /// Creates an arbiter validating the given ports.
    pub fn new(validated_ports: HashSet<usize>, forwarding: bool) -> Self {
        Arbiter {
            validated_ports,
            forwarding,
            stats: ArbiterStats::default(),
        }
    }

    /// Work counters.
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// Is this port's traffic validated?
    pub fn validates(&self, port: usize) -> bool {
        self.validated_ports.contains(&port)
    }

    /// Validates `arriving` against the resident queue (which must not yet
    /// contain it). Fake records never trigger violations — their only role
    /// is advancing retirement (paper §V-C).
    pub fn validate(&mut self, queue: &PrematureQueue, arriving: &PrematureRecord) -> Verdict {
        if arriving.fake {
            return Verdict::Clean;
        }
        if !self.validated_ports.contains(&arriving.port) {
            self.stats.skipped += 1;
            return Verdict::Clean;
        }
        self.stats.validations += 1;
        self.stats.comparisons += queue.len() as u64;
        let verdict = self.verdict(queue, arriving);
        match verdict {
            Verdict::Squash { .. } => self.stats.violations += 1,
            Verdict::Forward(_) => self.stats.forwards += 1,
            Verdict::Clean => {}
        }
        verdict
    }

    /// The pure violation test (paper Eq. 2–5): the verdict for `arriving`
    /// against the resident queue, with no statistics, no port filter and no
    /// fake shortcut — exactly the comparator network, usable by callers
    /// (such as the `prevv-analyze` model checker) that enumerate verdicts
    /// without simulating. [`Self::validate`] is the simulator-facing wrapper
    /// that applies the §V-B port exemptions and counts the work.
    ///
    /// # Panics
    ///
    /// Panics if `arriving` is a fake record (fakes carry no address).
    pub fn verdict(&self, queue: &PrematureQueue, arriving: &PrematureRecord) -> Verdict {
        match arriving.kind {
            MemOpKind::Store => self.validate_store(queue, arriving),
            MemOpKind::Load => self.validate_load(queue, arriving),
        }
    }

    /// Paper Eq. 2–5: an arriving store flags every resident
    /// *later*-in-program-order load of the same address whose value differs
    /// — unless another store to that address sits between them (then that
    /// store's own validation governs the load).
    fn validate_store(&self, queue: &PrematureQueue, store: &PrematureRecord) -> Verdict {
        let addr = store.addr.expect("real record");
        let mut worst: Option<Violation> = None;
        for load in queue.iter() {
            if load.fake
                || load.kind != MemOpKind::Load
                || load.addr != Some(addr)
                || load.order() <= store.order()
            {
                continue;
            }
            // Intervening store to the same address between `store` and
            // `load`? Then `load` should observe that one, not `store`.
            let intervened = queue.iter().any(|m| {
                !m.fake
                    && m.kind == MemOpKind::Store
                    && m.addr == Some(addr)
                    && store.order() < m.order()
                    && m.order() < load.order()
            });
            if intervened {
                continue;
            }
            if load.value != store.value && worst.is_none_or(|w| load.iter < w.from_iter) {
                worst = Some(Violation {
                    from_iter: load.iter,
                    load_port: load.port,
                    store_port: store.port,
                    distance: load.iter - store.iter,
                });
            }
        }
        match worst {
            Some(v) => Verdict::Squash(v),
            None => Verdict::Clean,
        }
    }

    /// Symmetric direction: the arriving load is compared against the
    /// youngest resident older store to the same address — the value the
    /// load should have read. In forwarding mode the store's value is handed
    /// to the load instead of squashing.
    fn validate_load(&self, queue: &PrematureQueue, load: &PrematureRecord) -> Verdict {
        let addr = load.addr.expect("real record");
        let youngest = queue
            .iter()
            .filter(|s| {
                !s.fake
                    && s.kind == MemOpKind::Store
                    && s.addr == Some(addr)
                    && s.order() < load.order()
            })
            .max_by_key(|s| s.order());
        match youngest {
            None => Verdict::Clean,
            Some(s) if s.value == load.value => Verdict::Clean,
            Some(s) if self.forwarding => Verdict::Forward(s.value),
            // Same-iteration forwarding is unconditional: a squash replays
            // the whole iteration, which cannot change the intra-iteration
            // arrival order, so squashing a same-iteration mismatch would
            // recur forever (pure value validation is incomplete for
            // intra-iteration RAW; see DESIGN.md §4).
            Some(s) if s.iter == load.iter => Verdict::Forward(s.value),
            Some(s) => Verdict::Squash(Violation {
                from_iter: load.iter,
                load_port: load.port,
                store_port: s.port,
                distance: load.iter - s.iter,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::Tag;

    fn load(iter: u64, seq: u32, addr: usize, value: Value) -> PrematureRecord {
        PrematureRecord::real(0, MemOpKind::Load, Tag::new(iter), seq, addr, value)
    }

    fn store(iter: u64, seq: u32, addr: usize, value: Value) -> PrematureRecord {
        PrematureRecord::real(1, MemOpKind::Store, Tag::new(iter), seq, addr, value)
    }

    fn arbiter() -> Arbiter {
        Arbiter::new([0usize, 1].into_iter().collect(), false)
    }

    #[test]
    fn raw_violation_on_store_arrival() {
        // Paper's C_3^2 / C_5^1 scenario: the later-iteration load executed
        // early with the stale value; the earlier-iteration store arrives
        // and flags it.
        let mut q = PrematureQueue::new(8);
        q.push(load(5, 0, 10, 0)); // read stale 0
        let mut arb = arbiter();
        let v = arb.validate(&q, &store(3, 1, 10, 42));
        assert_eq!(v.squash_from(), Some(5));
        assert_eq!(arb.stats().violations, 1);
        if let Verdict::Squash(viol) = v {
            assert_eq!(viol.load_port, 0);
            assert_eq!(viol.store_port, 1);
            assert_eq!(viol.distance, 2);
        } else {
            panic!("expected squash");
        }
    }

    #[test]
    fn matching_values_are_benign() {
        // Value validation's gift: if the store writes the value the load
        // already read, execution was correct despite the reordering.
        let mut q = PrematureQueue::new(8);
        q.push(load(5, 0, 10, 42));
        let mut arb = arbiter();
        assert_eq!(arb.validate(&q, &store(3, 1, 10, 42)), Verdict::Clean);
    }

    #[test]
    fn different_address_is_clean() {
        let mut q = PrematureQueue::new(8);
        q.push(load(5, 0, 11, 0));
        let mut arb = arbiter();
        assert_eq!(arb.validate(&q, &store(3, 1, 10, 42)), Verdict::Clean);
    }

    #[test]
    fn symmetric_check_flags_late_arriving_load() {
        // The store is already resident; the conflicting load arrives later
        // carrying the stale value it read from RAM.
        let mut q = PrematureQueue::new(8);
        q.push(store(3, 1, 10, 42));
        let mut arb = arbiter();
        let v = arb.validate(&q, &load(5, 0, 10, 0));
        assert_eq!(v.squash_from(), Some(5));
    }

    #[test]
    fn load_compares_against_youngest_older_store_only() {
        // Stores to addr 10 in iterations 2 and 4; a load from iteration 6
        // that read iteration 4's value is CORRECT even though it differs
        // from iteration 2's value.
        let mut q = PrematureQueue::new(8);
        q.push(store(2, 1, 10, 100));
        q.push(store(4, 1, 10, 200));
        let mut arb = arbiter();
        assert_eq!(arb.validate(&q, &load(6, 0, 10, 200)), Verdict::Clean);
        assert_eq!(
            arb.validate(&q, &load(6, 0, 10, 100)).squash_from(),
            Some(6),
            "reading the older store's value is stale"
        );
    }

    #[test]
    fn intervening_store_suppresses_false_squash() {
        // Store(2)=100, store(4)=200 resident... now store(2) arrives while
        // a load(6)=200 is resident: the load read iteration 4's value,
        // which is correct; iteration 2's arrival must not flag it.
        let mut q = PrematureQueue::new(8);
        q.push(store(4, 1, 10, 200));
        q.push(load(6, 0, 10, 200));
        let mut arb = arbiter();
        assert_eq!(arb.validate(&q, &store(2, 1, 10, 100)), Verdict::Clean);
    }

    #[test]
    fn same_iteration_ties_break_on_rom_sequence() {
        // Within one iteration, the order ROM (seq) decides: a load at seq 2
        // must observe the store at seq 1 of the same iteration.
        let mut q = PrematureQueue::new(8);
        q.push(PrematureRecord::real(
            0,
            MemOpKind::Load,
            Tag::new(3),
            2,
            10,
            0,
        ));
        let mut arb = arbiter();
        let st = PrematureRecord::real(1, MemOpKind::Store, Tag::new(3), 1, 10, 9);
        assert_eq!(arb.validate(&q, &st).squash_from(), Some(3));
        // The reverse order (store at seq 2, load at seq 1) is fine: the
        // load legitimately precedes the store.
        let mut q = PrematureQueue::new(8);
        q.push(PrematureRecord::real(
            0,
            MemOpKind::Load,
            Tag::new(3),
            1,
            10,
            0,
        ));
        let st = PrematureRecord::real(1, MemOpKind::Store, Tag::new(3), 2, 10, 9);
        assert_eq!(arb.validate(&q, &st), Verdict::Clean);
    }

    #[test]
    fn fake_records_never_violate() {
        let mut q = PrematureQueue::new(8);
        q.push(load(5, 0, 10, 0));
        let mut arb = arbiter();
        let fake = PrematureRecord::fake(1, MemOpKind::Store, Tag::new(3), 1);
        assert_eq!(arb.validate(&q, &fake), Verdict::Clean);
        // Resident fakes are transparent to real validations.
        q.push(PrematureRecord::fake(1, MemOpKind::Store, Tag::new(4), 1));
        assert_eq!(
            arb.validate(&q, &store(3, 1, 10, 42)).squash_from(),
            Some(5)
        );
    }

    #[test]
    fn unvalidated_ports_skip_the_search() {
        let mut q = PrematureQueue::new(8);
        q.push(load(5, 0, 10, 0));
        let mut arb = Arbiter::new(HashSet::new(), false);
        assert_eq!(arb.validate(&q, &store(3, 1, 10, 42)), Verdict::Clean);
        assert_eq!(arb.stats().skipped, 1);
        assert_eq!(arb.stats().comparisons, 0);
    }

    #[test]
    fn forwarding_mode_hands_over_the_store_value() {
        let mut q = PrematureQueue::new(8);
        q.push(store(3, 1, 10, 42));
        let mut arb = Arbiter::new([0usize, 1].into_iter().collect(), true);
        assert_eq!(arb.validate(&q, &load(5, 0, 10, 0)), Verdict::Forward(42));
        assert_eq!(arb.stats().forwards, 1);
        assert_eq!(arb.stats().violations, 0);
    }

    #[test]
    fn multiple_flagged_loads_squash_from_the_earliest() {
        let mut q = PrematureQueue::new(8);
        q.push(load(7, 0, 10, 0));
        q.push(load(5, 0, 10, 1));
        let mut arb = arbiter();
        assert_eq!(
            arb.validate(&q, &store(3, 1, 10, 42)).squash_from(),
            Some(5)
        );
    }

    #[test]
    fn comparison_count_tracks_queue_walk() {
        let mut q = PrematureQueue::new(8);
        for i in 0..4 {
            q.push(load(i + 10, 0, 99, 0));
        }
        let mut arb = arbiter();
        arb.validate(&q, &store(3, 1, 10, 42));
        assert_eq!(arb.stats().comparisons, 4, "head-to-tail walk");
    }
}
