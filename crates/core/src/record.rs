//! The premature record: the paper's Eq. (1) property assembly.

use prevv_dataflow::{Tag, Value};
use prevv_ir::MemOpKind;

/// The properties saved for every premature operation (paper Eq. 1):
/// `P_m = {iter_m, index_m, value_m, Op_m}`, extended with the
/// intra-iteration sequence number from the order ROM (used to break
/// `iter_m == iter_n` ties, paper §III) and a fake marker (paper §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrematureRecord {
    /// Which static port produced this record.
    pub port: usize,
    /// Iteration number (`iter_m`).
    pub iter: u64,
    /// Program-order sequence within the iteration (the order-ROM tuple).
    pub seq: u32,
    /// Load or store (`Op_m`).
    pub kind: MemOpKind,
    /// Resolved flat RAM address (`index_m`); `None` for fake records.
    pub addr: Option<usize>,
    /// The value read (loads) or to be written (stores) (`value_m`).
    pub value: Value,
    /// Token tag (carries the squash epoch for result delivery).
    pub tag: Tag,
    /// True for fake records sent by untaken guards (paper §V-C).
    pub fake: bool,
    /// Stores only: committed to RAM, awaiting head deallocation.
    pub committed: bool,
}

impl PrematureRecord {
    /// Creates a real (non-fake) record.
    pub fn real(
        port: usize,
        kind: MemOpKind,
        tag: Tag,
        seq: u32,
        addr: usize,
        value: Value,
    ) -> Self {
        PrematureRecord {
            port,
            iter: tag.iter,
            seq,
            kind,
            addr: Some(addr),
            value,
            tag,
            fake: false,
            committed: false,
        }
    }

    /// Creates a fake record for an op suppressed by its guard.
    pub fn fake(port: usize, kind: MemOpKind, tag: Tag, seq: u32) -> Self {
        PrematureRecord {
            port,
            iter: tag.iter,
            seq,
            kind,
            addr: None,
            value: 0,
            tag,
            fake: true,
            committed: false,
        }
    }

    /// Global program-order key.
    pub fn order(&self) -> (u64, u32) {
        (self.iter, self.seq)
    }

    /// True for real stores that have not yet been written back.
    pub fn is_pending_store(&self) -> bool {
        self.kind == MemOpKind::Store && !self.fake && !self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_iteration_major() {
        let a = PrematureRecord::real(0, MemOpKind::Load, Tag::new(2), 5, 0, 0);
        let b = PrematureRecord::real(0, MemOpKind::Store, Tag::new(3), 1, 0, 0);
        assert!(a.order() < b.order());
    }

    #[test]
    fn fake_records_have_no_address() {
        let f = PrematureRecord::fake(1, MemOpKind::Store, Tag::new(4), 2);
        assert!(f.fake);
        assert_eq!(f.addr, None);
        assert!(!f.is_pending_store(), "fake stores never commit");
    }

    #[test]
    fn pending_store_classification() {
        let mut s = PrematureRecord::real(0, MemOpKind::Store, Tag::new(1), 0, 3, 9);
        assert!(s.is_pending_store());
        s.committed = true;
        assert!(!s.is_pending_store());
        let l = PrematureRecord::real(0, MemOpKind::Load, Tag::new(1), 0, 3, 9);
        assert!(!l.is_pending_store());
    }
}
