//! Pair reduction for scalability (paper §V-B, Eq. 11–12).
//!
//! When ambiguous pairs overlap — one operation belongs to several pairs —
//! naively instantiating one arbiter + queue per pair duplicates validation
//! work and multiplies resources (`Com_n = 2^n · Com_1`, Eq. 11). The paper's
//! dimension reduction observes that *consecutive operations of the same
//! kind never form an ambiguous pair with each other*, so within every run
//! of consecutive same-kind ambiguous accesses to an array, validating one
//! representative is sufficient: any violation between a store and any load
//! of the run manifests identically at the representative's validation,
//! because the whole run reads (or writes) between the same pair of
//! surrounding opposite-kind operations.
//!
//! This module computes the representative set; `prevv-area` uses it to
//! price the arbiter, and the controller can restrict validation triggering
//! to it.

use std::collections::{BTreeMap, HashSet};

use prevv_ir::{MemOpKind, MemoryInterface};

/// Result of the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// All ambiguous port ids (before reduction).
    pub ambiguous: HashSet<usize>,
    /// The representative ports whose arrivals must trigger validation.
    pub validated: HashSet<usize>,
}

impl Reduction {
    /// Ports whose validation searches were eliminated.
    pub fn eliminated(&self) -> usize {
        self.ambiguous.len() - self.validated.len()
    }
}

/// Naive complexity of `n` overlapped pairs relative to one (paper Eq. 11).
pub fn naive_complexity(n: u32) -> f64 {
    2f64.powi(n as i32)
}

/// Naive frequency degradation of `n` overlapped pairs (paper Eq. 12:
/// `frq_n = log2(frq_1)` — modeled as a log-factor slowdown).
pub fn naive_frequency_factor(n: u32) -> f64 {
    1.0 / (1.0 + (n as f64).log2().max(0.0))
}

/// Computes the validated representative set for an interface.
///
/// Ambiguous ops are grouped per array and ordered by their program-order
/// sequence number; each maximal run of consecutive same-kind ops keeps one
/// representative:
///
/// * for a run of **loads**, the *first* (earliest) one — it reads before
///   all the others, so any store value it should have seen binds the whole
///   run;
/// * for a run of **stores**, the *last* one — it is the youngest, i.e. the
///   value later loads must observe.
///
/// With `pair_reduction` disabled the validated set equals the ambiguous
/// set.
pub fn reduce(iface: &MemoryInterface, pair_reduction: bool) -> Reduction {
    let ambiguous = iface.ambiguous_ops();
    if !pair_reduction {
        return Reduction {
            validated: ambiguous.clone(),
            ambiguous,
        };
    }
    // Group ambiguous ops per array, ordered by seq.
    let mut per_array: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (pid, port) in iface.ports.iter().enumerate() {
        if ambiguous.contains(&pid) {
            per_array.entry(port.op.array.0).or_default().push(pid);
        }
    }
    let mut validated = HashSet::new();
    for ops in per_array.values() {
        let mut run: Vec<usize> = Vec::new();
        let mut run_kind: Option<MemOpKind> = None;
        let flush_run = |run: &mut Vec<usize>, kind: Option<MemOpKind>| {
            if run.is_empty() {
                return None;
            }
            let rep = match kind.expect("non-empty run has a kind") {
                MemOpKind::Load => run[0],
                MemOpKind::Store => *run.last().expect("non-empty"),
            };
            run.clear();
            Some(rep)
        };
        for &pid in ops {
            let kind = iface.ports[pid].op.kind;
            if run_kind != Some(kind) {
                if let Some(rep) = flush_run(&mut run, run_kind) {
                    validated.insert(rep);
                }
                run_kind = Some(kind);
            }
            run.push(pid);
        }
        if let Some(rep) = flush_run(&mut run, run_kind) {
            validated.insert(rep);
        }
    }
    Reduction {
        ambiguous,
        validated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::LoopLevel;
    use prevv_ir::{synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};

    #[test]
    fn complexity_formulas_match_paper() {
        assert_eq!(naive_complexity(1), 2.0);
        assert_eq!(naive_complexity(3), 8.0);
        assert!(naive_frequency_factor(4) < naive_frequency_factor(1));
    }

    /// Three consecutive ambiguous loads of `a` then the store: the run of
    /// loads collapses to one validated representative.
    #[test]
    fn consecutive_loads_collapse() {
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "runs",
            vec![LoopLevel::upto(4), LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(1))))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(2)))),
            )],
        )
        .expect("valid");
        let s = synthesize(&spec).expect("synth");
        let r = reduce(&s.interface, true);
        assert_eq!(r.ambiguous.len(), 4, "3 loads + 1 store are ambiguous");
        // One representative load + the store.
        assert_eq!(r.validated.len(), 2);
        assert!(r.eliminated() == 2);
        // The representative load is the earliest (seq 0).
        assert!(r.validated.contains(&0));
        // The store is always validated.
        let store_id = s
            .interface
            .ports
            .iter()
            .position(|p| p.is_store())
            .expect("has store");
        assert!(r.validated.contains(&store_id));
    }

    #[test]
    fn disabled_reduction_validates_everything() {
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "runs",
            vec![LoopLevel::upto(4), LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::load(a, Expr::var(0).add(Expr::lit(1)))),
            )],
        )
        .expect("valid");
        let s = synthesize(&spec).expect("synth");
        let r = reduce(&s.interface, false);
        assert_eq!(r.validated, r.ambiguous);
        assert_eq!(r.eliminated(), 0);
    }

    #[test]
    fn independent_arrays_keep_their_own_representatives() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let spec = KernelSpec::new(
            "two",
            vec![LoopLevel::upto(4), LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8), ArrayDecl::zeroed("b", 8)],
            vec![
                Stmt::store(
                    a,
                    Expr::var(0),
                    Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
                ),
                Stmt::store(
                    b,
                    Expr::var(0),
                    Expr::load(b, Expr::var(0)).add(Expr::lit(1)),
                ),
            ],
        )
        .expect("valid");
        let s = synthesize(&spec).expect("synth");
        let r = reduce(&s.interface, true);
        // Each array keeps its load + store representative.
        assert_eq!(r.validated.len(), 4);
    }
}
