//! # prevv-core — premature value validation (the paper's contribution)
//!
//! PreVV eliminates the load-store queue of dynamically scheduled HLS
//! circuits: memory operations execute **prematurely** (fully out of order,
//! results flowing downstream immediately), their `{iter, index, value, op}`
//! properties are buffered in a simple circular **premature queue**, and an
//! **arbiter** validates every arrival by value. A mismatch proves a
//! later-iteration operation consumed stale data; the pipeline behind it is
//! squashed and replayed. Guarded operations send **fake tokens** so the
//! queue always drains (deadlock elimination, paper §V-C).
//!
//! The crate provides:
//!
//! * [`PrematureQueue`] / [`PrematureRecord`] — the paper's Fig. 4 circular
//!   buffer and Eq. 1 property assembly;
//! * [`Arbiter`] — the Eq. 2–5 violation test (with the symmetric check and
//!   youngest-store matching; see DESIGN.md §4);
//! * [`ProtocolState`] — the pure retirement protocol (frontier, in-order
//!   commit, admission reservation, squash flush) as cloneable step
//!   functions, shared verbatim by the simulator and the `prevv-analyze`
//!   bounded model checker;
//! * [`PrevvMemory`] — the drop-in controller replacing
//!   [`prevv_mem::Lsq`] behind the same memory interface;
//! * [`reduce`] — the §V-B pair-reduction analysis (Eq. 11–12);
//! * [`sizing`] — the §V-A matched-pair `depth_q` model (Eq. 6–10).
//!
//! ## Example
//!
//! ```
//! use prevv_dataflow::{Simulator, components::LoopLevel};
//! use prevv_ir::{golden, synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};
//! use prevv_core::{PrevvConfig, PrevvMemory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A loop-carried reduction: hostile to out-of-order memory.
//! let a = ArrayId(0);
//! let spec = KernelSpec::new(
//!     "reduce",
//!     vec![LoopLevel::upto(16)],
//!     vec![ArrayDecl::zeroed("a", 4)],
//!     vec![Stmt::store(a, Expr::lit(0), Expr::load(a, Expr::lit(0)).add(Expr::var(0)))],
//! )?;
//! let mut circuit = synthesize(&spec)?;
//! let (prevv, ram, stats) =
//!     PrevvMemory::new(circuit.interface.clone(), PrevvConfig::prevv16(), circuit.bus.clone())?;
//! circuit.netlist.add("prevv", prevv);
//! let mut sim = Simulator::new(circuit.netlist, circuit.bus)?;
//! sim.run()?;
//! assert_eq!(ram.borrow().image(), golden::execute(&spec).array(a));
//! assert!(stats.borrow().validations > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod config;
mod memory;
pub mod protocol;
mod queue;
mod record;
pub mod reduce;
pub mod sizing;

pub use arbiter::{Arbiter, ArbiterStats, Verdict, Violation};
pub use config::PrevvConfig;
pub use memory::{
    PrevvError, PrevvMemory, PrevvStats, SharedPrevvStats, SharedSquashLog, SquashEvent,
};
pub use protocol::{CommitStep, ProtocolState};
pub use queue::{PrematureQueue, QueueState};
pub use record::PrematureRecord;
