//! The premature queue (paper §IV-B, Fig. 4).
//!
//! A circular buffer of [`PrematureRecord`]s with a head pointer (earliest
//! stored operation) and a tail pointer (most recently stored operation).
//! `depth_q` bounds its capacity: a full queue backpressures the arbiter,
//! which in turn stalls the memory ports (paper Fig. 4c). Unlike the LSQ it
//! replaces, the queue needs **no associative search hardware** — the
//! arbiter walks it sequentially — which is where the LUT savings of
//! Tables I/II come from.

use crate::record::PrematureRecord;
use std::collections::VecDeque;

/// Occupancy states of the circular queue, matching the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueState {
    /// Empty or partially filled without wrap-around: head <= tail
    /// (Fig. 4a).
    Normal,
    /// Partially filled with wrap-around: tail has cycled past the end of
    /// the storage (Fig. 4b).
    WrapAround,
    /// Full: the queue must stall the arbiter (Fig. 4c).
    Full,
}

/// The premature queue.
#[derive(Debug)]
pub struct PrematureQueue {
    slots: VecDeque<PrematureRecord>,
    depth: usize,
    /// Monotone count of pushes, used to derive the physical head/tail
    /// pointer positions of the circular implementation.
    pushes: u64,
    high_water: usize,
}

impl Clone for PrematureQueue {
    fn clone(&self) -> Self {
        PrematureQueue {
            slots: self.slots.clone(),
            depth: self.depth,
            pushes: self.pushes,
            high_water: self.high_water,
        }
    }

    /// Reuses the existing slot storage: the model checker assigns states
    /// into a scratch buffer millions of times, and the derived fallback
    /// (`*self = source.clone()`) would reallocate the ring on every one.
    fn clone_from(&mut self, source: &Self) {
        self.slots.clone_from(&source.slots);
        self.depth = source.depth;
        self.pushes = source.pushes;
        self.high_water = source.high_water;
    }
}

impl PrematureQueue {
    /// Creates a queue of capacity `depth` (the paper's `depth_q`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "premature queue depth must be positive");
        PrematureQueue {
            slots: VecDeque::with_capacity(depth),
            depth,
            pushes: 0,
            high_water: 0,
        }
    }

    /// Configured capacity (`depth_q`).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Records currently stored.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when the queue cannot accept another record.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.depth
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.depth - self.slots.len()
    }

    /// Physical position the tail pointer would have in the circular
    /// implementation.
    pub fn tail_pos(&self) -> usize {
        (self.pushes % self.depth as u64) as usize
    }

    /// Physical position the head pointer would have.
    pub fn head_pos(&self) -> usize {
        (self.tail_pos() + self.depth - self.slots.len()) % self.depth
    }

    /// The occupancy state of Fig. 4.
    pub fn state(&self) -> QueueState {
        if self.is_full() {
            QueueState::Full
        } else if self.head_pos() + self.slots.len() > self.depth {
            QueueState::WrapAround
        } else {
            QueueState::Normal
        }
    }

    /// Appends a record at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; callers must check [`is_full`] first
    /// (the hardware stalls instead).
    ///
    /// [`is_full`]: PrematureQueue::is_full
    pub fn push(&mut self, record: PrematureRecord) {
        assert!(!self.is_full(), "premature queue overflow");
        self.slots.push_back(record);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.slots.len());
    }

    /// The record at the head (earliest stored), if any.
    pub fn head(&self) -> Option<&PrematureRecord> {
        self.slots.front()
    }

    /// Removes and returns the head record.
    pub fn pop_head(&mut self) -> Option<PrematureRecord> {
        self.slots.pop_front()
    }

    /// Removes up to `budget` records satisfying `eligible`, scanning from
    /// the head (a *collapsing* FIFO, like LSQ deallocation). Strict
    /// head-only retirement would deadlock when squash-replay arrivals
    /// interleave iterations: a young record at the head can block retirable
    /// older records behind it while the full queue blocks the young
    /// iteration's remaining arrivals. Returns the number removed.
    pub fn retire_if(
        &mut self,
        mut eligible: impl FnMut(&PrematureRecord) -> bool,
        budget: usize,
    ) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < self.slots.len() && removed < budget {
            if eligible(&self.slots[i]) {
                self.slots.remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Iterates head to tail — the arbiter's validation walk.
    pub fn iter(&self) -> impl Iterator<Item = &PrematureRecord> {
        self.slots.iter()
    }

    /// Mutable iteration (commit marking).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut PrematureRecord> {
        self.slots.iter_mut()
    }

    /// Drops all records of iterations `>= from_iter` (squash flush).
    /// Committed stores are never dropped — the squash controller
    /// guarantees squashes only target iterations newer than any commit.
    pub fn flush(&mut self, from_iter: u64) {
        debug_assert!(
            self.slots
                .iter()
                .all(|r| !(r.committed && r.iter >= from_iter)),
            "squash must never reach a committed store"
        );
        self.slots.retain(|r| r.iter < from_iter);
    }

    /// Maximum occupancy ever reached (for the sizing experiments).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::Tag;
    use prevv_ir::MemOpKind;

    fn rec(iter: u64, seq: u32) -> PrematureRecord {
        PrematureRecord::real(0, MemOpKind::Load, Tag::new(iter), seq, 0, 0)
    }

    #[test]
    fn push_pop_fifo_order() {
        let mut q = PrematureQueue::new(4);
        q.push(rec(0, 0));
        q.push(rec(1, 0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_head().map(|r| r.iter), Some(0));
        assert_eq!(q.pop_head().map(|r| r.iter), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn full_state_matches_fig4c() {
        let mut q = PrematureQueue::new(2);
        assert_eq!(q.state(), QueueState::Normal);
        q.push(rec(0, 0));
        q.push(rec(1, 0));
        assert!(q.is_full());
        assert_eq!(q.state(), QueueState::Full);
        assert_eq!(q.free(), 0);
    }

    #[test]
    fn wrap_around_state_matches_fig4b() {
        let mut q = PrematureQueue::new(4);
        for i in 0..3 {
            q.push(rec(i, 0));
        }
        q.pop_head();
        q.pop_head();
        // head at position 2, two pushes wrap past the end
        q.push(rec(3, 0));
        q.push(rec(4, 0));
        assert_eq!(q.state(), QueueState::WrapAround);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = PrematureQueue::new(1);
        q.push(rec(0, 0));
        q.push(rec(1, 0));
    }

    #[test]
    fn flush_drops_squashed_iterations_only() {
        let mut q = PrematureQueue::new(8);
        for i in 0..6 {
            q.push(rec(i, 0));
        }
        q.flush(3);
        assert_eq!(q.len(), 3);
        assert!(q.iter().all(|r| r.iter < 3));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = PrematureQueue::new(8);
        for i in 0..5 {
            q.push(rec(i, 0));
        }
        q.pop_head();
        q.pop_head();
        assert_eq!(q.high_water(), 5);
        assert_eq!(q.len(), 3);
    }
}
