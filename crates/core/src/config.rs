//! PreVV configuration and presets.

use prevv_mem::MemTiming;

/// Configuration of the PreVV memory controller.
#[derive(Debug, Clone)]
pub struct PrevvConfig {
    /// Premature queue capacity — the paper's `depth_q`. Smaller queues use
    /// fewer resources but stall more (paper §V-A); the paper evaluates 16
    /// and 64.
    pub depth: usize,
    /// RAM timing and port bandwidth.
    pub timing: MemTiming,
    /// Arrivals accepted and validated per cycle. The paper instantiates
    /// one arbiter per ambiguous pair (Fig. 3), so validations proceed in
    /// parallel; the default models eight parallel arbiters.
    pub validations_per_cycle: u32,
    /// Queue-head retirements per cycle.
    pub retire_per_cycle: u32,
    /// Queue bypass: an arriving load whose youngest older store is resident
    /// takes that store's value instead of squashing. Without it, every
    /// short-reuse-distance accumulation (the paper's matrix kernels!)
    /// would squash once per iteration, far above the ~10% cycle overhead
    /// Table II reports — so we treat bypass as part of the architecture and
    /// keep the pure squash-on-mismatch variant as an ablation
    /// (`forwarding = false`).
    pub forwarding: bool,
    /// After this many squashes blamed on a single iteration, its loads are
    /// held back until all older stores have committed — the livelock guard
    /// (DESIGN.md §4.5).
    pub livelock_threshold: u32,
    /// Apply the §V-B pair reduction: only one representative of each run of
    /// consecutive same-kind ambiguous ops triggers validation.
    pub pair_reduction: bool,
}

impl Default for PrevvConfig {
    fn default() -> Self {
        PrevvConfig {
            depth: 16,
            timing: MemTiming::default(),
            validations_per_cycle: 8,
            retire_per_cycle: 8,
            forwarding: true,
            livelock_threshold: 8,
            pair_reduction: true,
        }
    }
}

impl PrevvConfig {
    /// The paper's *PreVV16*: premature queue depth 16.
    pub fn prevv16() -> Self {
        PrevvConfig {
            depth: 16,
            ..Self::default()
        }
    }

    /// The paper's *PreVV64*: premature queue depth 64.
    pub fn prevv64() -> Self {
        PrevvConfig {
            depth: 64,
            ..Self::default()
        }
    }

    /// A preset with an explicit queue depth.
    pub fn with_depth(depth: usize) -> Self {
        PrevvConfig {
            depth,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_depths() {
        assert_eq!(PrevvConfig::prevv16().depth, 16);
        assert_eq!(PrevvConfig::prevv64().depth, 64);
        assert_eq!(PrevvConfig::with_depth(32).depth, 32);
    }

    #[test]
    fn defaults_enable_queue_bypass() {
        let c = PrevvConfig::default();
        assert!(c.forwarding, "queue bypass is part of the architecture");
        assert!(c.pair_reduction);
        assert!(c.livelock_threshold > 0);
    }
}
