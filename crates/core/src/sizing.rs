//! Choosing `depth_q`: the matched-pair model (paper §V-A, Def. 2–3,
//! Eq. 6–10).
//!
//! The paper sizes the premature queue by balancing the average execution
//! time of an ambiguous pair with PreVV against its predecessor's token
//! production rate: a *matched* pair (Def. 2) minimizes stall probability.
//! These are first-order analytical estimates used to pick a starting
//! `depth_q`; the ablation bench sweeps depths empirically around the
//! prediction.

/// Inputs of the matched-pair model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairTiming {
    /// `t_org`: execution time (cycles) of the original computation part of
    /// the pair's dataflow circuit.
    pub t_org: f64,
    /// `P_s`: probability a given iteration of this pair squashes the
    /// pipeline.
    pub squash_probability: f64,
    /// `t_token`: average stall time of a live-out token waiting for the
    /// premature queue.
    pub t_token: f64,
}

impl PairTiming {
    /// Average execution time of an ambiguous pair with PreVV (paper Eq. 6):
    /// `t_p = t_org (2 + P_s)`.
    pub fn pair_time(&self) -> f64 {
        self.t_org * (2.0 + self.squash_probability)
    }

    /// Waiting time of the predecessor for queue depth `depth_q` (paper
    /// Eq. 7): `t_w = t_token / depth_q`.
    pub fn wait_time(&self, depth_q: usize) -> f64 {
        self.t_token / depth_q as f64
    }

    /// The depth that makes the pair *matched* (Def. 2): `t_p = t_w` ⟹
    /// `depth_q = t_token / t_p`, rounded up and clamped to at least 1.
    pub fn matched_depth(&self) -> usize {
        let d = self.t_token / self.pair_time();
        (d.ceil() as usize).max(1)
    }

    /// How unmatched a given depth is: `t_w / t_p` (1.0 = matched; below 1
    /// the queue outpaces the pair, above 1 the pair starves the queue).
    pub fn mismatch(&self, depth_q: usize) -> f64 {
        self.wait_time(depth_q) / self.pair_time()
    }
}

/// Structural spans of two ambiguous pairs (paper Eq. 8–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairPlacement {
    /// `d_mn`: distance in components from the beginning of pair `m` to the
    /// end of pair `n` (Eq. 9).
    pub distance: f64,
    /// `S_m`: maximum components on any path inside pair `m` (Eq. 10).
    pub span_m: f64,
    /// `S_n`: likewise for pair `n`.
    pub span_n: f64,
}

impl PairPlacement {
    /// The independence constraint (Eq. 8): two pairs are independent (no
    /// shared components, no doubled validation) when the distance between
    /// them covers both spans.
    pub fn independent(&self) -> bool {
        self.distance >= self.span_m + self.span_n
    }
}

/// Recommends a queue depth for a kernel given measured (or estimated)
/// squash probability, averaging the matched depths of all pairs and
/// rounding up to the next power of two (hardware-friendly, like the
/// paper's 16/64 presets).
pub fn recommend_depth(pairs: &[PairTiming]) -> usize {
    if pairs.is_empty() {
        return 1;
    }
    let mean: f64 =
        pairs.iter().map(|p| p.matched_depth() as f64).sum::<f64>() / pairs.len() as f64;
    (mean.ceil() as usize).max(1).next_power_of_two()
}

/// Caps a matched-pair depth recommendation by a statically proven
/// occupancy bound.
///
/// A premature queue can never hold more records than the kernel admits
/// over its whole run (`mem-ops-per-iteration × iterations`), so any depth
/// beyond the next power of two above that bound is BRAM the hardware can
/// never fill. `None` (no static bound) leaves the recommendation alone.
/// The result stays at least 1 and stays a power of two when `recommended`
/// is one.
pub fn cap_depth_by_occupancy(recommended: usize, occupancy: Option<u64>) -> usize {
    let Some(occ) = occupancy else {
        return recommended.max(1);
    };
    let occ = usize::try_from(occ).unwrap_or(usize::MAX);
    let cap = occ.max(1).checked_next_power_of_two().unwrap_or(usize::MAX);
    recommended.clamp(1, cap)
}

/// Recurrence-constrained initiation interval: a dependence chain that
/// takes `chain_latency` cycles and recurs every `distance` iterations
/// bounds the pipeline at `II >= chain_latency / distance` (the classic
/// modulo-scheduling recurrence bound). Distance 0 (same-iteration) chains
/// do not constrain the *initiation* interval — they lengthen the
/// iteration, not the interval.
pub fn recurrence_ii(chain_latency: f64, distance: u64) -> f64 {
    if distance == 0 {
        1.0
    } else {
        (chain_latency / distance as f64).max(1.0)
    }
}

/// Estimates the latency (cycles) of computing an expression with the
/// simulator's default functional-unit latencies — the `t_org` feed for the
/// matched-pair model.
pub fn expr_latency(e: &prevv_ir::Expr, ram_read_latency: u32) -> f64 {
    use prevv_ir::{BinOp, Expr};
    match e {
        Expr::Const(_) | Expr::IndVar(_) => 0.0,
        Expr::Load(_, idx) => expr_latency(idx, ram_read_latency) + ram_read_latency as f64 + 1.0,
        Expr::Binary(op, l, r) => {
            let unit = match op {
                BinOp::Mul => 4.0,
                BinOp::Div | BinOp::Rem => 8.0,
                _ => 1.0,
            };
            unit + expr_latency(l, ram_read_latency).max(expr_latency(r, ram_read_latency))
        }
        Expr::Opaque(_, x) => 2.0 + expr_latency(x, ram_read_latency),
    }
}

/// The tightest recurrence II bound over a kernel's affine ambiguous pairs:
/// for each pair with a known minimum conflict distance, the store's value
/// chain recurs at that distance. Runtime-dependent pairs contribute no
/// static bound (their cost appears as squashes instead).
pub fn kernel_recurrence_ii(spec: &prevv_ir::KernelSpec, ram_read_latency: u32) -> f64 {
    let deps = prevv_ir::depend::analyze(spec);
    let distances = prevv_ir::depend::pair_distances(spec, &deps);
    distances
        .iter()
        .filter_map(|pd| {
            let d = pd.min_distance?;
            let store = &deps.ops[pd.pair.store];
            let stmt = &spec.body[store.stmt];
            let chain = expr_latency(&stmt.value, ram_read_latency) + 1.0;
            Some(recurrence_ii(chain, d))
        })
        .fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_bound_basics() {
        assert_eq!(recurrence_ii(8.0, 2), 4.0);
        assert_eq!(recurrence_ii(8.0, 16), 1.0, "long distances do not bind");
        assert_eq!(
            recurrence_ii(8.0, 0),
            1.0,
            "same-iteration chains do not bind II"
        );
    }

    #[test]
    fn expr_latency_follows_unit_latencies() {
        use prevv_ir::{ArrayId, Expr};
        // load(a[i]) + 1: load = 2 (ram) + 1 (issue), add = 1 → 4.
        let e = Expr::load(ArrayId(0), Expr::var(0)).add(Expr::lit(1));
        assert_eq!(expr_latency(&e, 2), 4.0);
        // i * i: one multiplier.
        let m = Expr::var(0).mul(Expr::var(0));
        assert_eq!(expr_latency(&m, 2), 4.0);
    }

    #[test]
    fn accumulation_kernel_has_a_recurrence_bound() {
        use prevv_dataflow::components::LoopLevel;
        use prevv_ir::{ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};
        let c = ArrayId(0);
        // c[i] += 1 over (i, k): reuse distance 1 along k.
        let spec = KernelSpec::new(
            "accum",
            vec![LoopLevel::upto(2), LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("c", 4)],
            vec![Stmt::store(
                c,
                Expr::var(0),
                Expr::load(c, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let ii = kernel_recurrence_ii(&spec, 2);
        // Chain: load(3) + add(1) + store arrival(1) = 5, distance 1 → II >= 5.
        assert!(ii >= 4.0, "accumulation must be recurrence-bound, got {ii}");
    }

    #[test]
    fn eq6_pair_time() {
        let p = PairTiming {
            t_org: 10.0,
            squash_probability: 0.5,
            t_token: 100.0,
        };
        assert!((p.pair_time() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn eq7_wait_time_shrinks_with_depth() {
        let p = PairTiming {
            t_org: 10.0,
            squash_probability: 0.0,
            t_token: 100.0,
        };
        assert!(p.wait_time(4) > p.wait_time(16));
        assert!((p.wait_time(10) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn matched_depth_balances_the_pair() {
        let p = PairTiming {
            t_org: 5.0,
            squash_probability: 0.0,
            t_token: 100.0,
        };
        // t_p = 10, so depth 10 makes t_w = 10 = t_p.
        assert_eq!(p.matched_depth(), 10);
        assert!((p.mismatch(10) - 1.0).abs() < 1e-9);
        assert!(p.mismatch(5) > 1.0, "too-shallow queue starves");
    }

    #[test]
    fn higher_squash_probability_needs_less_depth() {
        let base = PairTiming {
            t_org: 5.0,
            squash_probability: 0.0,
            t_token: 100.0,
        };
        let squashy = PairTiming {
            squash_probability: 1.0,
            ..base
        };
        assert!(squashy.matched_depth() < base.matched_depth());
    }

    #[test]
    fn eq8_independence() {
        let ok = PairPlacement {
            distance: 12.0,
            span_m: 5.0,
            span_n: 6.0,
        };
        assert!(ok.independent());
        let overlapped = PairPlacement {
            distance: 8.0,
            span_m: 5.0,
            span_n: 6.0,
        };
        assert!(!overlapped.independent());
    }

    #[test]
    fn occupancy_cap_bounds_the_recommendation() {
        // A 4-record lifetime bound caps depth 64 at the next power of two.
        assert_eq!(cap_depth_by_occupancy(64, Some(3)), 4);
        assert_eq!(cap_depth_by_occupancy(64, Some(4)), 4);
        // Bound above the recommendation leaves it alone, as does no bound.
        assert_eq!(cap_depth_by_occupancy(8, Some(1000)), 8);
        assert_eq!(cap_depth_by_occupancy(8, None), 8);
        // Degenerate inputs stay sane.
        assert_eq!(cap_depth_by_occupancy(0, None), 1);
        assert_eq!(cap_depth_by_occupancy(16, Some(0)), 1);
        assert_eq!(cap_depth_by_occupancy(16, Some(u64::MAX)), 16);
    }

    #[test]
    fn recommendation_is_power_of_two() {
        let pairs = vec![
            PairTiming {
                t_org: 4.0,
                squash_probability: 0.1,
                t_token: 100.0,
            },
            PairTiming {
                t_org: 6.0,
                squash_probability: 0.3,
                t_token: 120.0,
            },
        ];
        let d = recommend_depth(&pairs);
        assert!(d.is_power_of_two());
        assert!(d >= 8);
        assert_eq!(recommend_depth(&[]), 1);
    }
}
