//! Meta-test: the diagnostic surface stays documented. Every `Code`
//! variant (via `explain::ALL`, whose exhaustiveness against the enum is
//! enforced in `explain.rs` unit tests) must resolve through
//! `prevv-lint --explain` and own a row in the README's diagnostics table,
//! so adding a code without documenting it fails CI rather than shipping a
//! bare `PVxxx` string to users.

use prevv_analyze::explain::ALL;
use prevv_analyze::explain_code;

fn readme() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn every_code_has_an_explain_entry_and_a_readme_table_row() {
    let readme = readme();
    for entry in ALL {
        let code = entry.code.as_str();
        let explained = explain_code(code)
            .unwrap_or_else(|| panic!("--explain {code} resolves to nothing despite an ALL entry"));
        assert!(
            !explained.doc.trim().is_empty() && !explained.example.trim().is_empty(),
            "{code} explanation must carry doc text and a triggering example"
        );
        assert!(
            readme.contains(&format!("| {code} |")),
            "README.md diagnostics table lacks a row for {code}"
        );
    }
}
