//! Property-based cross-checks for the two provers this crate layers on
//! top of dependence analysis:
//!
//! 1. the PV3xx separation prover's one-sided verdicts (PV301 proven
//!    separate, PV302 must-alias) agree with brute-force cross-product
//!    enumeration of the affine footprints over the iteration space (the
//!    same oracle `refine_pairs` uses under `ENUM_LIMIT`), and
//! 2. the partial-order-reduced exploration of the PV2xx model checker
//!    reaches a protocol violation **iff** the unreduced BFS does, on
//!    randomized small kernels — the soundness side of the ample-set
//!    argument in DESIGN.md, checked end to end.

use proptest::prelude::*;

use prevv_analyze::seplog::{classify_pairs, Separation};
use prevv_analyze::{check_protocol, ProtocolOptions};
use prevv_core::PrevvConfig;
use prevv_ir::depend::{analyze as depend_analyze, ENUM_LIMIT};
use prevv_ir::parse::parse_kernel;
use prevv_ir::symdep::AffineForm;

// ---------------------------------------------------------------------------
// Kernel generators: small single-loop kernels from a constrained grammar,
// so the unreduced state spaces stay enumerable.
// ---------------------------------------------------------------------------

/// An affine read-modify-write statement `a[c1*i + d1] = a[c2*i + d2] + k;`.
#[derive(Debug, Clone)]
struct AffineStmt {
    write_coeff: i64,
    write_off: i64,
    read_coeff: i64,
    read_off: i64,
}

fn affine_stmt() -> impl Strategy<Value = AffineStmt> {
    (0i64..3, 0i64..6, 0i64..3, 0i64..6).prop_map(|(wc, wo, rc, ro)| AffineStmt {
        write_coeff: wc,
        write_off: wo,
        read_coeff: rc,
        read_off: ro,
    })
}

fn index_src(coeff: i64, off: i64) -> String {
    match coeff {
        0 => format!("{off}"),
        1 => format!("i + {off}"),
        _ => format!("{coeff} * i + {off}"),
    }
}

/// Renders a kernel of affine statements on one shared array. Array length
/// is chosen so some footprints fit and some wrap (exercising the prover's
/// wrap guard, which must refuse rather than misprove).
fn affine_kernel(len: usize, trip: usize, stmts: &[AffineStmt]) -> String {
    let mut src = format!("int a[{len}];\nfor (int i = 0; i < {trip}; ++i) {{\n");
    for s in stmts {
        src.push_str(&format!(
            "  a[{}] = a[{}] + 1;\n",
            index_src(s.write_coeff, s.write_off),
            index_src(s.read_coeff, s.read_off)
        ));
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every PV301/PV302 verdict the separation prover hands out is
    /// confirmed by enumerating the full cross product of iteration pairs
    /// (bounded by `ENUM_LIMIT`, as in `refine_pairs`):
    ///
    /// * proven separate → no cross-iteration collision exists, and any
    ///   same-iteration collision is load-before-store;
    /// * must-alias → the footprints collide in *every* iteration.
    #[test]
    fn separation_verdicts_agree_with_enumeration(
        len in 4usize..24,
        trip in 1usize..9,
        stmts in proptest::collection::vec(affine_stmt(), 1..3),
    ) {
        let src = affine_kernel(len, trip, &stmts);
        let Ok(spec) = parse_kernel("prop", &src) else {
            // Statically out-of-bounds shapes are rejected upstream; the
            // prover never sees them.
            return Ok(());
        };
        prop_assume!(spec.iteration_count() <= ENUM_LIMIT);
        let space = spec.iteration_space();
        let deps = depend_analyze(&spec);
        let levels = spec.levels.len();

        for (pair, verdict) in classify_pairs(&spec, &deps) {
            let load = &deps.ops[pair.load];
            let store = &deps.ops[pair.store];
            let (Some(lf), Some(sf)) = (
                AffineForm::from_expr(&load.index, levels),
                AffineForm::from_expr(&store.index, levels),
            ) else {
                // Non-affine indices can only be Residual.
                prop_assert_eq!(verdict, Separation::Residual);
                continue;
            };
            match verdict {
                Separation::DisjointFootprints => {
                    for r1 in &space {
                        for r2 in &space {
                            prop_assert!(
                                lf.eval(r1) != sf.eval(r2),
                                "PV301-disjoint pair collides at rows {r1:?}/{r2:?}\n{src}"
                            );
                        }
                    }
                }
                Separation::OrderProtected => {
                    prop_assert!(load.seq < store.seq, "order protection needs program order");
                    for (i1, r1) in space.iter().enumerate() {
                        for (i2, r2) in space.iter().enumerate() {
                            if i1 != i2 {
                                prop_assert!(
                                    lf.eval(r1) != sf.eval(r2),
                                    "PV301-order-protected pair collides across \
                                     iterations {i1}/{i2}\n{src}"
                                );
                            }
                        }
                    }
                }
                Separation::MustAlias => {
                    for r in &space {
                        prop_assert_eq!(
                            lf.eval(r), sf.eval(r),
                            "PV302 pair must collide in every iteration\n{src}"
                        );
                    }
                }
                Separation::Residual => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// POR soundness: reduced iff unreduced, end to end.
// ---------------------------------------------------------------------------

/// One statement of the protocol-stress grammar: affine accumulators,
/// shifted streams, and runtime-indexed (data-dependent) hazards — the
/// shapes that drive the premature-queue/arbiter/squash core into its
/// interesting regions (squash livelocks, admission wedges, clean runs).
#[derive(Debug, Clone)]
enum HazardStmt {
    /// `a[0] = a[0] + 1;` — the canonical squash generator.
    Accumulator,
    /// `a[i + d] = a[i] + 1;` — cross-iteration distance-`d` hazard.
    Stream { dist: usize },
    /// `a[b[i]] = a[b[i]] + 1;` — runtime-indexed, never discharged.
    Runtime,
    /// `b[i] = b[i] + 1;` — an independent pair POR can commute.
    Independent,
}

fn hazard_stmt() -> impl Strategy<Value = HazardStmt> {
    prop_oneof![
        Just(HazardStmt::Accumulator),
        (0usize..3).prop_map(|dist| HazardStmt::Stream { dist }),
        Just(HazardStmt::Runtime),
        Just(HazardStmt::Independent),
    ]
}

fn hazard_kernel(trip: usize, stmts: &[HazardStmt]) -> String {
    let max_dist = stmts
        .iter()
        .map(|s| match s {
            HazardStmt::Stream { dist } => *dist,
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    let len = trip + max_dist;
    let mut src = format!("int a[{len}];\nint b[{trip}];\nfor (int i = 0; i < {trip}; ++i) {{\n");
    for s in stmts {
        let line = match s {
            HazardStmt::Accumulator => "  a[0] = a[0] + 1;\n".to_string(),
            HazardStmt::Stream { dist } => format!("  a[i + {dist}] = a[i] + 1;\n"),
            HazardStmt::Runtime => "  a[b[i]] = a[b[i]] + 1;\n".to_string(),
            HazardStmt::Independent => "  b[i] = b[i] + 1;\n".to_string(),
        };
        src.push_str(&line);
    }
    src.push_str("}\n");
    src
}

/// Sorted violation codes — the observable the reduction must preserve.
fn violation_codes(src: &str, opts: &ProtocolOptions) -> (Vec<String>, usize) {
    let spec = parse_kernel("prop", src).expect("grammar kernels parse");
    let result = check_protocol(&spec, opts).expect("checkable");
    assert!(
        !result.stats.truncated_by_budget,
        "state budget must not truncate the oracle runs\n{src}"
    );
    let mut codes: Vec<String> = result
        .report
        .diagnostics
        .iter()
        .filter(|d| d.severity == prevv_analyze::Severity::Error)
        .map(|d| d.code.to_string())
        .collect();
    codes.sort();
    (codes, result.states)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Ample-set soundness, end to end: on randomized small kernels the
    /// reduced exploration reports exactly the violation codes the
    /// unreduced BFS reports — with never *more* states.
    #[test]
    fn reduced_search_finds_a_violation_iff_unreduced_does(
        trip in 2usize..5,
        stmts in proptest::collection::vec(hazard_stmt(), 1..3),
        forwarding in any::<bool>(),
        depth in 2usize..5,
        iterations in 2u64..4,
    ) {
        let src = hazard_kernel(trip, &stmts);
        let config = PrevvConfig {
            depth,
            forwarding,
            ..PrevvConfig::default()
        };
        let reduced_opts = ProtocolOptions {
            iterations,
            ..ProtocolOptions::for_config(&config)
        };
        let full_opts = ProtocolOptions {
            por: false,
            ..reduced_opts.clone()
        };

        let (reduced, reduced_states) = violation_codes(&src, &reduced_opts);
        let (full, full_states) = violation_codes(&src, &full_opts);
        prop_assert_eq!(
            &reduced, &full,
            "reduced {:?} != unreduced {:?} on\n{}", reduced, full, src
        );
        prop_assert!(
            reduced_states <= full_states,
            "reduction may never grow the graph ({reduced_states} > {full_states})\n{src}"
        );
    }
}
