//! Pins the behavior of the checked-in bad-kernel fixtures, so the divide
//! of labor between the static lints and the runtime simulator stays fixed:
//! `kernels/bad/combinational_loop.pvk` is refused *statically* by PV103
//! under a direct (combinational, capacity-0) controller. It never reaches
//! the simulator's `CombinationalCycle` runtime detector — that path is
//! exercised by hand-built netlists in the dataflow crate's scheduler tests,
//! because no lint-clean kernel synthesizes a value-rewriting unbuffered
//! loop.

use prevv_analyze::{
    lint_source_with_circuit, AnalyzeOptions, CircuitOptions, Code, ControllerModel, Severity,
};

fn fixture(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../kernels/bad/");
    std::fs::read_to_string(format!("{path}{name}")).expect("fixture present")
}

#[test]
fn combinational_loop_fixture_is_refused_by_pv103_under_direct_controller() {
    let source = fixture("combinational_loop.pvk");
    let circuit = CircuitOptions {
        controller: ControllerModel::Direct,
    };
    let report = lint_source_with_circuit(
        "combinational_loop.pvk",
        &source,
        &AnalyzeOptions::default(),
        &circuit,
    );
    assert!(report.has_errors(), "the fixture must not lint clean");
    let pv103 = report.with_code(Code::UnbufferedCycle);
    assert!(
        !pv103.is_empty(),
        "expected PV103 (unbuffered handshake cycle), got: {}",
        report.render("combinational_loop.pvk", Some(&source))
    );
    assert!(pv103.iter().all(|d| d.severity == Severity::Error));
    // The diagnostic names the cycle through the memory node, so a reader
    // can see *where* the zero-slack loop closes.
    assert!(
        pv103.iter().any(|d| d.message.contains("cycle")),
        "PV103 message should describe the cycle: {:?}",
        pv103.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
}

#[test]
fn combinational_loop_fixture_lints_clean_with_queued_controller() {
    // The same netlist is fine once an elastic (queued) controller breaks
    // the loop — the fixture documents exactly this contrast.
    let source = fixture("combinational_loop.pvk");
    let report = lint_source_with_circuit(
        "combinational_loop.pvk",
        &source,
        &AnalyzeOptions::default(),
        &CircuitOptions::default(),
    );
    assert!(
        report.with_code(Code::UnbufferedCycle).is_empty(),
        "queued controller must break the cycle: {}",
        report.render("combinational_loop.pvk", Some(&source))
    );
}
