//! Property-based cross-checks for the abstract interpreter (`absint`):
//! on randomized small kernels — iteration spaces well inside the
//! `ENUM_LIMIT = 4096` concrete-enumeration budget — every verdict the
//! domains hand out is compared against the golden sequential execution,
//! the collecting semantics they over-approximate:
//!
//! 1. guard verdicts are definite (`NeverTaken` statements never execute,
//!    `AlwaysTaken`/unguarded statements execute every iteration);
//! 2. the per-statement value/index abstractions and the post-fixpoint
//!    array abstractions contain every concretely stored value — the
//!    soundness of the interval×congruence transfer and the widening;
//! 3. `occupancy_bound` dominates the concrete memory-event count;
//! 4. the PV500/PV501 lints agree with the trace (a PV501 statement has
//!    zero events; a PV500 proof implies a concrete out-of-bounds raw
//!    store index); and
//! 5. every `discharge_pairs` verdict holds on the trace: disjoint pairs
//!    never collide, same-iteration-ordered pairs only collide within an
//!    iteration, dead-code pairs have a side with no events at all.

use proptest::prelude::*;

use prevv_analyze::absint::{
    analyze_kernel, discharge_pairs, hull_box, occupancy_bound, DischargeReason, GuardStatus,
};
use prevv_analyze::{self as analyze, AnalyzeOptions, Code};
use prevv_ir::depend::{analyze as depend_analyze, ENUM_LIMIT};
use prevv_ir::golden::{self, MemOpKind};
use prevv_ir::parse::parse_kernel;

// ---------------------------------------------------------------------------
// Kernel generator: single-loop kernels storing into `a`, with a store-free
// index array `b` whose initializer sometimes reaches out of `a`'s bounds —
// the PV500 shape — plus guards that are infeasible, total, or data-striding.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum GenGuard {
    /// Unguarded.
    None,
    /// `if (i < k)` — infeasible when `k <= 0`, total when `k >= trip`.
    Lt(i64),
    /// `if (i % m == r)` — the stride idiom the congruence domain refines.
    Stride { m: i64, r: i64 },
}

#[derive(Debug, Clone)]
enum GenIndex {
    /// `a[c*i + d]` — affine, PV001 territory.
    Affine { c: i64, d: i64 },
    /// `a[b[i]]` — runtime-indirect, where only the value analysis sees.
    Indirect,
}

#[derive(Debug, Clone)]
enum GenVal {
    Const(i64),
    /// `i`.
    Var,
    /// `a[<store index>] + 1` — a read-modify-write accumulator.
    AccA,
    /// `b[i] + 1`.
    LoadB,
}

#[derive(Debug, Clone)]
struct GenStmt {
    guard: GenGuard,
    index: GenIndex,
    val: GenVal,
}

fn gen_guard() -> impl Strategy<Value = GenGuard> {
    prop_oneof![
        Just(GenGuard::None),
        Just(GenGuard::None),
        (0i64..20).prop_map(GenGuard::Lt),
        ((1i64..4), (0i64..4)).prop_map(|(m, r)| GenGuard::Stride { m, r: r % m }),
    ]
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    let index = prop_oneof![
        ((0i64..3), (0i64..4)).prop_map(|(c, d)| GenIndex::Affine { c, d }),
        Just(GenIndex::Indirect),
    ];
    let val = prop_oneof![
        (0i64..9).prop_map(GenVal::Const),
        Just(GenVal::Var),
        Just(GenVal::AccA),
        Just(GenVal::LoadB),
    ];
    (gen_guard(), index, val).prop_map(|(guard, index, val)| GenStmt { guard, index, val })
}

fn index_src(idx: &GenIndex) -> String {
    match idx {
        GenIndex::Affine { c: 0, d } => format!("{d}"),
        GenIndex::Affine { c: 1, d } => format!("i + {d}"),
        GenIndex::Affine { c, d } => format!("{c} * i + {d}"),
        GenIndex::Indirect => "b[i]".to_string(),
    }
}

fn render(la: usize, trip: usize, b_vals: &[i64], stmts: &[GenStmt]) -> String {
    let init = b_vals
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let mut src = format!(
        "int a[{la}];\nint b[{trip}] = {{ {init} }};\nfor (int i = 0; i < {trip}; ++i) {{\n"
    );
    for s in stmts {
        let guard = match &s.guard {
            GenGuard::None => String::new(),
            GenGuard::Lt(k) => format!("if (i < {k}) "),
            GenGuard::Stride { m, r } => format!("if (i % {m} == {r}) "),
        };
        let idx = index_src(&s.index);
        let val = match &s.val {
            GenVal::Const(c) => c.to_string(),
            GenVal::Var => "i".to_string(),
            GenVal::AccA => format!("a[{idx}] + 1"),
            GenVal::LoadB => "b[i] + 1".to_string(),
        };
        src.push_str(&format!("  {guard}a[{idx}] = {val};\n"));
    }
    src.push_str("}\n");
    src
}

/// Concrete truth of a generated guard at iteration `i`.
fn guard_true(g: &GenGuard, i: i64) -> bool {
    match g {
        GenGuard::None => true,
        GenGuard::Lt(k) => i < *k,
        GenGuard::Stride { m, r } => i % m == *r,
    }
}

/// The grammar is not vacuous: hand-picked parameter points hit the PV500,
/// PV501 and discharge paths the property then checks on random draws.
#[test]
fn generator_exercises_the_interesting_verdicts() {
    // Indirect store through an initializer that reaches 5 >= len(a) = 4.
    let oob = render(
        4,
        4,
        &[1, 2, 5, 0],
        &[GenStmt {
            guard: GenGuard::None,
            index: GenIndex::Indirect,
            val: GenVal::Var,
        }],
    );
    let report = analyze::lint_source("prop", &oob, &AnalyzeOptions::default());
    assert_eq!(report.with_code(Code::RangeOutOfBounds).len(), 1, "{oob}");

    // `if (i < 0)` is infeasible over `0 <= i < 4`.
    let dead = render(
        4,
        4,
        &[0, 1, 2, 3],
        &[
            GenStmt {
                guard: GenGuard::Lt(0),
                index: GenIndex::Affine { c: 1, d: 0 },
                val: GenVal::Var,
            },
            GenStmt {
                guard: GenGuard::None,
                index: GenIndex::Affine { c: 1, d: 0 },
                val: GenVal::Var,
            },
        ],
    );
    let report = analyze::lint_source("prop", &dead, &AnalyzeOptions::default());
    assert_eq!(report.with_code(Code::InfeasibleGuard).len(), 1, "{dead}");

    // `a[i] = a[i] + 1` discharges as same-iteration-ordered.
    let acc = render(
        8,
        8,
        &[0, 1, 2, 3, 4, 5, 6, 7],
        &[GenStmt {
            guard: GenGuard::None,
            index: GenIndex::Affine { c: 1, d: 0 },
            val: GenVal::AccA,
        }],
    );
    let spec = parse_kernel("prop", &acc).expect("parses");
    let deps = depend_analyze(&spec);
    let bounds = hull_box(&spec).expect("nonempty space");
    let discharged = discharge_pairs(&spec, &deps, &deps.pairs, &bounds);
    assert!(
        discharged
            .iter()
            .any(|(_, r)| *r == DischargeReason::SameIterationOrdered),
        "accumulator pair must discharge: {discharged:?}\n{acc}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn absint_verdicts_agree_with_concrete_enumeration(
        la in 4usize..16,
        trip in 1usize..17,
        bseed in proptest::collection::vec(0u64..1_000_000, 16),
        stmts in proptest::collection::vec(gen_stmt(), 1..4),
    ) {
        // `b` holds `trip` values in `-1 ..= la + 1`: some in `a`'s bounds,
        // some past either end — the raw indices the PV500 proof is about.
        let b_vals: Vec<i64> = (0..trip)
            .map(|i| (bseed[i % bseed.len()] % (la as u64 + 3)) as i64 - 1)
            .collect();
        let src = render(la, trip, &b_vals, &stmts);
        let Ok(spec) = parse_kernel("prop", &src) else {
            // Statically out-of-bounds affine shapes are rejected upstream.
            return Ok(());
        };
        prop_assume!(spec.iteration_count() <= ENUM_LIMIT);

        let g = golden::execute(&spec);
        let inv = analyze_kernel(&spec);

        // Per-statement store sequence numbers (the trace's port numbering).
        let store_seq: Vec<u32> = spec
            .body
            .iter()
            .scan(0u32, |acc, stmt| {
                *acc += stmt.mem_op_count() as u32;
                Some(*acc - 1)
            })
            .collect();
        let stores_of = |si: usize| {
            let want = store_seq[si];
            g.trace
                .iter()
                .filter(move |e| e.kind == MemOpKind::Store && e.seq == want)
        };

        // 1. Guard verdicts are definite.
        for (si, sinv) in inv.stmts.iter().enumerate() {
            let execs = stores_of(si).count();
            match sinv.guard {
                GuardStatus::NeverTaken => prop_assert_eq!(
                    execs, 0,
                    "NeverTaken statement {si} executed\n{}", src
                ),
                GuardStatus::None | GuardStatus::AlwaysTaken => prop_assert_eq!(
                    execs, spec.iteration_count(),
                    "total statement {si} skipped an iteration\n{}", src
                ),
                GuardStatus::Mixed => {}
            }
        }

        // 2. Abstraction soundness: stored values and (in-bounds) indices
        // land inside the statement invariants; final contents inside the
        // post-fixpoint array abstractions.
        for (si, sinv) in inv.stmts.iter().enumerate() {
            let len = spec.arrays[spec.body[si].array.0].len as i64;
            let in_bounds = sinv.index.iv.lo >= 0 && sinv.index.iv.hi < len;
            for e in stores_of(si) {
                prop_assert!(
                    sinv.value.contains(e.value),
                    "stored value {} escapes stmt {si} abstraction {:?}\n{}",
                    e.value, sinv.value, src
                );
                if in_bounds {
                    // Raw abstraction within bounds => resolved == raw.
                    prop_assert!(
                        sinv.index.contains(e.index as i64),
                        "store index {} escapes stmt {si} abstraction {:?}\n{}",
                        e.index, sinv.index, src
                    );
                }
            }
        }
        for (ai, arr) in inv.env.arrays.iter().enumerate() {
            for &v in &g.arrays[ai] {
                prop_assert!(
                    arr.val.contains(v),
                    "final value {v} of array {ai} escapes {:?}\n{}", arr.val, src
                );
            }
            if arr.store_free {
                prop_assert!(
                    !g.trace
                        .iter()
                        .any(|e| e.kind == MemOpKind::Store && e.array.0 == ai),
                    "store-free array {ai} was stored to\n{src}"
                );
            }
        }

        // 3. The static occupancy bound dominates the concrete event count.
        prop_assert!(
            occupancy_bound(&spec) >= g.trace.len(),
            "occupancy bound {} below concrete trace {}\n{}",
            occupancy_bound(&spec), g.trace.len(), src
        );

        // 4. PV500/PV501 agree with the trace.
        let report = analyze::lint_source("prop", &src, &AnalyzeOptions::default());
        let dead = inv
            .stmts
            .iter()
            .filter(|s| s.guard == GuardStatus::NeverTaken)
            .count();
        prop_assert_eq!(
            report.with_code(Code::InfeasibleGuard).len(), dead,
            "one PV501 per provably-dead statement\n{}", src
        );
        if !report.with_code(Code::RangeOutOfBounds).is_empty() {
            // A definite proof needs a concrete out-of-bounds raw index on
            // an executed indirect store (`b` is store-free by grammar).
            let witness = stmts.iter().any(|s| {
                matches!(s.index, GenIndex::Indirect)
                    && (0..trip as i64).any(|i| {
                        guard_true(&s.guard, i)
                            && !(0..la as i64).contains(&b_vals[i as usize])
                    })
            });
            prop_assert!(witness, "PV500 without a concrete witness\n{src}");
        }

        // 5. Every discharge verdict holds on the trace.
        let deps = depend_analyze(&spec);
        let Some(bounds) = hull_box(&spec) else { return Ok(()); };
        for (pair, reason) in discharge_pairs(&spec, &deps, &deps.pairs, &bounds) {
            let loads: Vec<_> = g
                .trace
                .iter()
                .filter(|e| e.kind == MemOpKind::Load && e.seq == deps.ops[pair.load].seq)
                .collect();
            let stores: Vec<_> = g
                .trace
                .iter()
                .filter(|e| e.kind == MemOpKind::Store && e.seq == deps.ops[pair.store].seq)
                .collect();
            match reason {
                DischargeReason::DisjointValues => {
                    for l in &loads {
                        for s in &stores {
                            prop_assert!(
                                l.index != s.index,
                                "disjoint-discharged pair collides at {}\n{}", l.index, src
                            );
                        }
                    }
                }
                DischargeReason::SameIterationOrdered => {
                    for l in &loads {
                        for s in &stores {
                            prop_assert!(
                                l.index != s.index || l.iter == s.iter,
                                "same-iteration-discharged pair collides across \
                                 iterations {}/{}\n{}", l.iter, s.iter, src
                            );
                        }
                    }
                }
                DischargeReason::DeadCode => prop_assert!(
                    loads.is_empty() || stores.is_empty(),
                    "dead-code-discharged pair has events on both sides\n{src}"
                ),
            }
        }
    }
}
