//! The individual analyses (PV001–PV006). Each lint pushes into a shared
//! [`Report`]; the orchestration lives in [`crate::analyze`].

use std::collections::{BTreeMap, HashMap};

use prevv_core::sizing::{expr_latency, recommend_depth, PairTiming};
use prevv_dataflow::Value;
use prevv_ir::depend::{pair_distances, refine_pairs, Dependences, StaticMemOp, ENUM_LIMIT};
use prevv_ir::symdep::{rect_bounds, AffineForm};
use prevv_ir::{Expr, KernelSpec, MemOpKind, Span};

use crate::diag::{Code, Diagnostic, Report};
use crate::AnalyzeOptions;

/// Evaluates an affine expression over one iteration-space row.
///
/// # Panics
///
/// Panics on `Load`/`Opaque` nodes — callers must filter with
/// [`Expr::is_runtime_dependent`] first.
fn eval_affine(e: &Expr, row: &[Value]) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Binary(op, l, r) => op.apply(eval_affine(l, row), eval_affine(r, row)),
        Expr::Load(..) | Expr::Opaque(..) => {
            unreachable!("affine evaluation reached a runtime-dependent node")
        }
    }
}

/// True when the statement's guard passes (or it has none) for this row.
/// Guards are affine by [`KernelSpec::validate`].
fn guard_passes(spec: &KernelSpec, stmt: usize, row: &[Value]) -> bool {
    match &spec.body[stmt].guard {
        None => true,
        Some(g) => eval_affine(g, row) != 0,
    }
}

/// Source span of each static op, aligned with `ops` (the `k`-th op of a
/// statement maps to [`prevv_ir::Stmt::op_span`] with that ordinal).
pub(crate) fn op_spans(spec: &KernelSpec, ops: &[StaticMemOp]) -> Vec<Option<Span>> {
    let mut next = vec![0usize; spec.body.len()];
    ops.iter()
        .map(|op| {
            let k = next[op.stmt];
            next[op.stmt] += 1;
            spec.body[op.stmt].op_span(k)
        })
        .collect()
}

fn array_name(spec: &KernelSpec, id: prevv_ir::ArrayId) -> &str {
    &spec.arrays[id.0].name
}

/// PV001 — out-of-bounds affine access. Below [`ENUM_LIMIT`] iterations,
/// enumerates every affine index over the (guard-filtered) iteration space
/// and compares against the declared array length. Above it, the symbolic
/// fast path bounds each unguarded affine index over the rectangular domain
/// via [`AffineForm::range`] — exact, since an affine form attains its
/// extrema at domain corners. A hit is a hard error: the runtime wraps
/// indices modulo the length, so the circuit "works", but it silently
/// touches the wrong cell.
pub(crate) fn check_bounds(spec: &KernelSpec, deps: &Dependences, report: &mut Report) {
    if spec.iteration_count() > ENUM_LIMIT {
        check_bounds_symbolic(spec, deps, report);
        return;
    }
    let space = spec.iteration_space();
    let spans = op_spans(spec, &deps.ops);
    for op in &deps.ops {
        if op.index.is_runtime_dependent() {
            continue;
        }
        let len = spec.arrays[op.array.0].len as Value;
        let hit = space
            .iter()
            .filter(|row| guard_passes(spec, op.stmt, row))
            .find_map(|row| {
                let raw = eval_affine(&op.index, row);
                (raw < 0 || raw >= len).then_some((raw, row.clone()))
            });
        if let Some((raw, row)) = hit {
            let kind = match op.kind {
                MemOpKind::Load => "load",
                MemOpKind::Store => "store",
            };
            let name = array_name(spec, op.array);
            report.push(
                Diagnostic::error(
                    Code::OutOfBounds,
                    format!(
                        "{kind} index {raw} is out of bounds for `{name}` of length {len} \
                         (first at iteration {row:?})"
                    ),
                )
                .with_span(spans[op.id])
                .with_help(format!(
                    "the runtime wraps indices modulo the array length, silently aliasing \
                     `{name}[{}]`; fix the index or enlarge the array",
                    raw.rem_euclid(len)
                )),
            );
        }
    }
}

/// Symbolic arm of PV001 for iteration spaces too large to enumerate.
/// Guarded ops are skipped (the reachable index range depends on the guard,
/// which only enumeration can filter), as are triangular nests — both stay
/// conservatively silent rather than risk a false positive.
fn check_bounds_symbolic(spec: &KernelSpec, deps: &Dependences, report: &mut Report) {
    let Some(bounds) = rect_bounds(&spec.levels) else {
        return;
    };
    let spans = op_spans(spec, &deps.ops);
    for op in &deps.ops {
        if op.index.is_runtime_dependent() || spec.body[op.stmt].guard.is_some() {
            continue;
        }
        let Some(form) = AffineForm::from_expr(&op.index, spec.levels.len()) else {
            continue;
        };
        let len = spec.arrays[op.array.0].len as Value;
        let (lo, hi) = form.range(&bounds);
        if lo < 0 || hi >= len {
            let raw = if lo < 0 { lo } else { hi };
            let kind = match op.kind {
                MemOpKind::Load => "load",
                MemOpKind::Store => "store",
            };
            let name = array_name(spec, op.array);
            report.push(
                Diagnostic::error(
                    Code::OutOfBounds,
                    format!(
                        "{kind} index ranges over [{lo}, {hi}], out of bounds for `{name}` \
                         of length {len} (reaches {raw})"
                    ),
                )
                .with_span(spans[op.id])
                .with_help(format!(
                    "the runtime wraps indices modulo the array length, silently aliasing \
                     `{name}[{}]`; fix the index or enlarge the array",
                    raw.rem_euclid(len)
                )),
            );
        }
    }
}

/// PV002 — deadlock risk of guarded ambiguous ops (paper §V-C). A guarded
/// op in an ambiguous pair must send a fake token when its guard fails, or
/// the completion frontier never passes that iteration and the premature
/// queue wedges. With fake tokens enabled this is informational; with them
/// disabled it is an error (the exact deadlock the paper describes).
pub(crate) fn check_deadlock(
    spec: &KernelSpec,
    deps: &Dependences,
    opts: &AnalyzeOptions,
    report: &mut Report,
) {
    let ambiguous = deps.ambiguous_ops();
    let mut flagged_stmts = Vec::new();
    for op in &deps.ops {
        if op.guarded && ambiguous.contains(&op.id) && !flagged_stmts.contains(&op.stmt) {
            flagged_stmts.push(op.stmt);
        }
    }
    for si in flagged_stmts {
        let span = spec.body[si].span();
        let name = array_name(spec, spec.body[si].array);
        if opts.fake_tokens {
            report.push(
                Diagnostic::note(
                    Code::DeadlockRisk,
                    format!(
                        "guarded statement updates `{name}` through an ambiguous pair; \
                         untaken guards must send fake tokens so the premature queue drains \
                         (paper \u{a7}V-C) — synthesis emits them"
                    ),
                )
                .with_span(span),
            );
        } else {
            report.push(
                Diagnostic::error(
                    Code::DeadlockRisk,
                    format!(
                        "guarded statement updates `{name}` through an ambiguous pair with \
                         fake tokens disabled: the first untaken guard wedges the premature \
                         queue (paper \u{a7}V-C deadlock)"
                    ),
                )
                .with_span(span)
                .with_help("re-enable fake tokens (`SynthOptions::fake_tokens`)"),
            );
        }
    }
}

/// PV003 — premature-queue depth. A depth below the per-iteration op count
/// can never advance the completion frontier (the controller refuses it at
/// construction); a depth below the matched-pair recommendation of
/// [`prevv_core::sizing`] merely stalls.
pub(crate) fn check_depth(
    spec: &KernelSpec,
    deps: &Dependences,
    opts: &AnalyzeOptions,
    report: &mut Report,
) {
    let needed = spec.mem_ops_per_iter();
    if opts.depth < needed {
        report.push(
            Diagnostic::error(
                Code::QueueDepth,
                format!(
                    "premature queue depth {} cannot hold one iteration's {needed} memory \
                     ops; the completion frontier would never advance",
                    opts.depth
                ),
            )
            .with_help(format!("configure depth_q >= {needed}")),
        );
        return;
    }
    // First-order matched-pair model (paper §V-A): t_org from the statement
    // datapath, t_token from the whole iteration body, squash probability
    // from the conflict-distance profile.
    let read_latency = prevv_mem::MemTiming::default().read_latency;
    let t_token: f64 = spec
        .body
        .iter()
        .map(|s| expr_latency(&s.index, read_latency) + expr_latency(&s.value, read_latency) + 1.0)
        .sum();
    let refinement = refine_pairs(spec, deps);
    let distances = pair_distances(spec, deps);
    let timings: Vec<PairTiming> = refinement
        .pairs
        .iter()
        .map(|pair| {
            let stmt = &spec.body[deps.ops[pair.store].stmt];
            let t_org = expr_latency(&stmt.index, read_latency)
                + expr_latency(&stmt.value, read_latency)
                + 1.0;
            let squash_probability = match distances
                .iter()
                .find(|d| d.pair == *pair)
                .and_then(|d| d.min_distance)
            {
                Some(d) => 1.0 / (d as f64 + 1.0),
                None => 0.25, // runtime-dependent: collisions are data-dependent
            };
            PairTiming {
                t_org,
                squash_probability,
                t_token,
            }
        })
        .collect();
    if timings.is_empty() {
        return;
    }
    let recommended = recommend_depth(&timings).max(needed);
    if opts.depth < recommended {
        report.push(
            Diagnostic::warning(
                Code::QueueDepth,
                format!(
                    "premature queue depth {} is below the matched-pair recommendation \
                     {recommended} (paper \u{a7}V-A); expect live-out tokens to stall",
                    opts.depth
                ),
            )
            .with_help(format!("configure depth_q = {recommended}")),
        );
    }
}

/// PV004 — provably-disjoint pairs. Reports every pair
/// [`prevv_ir::depend::refine_pairs`] bypasses: all address collisions are
/// same-iteration load-before-store, which the in-order store commit already
/// serializes, so synthesis drops the pair from the arbiter's validated set.
pub(crate) fn check_disjoint(spec: &KernelSpec, deps: &Dependences, report: &mut Report) {
    let spans = op_spans(spec, &deps.ops);
    for pair in refine_pairs(spec, deps).bypassed {
        let load = &deps.ops[pair.load];
        let name = array_name(spec, load.array);
        report.push(
            Diagnostic::note(
                Code::DisjointPair,
                format!(
                    "load/store pair on `{name}` is provably disjoint across iterations \
                     (every collision is same-iteration, program-order protected); the \
                     arbiter is bypassed for it"
                ),
            )
            .with_span(spans[pair.load].or(spans[pair.store])),
        );
    }
}

/// PV005 — dead stores and unused arrays. Unused arrays are purely
/// declarative. Dead stores are found by exact replay of the canonical op
/// order over the iteration space (guards evaluated, so this is precise);
/// arrays with any runtime-dependent access are skipped conservatively.
/// A store is dead when none of its dynamic instances is read afterwards
/// nor survives to the final array contents (the kernel's output). The
/// replay is skipped (only the unused-array check runs) above
/// [`ENUM_LIMIT`] iterations — liveness is inherently path-sensitive and
/// has no symbolic shortcut.
pub(crate) fn check_dead_stores(spec: &KernelSpec, deps: &Dependences, report: &mut Report) {
    let spans = op_spans(spec, &deps.ops);

    for (ai, decl) in spec.arrays.iter().enumerate() {
        if !deps.ops.iter().any(|op| op.array.0 == ai) {
            report.push(Diagnostic::warning(
                Code::DeadStore,
                format!("array `{}` is declared but never accessed", decl.name),
            ));
        }
    }

    if spec.iteration_count() > ENUM_LIMIT {
        return;
    }

    // Arrays whose every access is affine can be replayed exactly.
    let mut exact = vec![true; spec.arrays.len()];
    for op in &deps.ops {
        if op.index.is_runtime_dependent() {
            exact[op.array.0] = false;
        }
    }

    let space = spec.iteration_space();
    // `pending[array][addr]` = op id of the last store there, not yet read.
    let mut pending: Vec<HashMap<usize, usize>> = vec![HashMap::new(); spec.arrays.len()];
    let mut observed = vec![false; deps.ops.len()];
    let mut executed = vec![false; deps.ops.len()];
    for row in &space {
        for op in &deps.ops {
            if !exact[op.array.0] || !guard_passes(spec, op.stmt, row) {
                continue;
            }
            executed[op.id] = true;
            let addr = spec.resolve_index(op.array, eval_affine(&op.index, row));
            match op.kind {
                MemOpKind::Load => {
                    if let Some(sid) = pending[op.array.0].remove(&addr) {
                        observed[sid] = true;
                    }
                }
                MemOpKind::Store => {
                    pending[op.array.0].insert(addr, op.id);
                }
            }
        }
    }
    // Values still in place at the end are the kernel's output.
    for per_array in pending {
        for (_, sid) in per_array {
            observed[sid] = true;
        }
    }

    for op in &deps.ops {
        if op.kind != MemOpKind::Store || !exact[op.array.0] {
            continue;
        }
        let name = array_name(spec, op.array);
        if !executed[op.id] {
            report.push(
                Diagnostic::warning(
                    Code::DeadStore,
                    format!("store to `{name}` never executes: its guard is always false"),
                )
                .with_span(spans[op.id].or(spec.body[op.stmt].span())),
            );
        } else if !observed[op.id] {
            report.push(
                Diagnostic::warning(
                    Code::DeadStore,
                    format!(
                        "store to `{name}` is dead: every value it writes is overwritten \
                         before being read or emitted"
                    ),
                )
                .with_span(spans[op.id].or(spec.body[op.stmt].span())),
            );
        }
    }
}

/// PV006 — pair-reduction opportunity (paper §V-B, Eq. 11–12). Counts the
/// validation searches that collapsing runs of consecutive same-kind
/// ambiguous ops would eliminate; emitted only when `pair_reduction` is
/// disabled (when enabled, synthesis already applies it).
pub(crate) fn check_pair_reduction(
    spec: &KernelSpec,
    deps: &Dependences,
    opts: &AnalyzeOptions,
    report: &mut Report,
) {
    if opts.pair_reduction {
        return;
    }
    let ambiguous = deps.ambiguous_ops();
    let mut per_array: BTreeMap<usize, Vec<&StaticMemOp>> = BTreeMap::new();
    for op in &deps.ops {
        if ambiguous.contains(&op.id) {
            per_array.entry(op.array.0).or_default().push(op);
        }
    }
    let mut eliminable = 0usize;
    for ops in per_array.values() {
        let mut run_kind: Option<MemOpKind> = None;
        let mut run_len = 0usize;
        for op in ops {
            if run_kind == Some(op.kind) {
                run_len += 1;
            } else {
                eliminable += run_len.saturating_sub(1);
                run_kind = Some(op.kind);
                run_len = 1;
            }
        }
        eliminable += run_len.saturating_sub(1);
    }
    if eliminable > 0 {
        let total = ambiguous.len();
        report.push(
            Diagnostic::note(
                Code::PairReduction,
                format!(
                    "pair reduction (paper \u{a7}V-B) would eliminate {eliminable} of \
                     {total} validation searches on `{}`, but `pair_reduction` is disabled",
                    spec.name
                ),
            )
            .with_help("enable `PrevvConfig::pair_reduction` to shrink the arbiter"),
        );
    }
}
