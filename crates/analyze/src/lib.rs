//! # prevv-analyze — static analysis for PreVV kernels
//!
//! A multi-lint pass over [`KernelSpec`] producing structured diagnostics
//! ([`Diagnostic`] / [`Report`]): stable `PV0xx` codes, severities, source
//! spans (when the kernel was parsed from `.pvk` text), rustc-style text
//! rendering, and a machine-readable JSON form.
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | PV000 | error    | source failed to parse (CLI only) |
//! | PV001 | error    | affine index provably out of bounds |
//! | PV002 | note/error | guarded op in an ambiguous pair (§V-C); error when fake tokens are disabled |
//! | PV003 | error/warn | premature-queue depth below the frontier minimum / the §V-A recommendation |
//! | PV004 | note     | provably-disjoint pair — arbiter bypassed |
//! | PV005 | warning  | dead store or unused array |
//! | PV006 | note     | pair reduction (§V-B) profitable but disabled |
//! | PV101 | error    | circuit: channel with no producer or no consumer |
//! | PV102 | error    | circuit: channel with multiple producers or consumers |
//! | PV103 | error    | circuit: handshake cycle with no elastic buffer (structural deadlock) |
//! | PV104 | error/warn | circuit: controller capacity inconsistent with the in-flight iteration frontier |
//! | PV105 | warning  | circuit: component unreachable from any token source |
//! | PV200 | note/warn | protocol: model checker stopped at its iteration/state bound |
//! | PV201 | error    | protocol: reachable deadlock (shortest trace attached) |
//! | PV202 | error    | protocol: squash livelock — replay cycle with no frontier progress |
//! | PV203 | error    | protocol: queue capacity insufficient on some interleaving |
//! | PV204 | warning  | protocol: §V-B pair-reduction representative diverges from the unreduced set |
//! | PV300 | note     | separation horizon: pairs left to the dynamic arbiter |
//! | PV301 | note     | pair footprints proven separate — discharged before model checking |
//! | PV302 | note     | pair footprints must-alias — validation provably live |
//! | PV400 | note     | perf: steady-state II bound + binding resource (+ critical cycle) |
//! | PV401 | warning  | perf: zero-slack backpressure cycle; buffer insertion suggested |
//! | PV402 | warning  | perf: premature-queue/arbiter serialization binds throughput |
//! | PV403 | warning  | perf: measured II diverged from the static prediction |
//! | PV500 | error/warn | value-range analysis proves an index out of bounds (warning for opaque wraparound) |
//! | PV501 | warning  | guard is provably false on every iteration — dead statement |
//! | PV502 | note     | invariant-backed pair discharge beyond GCD/Banerjee |
//! | PV503 | note     | static occupancy bound below the configured `depth_q` |
//!
//! The `PV0xx` lints run on the kernel; the `PV1xx` lints ([`circuit`])
//! run on the synthesized netlist via the channel-graph introspection API
//! of `prevv-dataflow`; the `PV2xx` lints ([`modelcheck`]) bounded-model-
//! check the abstract arbiter/premature-queue/squash protocol itself,
//! reusing the pure `prevv_core::ProtocolState` step functions the
//! simulator runs. The affine machinery behind PV001/PV004 is the
//! symbolic dependence engine re-exported as [`symdep`] (GCD and Banerjee
//! tests), which lets the lint families scale past enumerable iteration
//! spaces; the `PV3xx` notes ([`seplog`]) are the separation-logic-style
//! disjointness prover that discharges whole pair-classes before they reach
//! the arbiter or the model checker; the `PV4xx` lints ([`perf`]) model
//! the synthesized netlist as a timed marked graph and bound its
//! steady-state initiation interval (maximum cycle ratio plus the
//! controller's port/validation/retire budgets); the `PV5xx` lints
//! ([`absint`]) run a fixpoint abstract interpreter (interval ×
//! congruence × guard domains) over the loop nest, proving value-range
//! facts the affine engines cannot — and some of its diagnostics carry
//! machine-applicable suggestions that `prevv-lint --fix` applies.
//! [`explain`] documents every code with a minimal triggering example
//! (`prevv-lint --explain PVxxx`).
//!
//! [`synthesize`] is the checked front door: it runs the analyzer and
//! refuses kernels with any error-severity finding, attaching the report.
//! It then runs the circuit lints on the synthesized netlist and refuses
//! error-severity circuit findings too (and, when
//! [`AnalyzeOptions::protocol`] is set, the protocol findings).
//!
//! ```
//! use prevv_analyze::{analyze, AnalyzeOptions, Code};
//! let spec = prevv_ir::parse::parse_kernel(
//!     "oob",
//!     "int a[4];\nfor (int i = 0; i < 8; ++i) { a[i] = i; }",
//! ).unwrap();
//! let report = analyze(&spec, &AnalyzeOptions::default());
//! assert!(report.has_errors());
//! assert_eq!(report.with_code(Code::OutOfBounds).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use prevv_core::PrevvConfig;
use prevv_ir::depend;
use prevv_ir::{KernelError, KernelSpec, SynthOptions, SynthesizedKernel};

pub mod absint;
pub mod circuit;
pub mod diag;
pub mod explain;
mod lints;
pub mod modelcheck;
pub mod perf;
pub mod seplog;
pub mod symdep;

pub use absint::{analyze_kernel as infer_invariants, occupancy_bound, DischargeReason};
pub use circuit::{lint_circuit, lint_netlist, CircuitOptions, ControllerModel};
pub use diag::{Code, Diagnostic, Report, Severity, Suggestion};
pub use explain::{explain as explain_code, Explanation};
pub use modelcheck::{
    check as check_protocol, replay as replay_counterexample, CheckResult, CheckStats,
    Counterexample, EventKind, ProtocolOptions, ReplayOutcome, TraceEvent,
};
pub use perf::{
    analyze_perf, check_measured, lint_netlist_perf, lint_perf, PerfOptions, PerfSummary,
};

/// Configuration the analyzer checks the kernel against. Mirrors the knobs
/// of [`SynthOptions`] and [`PrevvConfig`] that change static safety.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Whether synthesis emits fake tokens for guarded ops (paper §V-C).
    /// Mirrors [`SynthOptions::fake_tokens`]; disabling turns PV002 into an
    /// error.
    pub fake_tokens: bool,
    /// Configured premature-queue depth (`depth_q`) for PV003.
    pub depth: usize,
    /// Whether the controller applies the §V-B pair reduction; when false,
    /// PV006 reports the missed opportunity.
    pub pair_reduction: bool,
    /// Controller model for the PV1xx circuit lints in checked synthesis.
    /// `None` derives [`ControllerModel::Queue`] from [`Self::depth`] — the
    /// premature queue the kernel will actually run against.
    pub circuit_controller: Option<ControllerModel>,
    /// Run the PV2xx protocol model checker ([`modelcheck::check`]) as an
    /// additional pass in checked synthesis. `None` (the default) skips it —
    /// exhaustive exploration costs far more than the static lints.
    pub protocol: Option<ProtocolOptions>,
    /// Run the PV4xx static throughput pass ([`lint_perf`]) as an
    /// additional pass in checked synthesis. `None` (the default) skips it.
    pub perf: Option<PerfOptions>,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        let cfg = PrevvConfig::default();
        AnalyzeOptions {
            fake_tokens: SynthOptions::default().fake_tokens,
            depth: cfg.depth,
            pair_reduction: cfg.pair_reduction,
            circuit_controller: None,
            protocol: None,
            perf: None,
        }
    }
}

impl AnalyzeOptions {
    /// Options matching a concrete controller configuration.
    pub fn for_config(cfg: &PrevvConfig) -> Self {
        AnalyzeOptions {
            depth: cfg.depth,
            pair_reduction: cfg.pair_reduction,
            ..Self::default()
        }
    }
}

/// Runs every lint over a validated kernel and returns the findings in
/// deterministic order: by source span, then code ([`Report::normalize`]).
///
/// A `depth_q = N;` directive in the kernel source overrides
/// [`AnalyzeOptions::depth`] for every depth-sensitive lint — the file
/// records the configuration it was authored for.
pub fn analyze(spec: &KernelSpec, opts: &AnalyzeOptions) -> Report {
    let deps = depend::analyze(spec);
    let mut effective = opts.clone();
    if let Some((depth, _)) = spec.depth_hint() {
        effective.depth = depth;
    }
    let opts = &effective;
    let mut report = Report::default();
    lints::check_bounds(spec, &deps, &mut report);
    lints::check_deadlock(spec, &deps, opts, &mut report);
    lints::check_depth(spec, &deps, opts, &mut report);
    lints::check_disjoint(spec, &deps, &mut report);
    lints::check_dead_stores(spec, &deps, &mut report);
    lints::check_pair_reduction(spec, &deps, opts, &mut report);
    seplog::check_separation(spec, &deps, &mut report);
    absint::check_values(spec, &deps, &mut report);
    absint::check_occupancy(spec, opts.depth, &mut report);
    report.normalize();
    report
}

/// Lints kernel source text: parses it and runs [`analyze`]; a parse
/// failure becomes a single `PV000` error diagnostic carrying the failure
/// offset. This is what `prevv-lint` runs per file.
pub fn lint_source(name: &str, source: &str, opts: &AnalyzeOptions) -> Report {
    match prevv_ir::parse::parse_kernel(name, source) {
        Ok(spec) => analyze(&spec, opts),
        Err(e) => {
            let mut r = Report::default();
            r.push(
                Diagnostic::error(Code::Parse, e.message.clone())
                    .with_span(Some(prevv_ir::Span::point(e.at))),
            );
            r
        }
    }
}

/// Applies a kernel's `depth_q = N;` directive to the circuit pass: a
/// queue-modeled controller takes the in-source capacity, mirroring the
/// override [`analyze`] performs for the kernel-level lints.
fn circuit_for(spec: &prevv_ir::KernelSpec, circuit: &CircuitOptions) -> CircuitOptions {
    let mut eff = circuit.clone();
    if let (Some((depth, _)), ControllerModel::Queue { capacity }) =
        (spec.depth_hint(), &mut eff.controller)
    {
        *capacity = depth;
    }
    eff
}

/// Lints kernel source text including the PV1xx circuit lints: parses the
/// source, runs [`analyze`], then synthesizes the netlist (unchecked — the
/// point is to report, not refuse) and appends the [`lint_circuit`]
/// findings. Kernels that fail to parse report `PV000`; kernels that fail
/// structural synthesis keep their kernel-level findings only. This is what
/// `prevv-lint --circuit` runs per file.
pub fn lint_source_with_circuit(
    name: &str,
    source: &str,
    opts: &AnalyzeOptions,
    circuit: &CircuitOptions,
) -> Report {
    match prevv_ir::parse::parse_kernel(name, source) {
        Ok(spec) => {
            let mut report = analyze(&spec, opts);
            let synth_opts = SynthOptions {
                fake_tokens: opts.fake_tokens,
                ..SynthOptions::default()
            };
            if let Ok(synth) = prevv_ir::synthesize_with(&spec, &synth_opts) {
                report
                    .diagnostics
                    .extend(lint_circuit(&synth, &circuit_for(&spec, circuit)).diagnostics);
            }
            report.normalize();
            report
        }
        Err(e) => {
            let mut r = Report::default();
            r.push(
                Diagnostic::error(Code::Parse, e.message.clone())
                    .with_span(Some(prevv_ir::Span::point(e.at))),
            );
            r
        }
    }
}

/// Lints kernel source text including the PV4xx throughput pass (and,
/// when `circuit` is set, the PV1xx circuit lints): parses, runs
/// [`analyze`], synthesizes unchecked, and appends the perf findings.
/// Returns the report together with the [`PerfSummary`] when synthesis
/// succeeded. A `depth_q = N;` directive overrides the configured queue
/// depth here too, so `--fix`'s directive rewrite converges under the
/// same CLI flags. This is what `prevv-lint --perf` runs per file.
pub fn lint_source_with_perf(
    name: &str,
    source: &str,
    opts: &AnalyzeOptions,
    circuit: Option<&CircuitOptions>,
    perf_opts: &PerfOptions,
) -> (Report, Option<PerfSummary>) {
    match prevv_ir::parse::parse_kernel(name, source) {
        Ok(spec) => {
            let mut report = analyze(&spec, opts);
            let synth_opts = SynthOptions {
                fake_tokens: opts.fake_tokens,
                ..SynthOptions::default()
            };
            let mut perf_eff = perf_opts.clone();
            if let Some((depth, _)) = spec.depth_hint() {
                perf_eff.config.depth = depth;
            }
            let mut summary = None;
            if let Ok(synth) = prevv_ir::synthesize_with(&spec, &synth_opts) {
                if let Some(circuit) = circuit {
                    report
                        .diagnostics
                        .extend(lint_circuit(&synth, &circuit_for(&spec, circuit)).diagnostics);
                }
                summary = Some(lint_perf(&synth, &perf_eff, &mut report));
            }
            report.normalize();
            (report, summary)
        }
        Err(e) => {
            let mut r = Report::default();
            r.push(
                Diagnostic::error(Code::Parse, e.message.clone())
                    .with_span(Some(prevv_ir::Span::point(e.at))),
            );
            (r, None)
        }
    }
}

/// Why checked synthesis refused a kernel.
#[derive(Debug, Clone)]
pub enum AnalyzeError {
    /// The kernel failed structural validation before analysis could run.
    Kernel(KernelError),
    /// The analyzer found error-severity diagnostics; the full report (the
    /// errors plus any accompanying warnings/notes) is attached.
    Rejected(Report),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Kernel(e) => write!(f, "kernel error: {e}"),
            AnalyzeError::Rejected(r) => write!(
                f,
                "kernel rejected by static analysis: {} error(s): {}",
                r.count(Severity::Error),
                r.diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(|d| format!("{}[{}]", d.code, d.message))
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<KernelError> for AnalyzeError {
    fn from(e: KernelError) -> Self {
        AnalyzeError::Kernel(e)
    }
}

/// Checked synthesis with explicit options: runs [`analyze`], refuses the
/// kernel on any error-severity finding, otherwise synthesizes and returns
/// the circuit together with the (non-fatal) report.
///
/// # Errors
///
/// [`AnalyzeError::Rejected`] when the analyzer reports errors,
/// [`AnalyzeError::Kernel`] when the spec fails structural validation.
pub fn synthesize_with(
    spec: &KernelSpec,
    synth_opts: &SynthOptions,
    analyze_opts: &AnalyzeOptions,
) -> Result<(SynthesizedKernel, Report), AnalyzeError> {
    spec.validate()?;
    let mut report = analyze(spec, analyze_opts);
    if report.has_errors() {
        return Err(AnalyzeError::Rejected(report));
    }
    let mut synth = prevv_ir::synthesize_with(spec, synth_opts)?;
    // Value-invariant discharge (PV502): pairs absint proves disjoint over
    // the full iteration hull leave the arbiter's validated set — the
    // attached controller never compares them. Soundness rides on the
    // abstract domains (cross-checked against enumeration by the property
    // tests); the discharged pairs join `bypassed` so tooling sees them.
    if let Some(hull) = absint::hull_box(spec) {
        let discharged = absint::discharge_pairs(spec, &synth.deps, &synth.interface.pairs, &hull);
        if !discharged.is_empty() {
            synth
                .interface
                .pairs
                .retain(|p| !discharged.iter().any(|(d, _)| d == p));
            synth
                .bypassed
                .extend(discharged.into_iter().map(|(p, _)| p));
        }
    }
    let controller = analyze_opts
        .circuit_controller
        .unwrap_or(ControllerModel::Queue {
            capacity: analyze_opts.depth,
        });
    let circuit_report = lint_circuit(&synth, &CircuitOptions { controller });
    report.diagnostics.extend(circuit_report.diagnostics);
    if report.has_errors() {
        return Err(AnalyzeError::Rejected(report));
    }
    if let Some(protocol) = &analyze_opts.protocol {
        report
            .diagnostics
            .extend(protocol_report(spec, protocol).diagnostics);
        if report.has_errors() {
            return Err(AnalyzeError::Rejected(report));
        }
    }
    if let Some(perf_opts) = &analyze_opts.perf {
        lint_perf(&synth, perf_opts, &mut report);
    }
    report.normalize();
    Ok((synth, report))
}

/// Runs the PV2xx bounded model checker over an already-validated kernel
/// and returns its findings as a plain [`Report`]. An internal checker
/// failure (a kernel the abstract model cannot represent) is reported as a
/// `PV200` warning rather than a panic, so callers can always fold the
/// result into a larger report. This is what `prevv-lint --protocol` and
/// checked synthesis with [`AnalyzeOptions::protocol`] run.
pub fn protocol_report(spec: &KernelSpec, opts: &ProtocolOptions) -> Report {
    match modelcheck::check(spec, opts) {
        Ok(result) => {
            let mut r = result.report;
            r.normalize();
            r
        }
        Err(e) => {
            let mut r = Report::default();
            r.push(Diagnostic::warning(
                Code::ProtocolBound,
                format!("protocol model checker could not run: {e}"),
            ));
            r
        }
    }
}

/// Checked synthesis with default options; see [`synthesize_with`].
///
/// # Errors
///
/// See [`synthesize_with`].
pub fn synthesize(spec: &KernelSpec) -> Result<(SynthesizedKernel, Report), AnalyzeError> {
    synthesize_with(spec, &SynthOptions::default(), &AnalyzeOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::LoopLevel;
    use prevv_ir::{ArrayDecl, ArrayId, Expr, OpaqueFn, Stmt};

    fn parse(name: &str, src: &str) -> KernelSpec {
        prevv_ir::parse::parse_kernel(name, src).expect("parses")
    }

    #[test]
    fn pv001_flags_out_of_bounds_affine_access() {
        let src = "int a[8];\nfor (int i = 0; i < 8; ++i) {\n  a[i + 4] = i;\n}\n";
        let spec = parse("oob", src);
        let r = analyze(&spec, &AnalyzeOptions::default());
        assert!(r.has_errors());
        let d = r.with_code(Code::OutOfBounds)[0];
        assert_eq!(d.severity, Severity::Error);
        // The span points at the store target.
        let span = d.span.expect("store target span");
        assert_eq!(&src[span.start..span.end], "a[i + 4]");
        assert!(d.message.contains("out of bounds"));
    }

    #[test]
    fn pv001_respects_guards() {
        // The out-of-range index is only reachable when the guard passes,
        // and the guard never does.
        let src = "int a[8];\nfor (int i = 0; i < 8; ++i) {\n  if (i < 0) a[i + 8] = 1;\n}\n";
        let spec = parse("guarded-oob", src);
        let r = analyze(&spec, &AnalyzeOptions::default());
        assert!(r.with_code(Code::OutOfBounds).is_empty());
    }

    #[test]
    fn pv001_skips_runtime_indices() {
        let src = "int h[4];\nfor (int i = 0; i < 32; ++i) { h[h3_64(i)] += 1; }\n";
        let spec = parse("hash", src);
        let r = analyze(&spec, &AnalyzeOptions::default());
        // h3_64 yields 0..64, far beyond len 4, but runtime-dependent
        // indices wrap by design — not a static error.
        assert!(r.with_code(Code::OutOfBounds).is_empty());
    }

    #[test]
    fn pv002_is_a_note_with_fake_tokens_and_an_error_without() {
        let src =
            "int acc[4];\nfor (int i = 0; i < 48; ++i) {\n  if (i % 3 == 0) acc[1] += i;\n}\n";
        let spec = parse("guarded", src);
        let with = analyze(&spec, &AnalyzeOptions::default());
        let d = with.with_code(Code::DeadlockRisk);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Note);
        assert!(!with.has_errors());

        let without = analyze(
            &spec,
            &AnalyzeOptions {
                fake_tokens: false,
                ..AnalyzeOptions::default()
            },
        );
        let d = without.with_code(Code::DeadlockRisk);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(without.has_errors());
    }

    #[test]
    fn pv002_ignores_unambiguous_guarded_stores() {
        // Guarded, but no load ever conflicts: no pair, no deadlock hazard.
        let src = "int a[8];\nfor (int i = 0; i < 8; ++i) {\n  if (i % 2 == 0) a[i] = i;\n}\n";
        let spec = parse("benign", src);
        let r = analyze(
            &spec,
            &AnalyzeOptions {
                fake_tokens: false,
                ..AnalyzeOptions::default()
            },
        );
        assert!(r.with_code(Code::DeadlockRisk).is_empty());
    }

    #[test]
    fn pv003_depth_below_frontier_minimum_is_an_error() {
        let src = "int a[4];\nfor (int i = 0; i < 16; ++i) { a[0] += i; }\n";
        let spec = parse("accum", src);
        assert_eq!(spec.mem_ops_per_iter(), 2);
        let r = analyze(
            &spec,
            &AnalyzeOptions {
                depth: 1,
                ..AnalyzeOptions::default()
            },
        );
        let d = r.with_code(Code::QueueDepth);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn pv003_warns_below_the_matched_pair_recommendation() {
        // A heavy non-ambiguous statement inflates the iteration's token
        // time while the ambiguous accumulation stays cheap: the §V-A model
        // recommends more depth than the bare frontier minimum.
        let b = ArrayId(1);
        let a = ArrayId(0);
        let heavy = Expr::var(0)
            .mul(Expr::var(0))
            .mul(Expr::var(0))
            .mul(Expr::var(0))
            .mul(Expr::var(0))
            .mul(Expr::var(0));
        let spec = KernelSpec::new(
            "heavy",
            vec![LoopLevel::upto(16)],
            vec![ArrayDecl::zeroed("a", 4), ArrayDecl::zeroed("b", 16)],
            vec![
                Stmt::store(b, Expr::var(0), heavy),
                Stmt::store(
                    a,
                    Expr::lit(0),
                    Expr::load(a, Expr::lit(0)).add(Expr::lit(1)),
                ),
            ],
        )
        .expect("valid");
        let needed = spec.mem_ops_per_iter();
        let r = analyze(
            &spec,
            &AnalyzeOptions {
                depth: needed,
                ..AnalyzeOptions::default()
            },
        );
        let d = r.with_code(Code::QueueDepth);
        assert_eq!(d.len(), 1, "expected a depth warning: {:?}", r.diagnostics);
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].help.as_deref().unwrap_or("").contains("depth_q"));
        // A roomy depth silences it.
        let ok = analyze(
            &spec,
            &AnalyzeOptions {
                depth: 64,
                ..AnalyzeOptions::default()
            },
        );
        assert!(ok.with_code(Code::QueueDepth).is_empty());
    }

    #[test]
    fn pv004_reports_bypassed_pairs() {
        // a[i] += 1 over one level: load-before-store in the same iteration
        // only.
        let src = "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] += 1; }\n";
        let spec = parse("pure", src);
        let r = analyze(&spec, &AnalyzeOptions::default());
        let d = r.with_code(Code::DisjointPair);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Note);
        assert!(d[0].span.is_some(), "parsed kernels carry spans");
    }

    #[test]
    fn pv005_flags_unused_arrays_and_dead_stores() {
        // `b` is declared and never touched; the first store to a[0] is
        // overwritten by the second before anything reads it.
        let src =
            "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[0] = i;\n  a[0] = 7;\n}\n";
        let spec = parse("dead", src);
        let r = analyze(&spec, &AnalyzeOptions::default());
        let d = r.with_code(Code::DeadStore);
        assert_eq!(d.len(), 2, "unused array + dead store: {:?}", r.diagnostics);
        assert!(d.iter().any(|d| d.message.contains("never accessed")));
        assert!(d.iter().any(|d| d.message.contains("is dead")));
    }

    #[test]
    fn pv005_flags_never_executing_guards() {
        let src =
            "int a[8];\nfor (int i = 0; i < 8; ++i) {\n  if (i < 0) a[i] = 1;\n  a[i] = 2;\n}\n";
        let spec = parse("neverrun", src);
        let r = analyze(&spec, &AnalyzeOptions::default());
        assert!(r
            .with_code(Code::DeadStore)
            .iter()
            .any(|d| d.message.contains("never executes")));
    }

    #[test]
    fn pv005_final_contents_count_as_observed() {
        // Every store survives to the output: nothing is dead.
        let src = "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = i; }\n";
        let spec = parse("out", src);
        let r = analyze(&spec, &AnalyzeOptions::default());
        assert!(r.with_code(Code::DeadStore).is_empty());
    }

    #[test]
    fn pv006_reports_missed_reduction_only_when_disabled() {
        // Three consecutive ambiguous loads of `a` form a run.
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "runs",
            vec![LoopLevel::upto(4), LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(1))))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(2)))),
            )],
        )
        .expect("valid");
        let disabled = analyze(
            &spec,
            &AnalyzeOptions {
                pair_reduction: false,
                ..AnalyzeOptions::default()
            },
        );
        let d = disabled.with_code(Code::PairReduction);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("eliminate 2 of 4"));
        let enabled = analyze(&spec, &AnalyzeOptions::default());
        assert!(enabled.with_code(Code::PairReduction).is_empty());
    }

    #[test]
    fn checked_synthesis_rejects_errors_and_passes_clean_kernels() {
        let bad = parse(
            "oob",
            "int a[4];\nfor (int i = 0; i < 8; ++i) { a[i] = i; }\n",
        );
        match synthesize(&bad) {
            Err(AnalyzeError::Rejected(r)) => {
                assert!(r.has_errors());
                assert!(!r.with_code(Code::OutOfBounds).is_empty());
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        let good = parse(
            "inc",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] += 1; }\n",
        );
        let (synth, report) = synthesize(&good).expect("clean kernel synthesizes");
        assert!(!report.has_errors());
        assert!(!synth.bypassed.is_empty(), "PV004 pair is bypassed");
    }

    #[test]
    fn analyzer_handles_programmatic_kernels_without_spans() {
        let a = ArrayId(0);
        let idx = Expr::var(0).opaque(OpaqueFn::new(5, 8));
        let spec = KernelSpec::new(
            "prog",
            vec![LoopLevel::upto(8)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                idx.clone(),
                Expr::load(a, idx).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let r = analyze(&spec, &AnalyzeOptions::default());
        assert!(!r.has_errors());
        // Rendering and JSON must not panic without spans/source.
        let _ = r.render("prog", None);
        let _ = r.to_json(None);
    }
}
