//! Structured diagnostics: stable codes, severities, spans, and two render
//! targets — rustc-style text against the original `.pvk` source, and a
//! machine-readable JSON form for tooling.

use std::fmt;

use prevv_ir::span::{line_col, render_snippet};
use prevv_ir::Span;

/// Stable diagnostic codes. The numeric part never changes meaning across
/// versions; tools may match on [`Code::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `PV000` — the source failed to parse (CLI only; the analyzer proper
    /// operates on parsed kernels).
    Parse,
    /// `PV001` — an affine index provably leaves the array bounds.
    OutOfBounds,
    /// `PV002` — a guarded operation participates in an ambiguous pair
    /// (paper §V-C deadlock shape).
    DeadlockRisk,
    /// `PV003` — the configured premature-queue depth is insufficient.
    QueueDepth,
    /// `PV004` — an ambiguous pair is provably disjoint and the arbiter is
    /// bypassed for it.
    DisjointPair,
    /// `PV005` — a dead store or an unused array.
    DeadStore,
    /// `PV006` — pair reduction (paper §V-B) would help but is disabled.
    PairReduction,
    /// `PV101` — a channel with no producer or no consumer (dangling wire).
    DanglingChannel,
    /// `PV102` — a channel driven by more than one producer (or consumed by
    /// more than one component), which corrupts the handshake.
    MultiDrivenChannel,
    /// `PV103` — a handshake cycle with no elastic buffer on it: the
    /// structural-deadlock analogue of a combinational loop.
    UnbufferedCycle,
    /// `PV104` — premature-queue/arbiter capacity inconsistent with the
    /// circuit's maximum in-flight iteration frontier.
    FrontierCapacity,
    /// `PV105` — a component unreachable from any token source.
    UnreachableComponent,
    /// `PV200` — the protocol model checker hit its state or depth bound
    /// before exhausting the space: PV201–PV204 verdicts are incomplete.
    ProtocolBound,
    /// `PV201` — a reachable protocol state has no enabled transition and
    /// the kernel has not completed (protocol deadlock).
    ProtocolDeadlock,
    /// `PV202` — a reachable cycle squashes and replays the same iteration
    /// without the retired frontier advancing (squash livelock).
    SquashLivelock,
    /// `PV203` — on some interleaving an operation can never take a queue
    /// slot and no resident entry can retire (capacity wedge).
    QueueWedge,
    /// `PV204` — a §V-B pair-reduced representative reaches a state where
    /// its validation verdict differs from the unreduced set's.
    ReductionUnsound,
    /// `PV300` — the separation-logic prover left at least one ambiguous
    /// pair to the dynamic arbiter (the symbolic horizon).
    SeparationHorizon,
    /// `PV301` — a pair's access footprints are proven separate: no
    /// cross-iteration collision is possible, the pair never enters the
    /// model checker's validated set.
    ProvenDisjoint,
    /// `PV302` — a pair's access footprints provably coincide on every
    /// iteration pair (must-alias): the arbiter validation is guaranteed
    /// live, not defensive.
    MustAlias,
    /// `PV400` — the static steady-state initiation-interval bound of the
    /// synthesized circuit, with the critical cycle (or binding memory
    /// resource) that sets it.
    ThroughputBound,
    /// `PV401` — a zero-slack backpressure cycle: the critical cycle is
    /// capacity-bound and a buffer insertion would raise throughput.
    SlacklessCycle,
    /// `PV402` — throughput is bound by premature-queue/arbiter
    /// serialization rather than compute; a deeper queue shifts the
    /// bottleneck back to the datapath.
    QueueBound,
    /// `PV403` — the measured initiation interval diverged from the static
    /// prediction beyond tolerance (model self-check).
    ModelDivergence,
    /// `PV500` — the abstract interpreter proves an access out of bounds:
    /// its guard-refined value range (including indirect indices bounded
    /// through array initializers) escapes the array on a feasible
    /// iteration.
    RangeOutOfBounds,
    /// `PV501` — a guard predicate is infeasible over the whole iteration
    /// space: the statement is dead and can be removed.
    InfeasibleGuard,
    /// `PV502` — an ambiguous pair is discharged by value-range/congruence
    /// invariants that GCD/Banerjee cannot derive; the arbiter never needs
    /// to validate it.
    InvariantDischarge,
    /// `PV503` — the static premature-queue occupancy bound differs from
    /// the configured `depth_q` (the queue can never fill past the bound).
    OccupancyBound,
}

impl Code {
    /// The stable `PVxxx` string of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Parse => "PV000",
            Code::OutOfBounds => "PV001",
            Code::DeadlockRisk => "PV002",
            Code::QueueDepth => "PV003",
            Code::DisjointPair => "PV004",
            Code::DeadStore => "PV005",
            Code::PairReduction => "PV006",
            Code::DanglingChannel => "PV101",
            Code::MultiDrivenChannel => "PV102",
            Code::UnbufferedCycle => "PV103",
            Code::FrontierCapacity => "PV104",
            Code::UnreachableComponent => "PV105",
            Code::ProtocolBound => "PV200",
            Code::ProtocolDeadlock => "PV201",
            Code::SquashLivelock => "PV202",
            Code::QueueWedge => "PV203",
            Code::ReductionUnsound => "PV204",
            Code::SeparationHorizon => "PV300",
            Code::ProvenDisjoint => "PV301",
            Code::MustAlias => "PV302",
            Code::ThroughputBound => "PV400",
            Code::SlacklessCycle => "PV401",
            Code::QueueBound => "PV402",
            Code::ModelDivergence => "PV403",
            Code::RangeOutOfBounds => "PV500",
            Code::InfeasibleGuard => "PV501",
            Code::InvariantDischarge => "PV502",
            Code::OccupancyBound => "PV503",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action needed.
    Note,
    /// Suspicious but not fatal; synthesis proceeds.
    Warning,
    /// The kernel must not be synthesized as configured.
    Error,
}

impl Severity {
    /// Lower-case label used in renders (`error`, `warning`, `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A machine-applicable source edit attached to a diagnostic: replace the
/// bytes of `span` with `replacement`. Suggestions are only attached when
/// the fix is semantics-preserving (or is exactly what the diagnostic asks
/// for), so `prevv-lint --fix` may apply them without review; the fixed
/// source must re-parse and re-lint clean of the originating code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// Byte range of the original source to replace.
    pub span: Span,
    /// Replacement text (may be empty: a deletion).
    pub replacement: String,
    /// One-line description of what applying the edit does.
    pub label: String,
}

impl Suggestion {
    /// A new suggestion replacing `span` with `replacement`.
    pub fn new(span: Span, replacement: impl Into<String>, label: impl Into<String>) -> Self {
        Suggestion {
            span,
            replacement: replacement.into(),
            label: label.into(),
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Source location, when the kernel was parsed from text.
    pub span: Option<Span>,
    /// Primary message (one line).
    pub message: String,
    /// Optional remediation hint.
    pub help: Option<String>,
    /// Optional machine-applicable fix (see [`Suggestion`]).
    pub suggestion: Option<Suggestion>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span: None,
            message: message.into(),
            help: None,
            suggestion: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Self::error(code, message)
        }
    }

    /// A note-severity diagnostic.
    pub fn note(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Self::error(code, message)
        }
    }

    /// Attaches a source span (builder style).
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Attaches a help line (builder style).
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attaches a machine-applicable fix (builder style).
    pub fn with_suggestion(mut self, suggestion: Suggestion) -> Self {
        self.suggestion = Some(suggestion);
        self
    }

    /// Renders this diagnostic rustc-style against the original source.
    /// Without a span (or without source text) only the header is produced.
    pub fn render(&self, origin: &str, source: Option<&str>) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        match (self.span, source) {
            (Some(span), Some(src)) => out.push_str(&render_snippet(src, origin, span)),
            _ => out.push_str(&format!(" --> {origin}\n")),
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        if let Some(h) = &self.help {
            out.push_str(&format!(" help: {h}\n"));
        }
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(
                " fix: {} (machine-applicable: `prevv-lint --fix`)\n",
                s.label
            ));
        }
        out
    }

    /// The machine-readable JSON object for this diagnostic. When `source`
    /// is available the span gains 1-based `line`/`column` fields.
    pub fn to_json(&self, source: Option<&str>) -> String {
        let mut fields = vec![
            format!("\"code\":\"{}\"", self.code),
            format!("\"severity\":\"{}\"", self.severity),
            format!("\"message\":{}", json_string(&self.message)),
        ];
        if let Some(h) = &self.help {
            fields.push(format!("\"help\":{}", json_string(h)));
        }
        if let Some(s) = &self.suggestion {
            fields.push(format!(
                "\"suggestion\":{{\"start\":{},\"end\":{},\"replacement\":{},\"label\":{}}}",
                s.span.start,
                s.span.end,
                json_string(&s.replacement),
                json_string(&s.label)
            ));
        }
        if let Some(span) = self.span {
            let mut s = format!("\"start\":{},\"end\":{}", span.start, span.end);
            if let Some(src) = source {
                let (line, col) = line_col(src, span.start);
                s.push_str(&format!(",\"line\":{line},\"column\":{col}"));
            }
            fields.push(format!("\"span\":{{{s}}}"));
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// All diagnostics of one analyzer run, in emission order (lints run in
/// code order, so PV001 findings precede PV002, and so on).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one diagnostic is an error — the kernel must be
    /// refused by checked synthesis.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics with the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Diagnostics carrying the given code.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Canonicalizes the report for rendering: diagnostics are sorted by
    /// (span, code) — spanless file-level findings last — and exact
    /// duplicates (same code, span, severity, and message) emitted by
    /// overlapping passes collapse to one. The sort is stable, so
    /// equally-placed findings keep their emission order, and every lint
    /// entry point calls this before returning — text and JSON output are
    /// deterministic regardless of pass scheduling.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.span.map_or(usize::MAX, |s| s.start),
                    d.span.map_or(usize::MAX, |s| s.end),
                    d.code.as_str(),
                )
            };
            key(a).cmp(&key(b)).then_with(|| a.message.cmp(&b.message))
        });
        self.diagnostics
            .dedup_by(|a, b| a.code == b.code && a.span == b.span && a.message == b.message);
    }

    /// Renders every diagnostic rustc-style, followed by a one-line tally.
    pub fn render(&self, origin: &str, source: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(origin, source));
        }
        out.push_str(&format!(
            "{origin}: {} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        ));
        out
    }

    /// The machine-readable JSON object for the whole report.
    pub fn to_json(&self, source: Option<&str>) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(|d| d.to_json(source)).collect();
        format!(
            "{{\"errors\":{},\"warnings\":{},\"notes\":{},\"diagnostics\":[{}]}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            items.join(",")
        )
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Code::Parse.as_str(), "PV000");
        assert_eq!(Code::OutOfBounds.as_str(), "PV001");
        assert_eq!(Code::DeadlockRisk.as_str(), "PV002");
        assert_eq!(Code::QueueDepth.as_str(), "PV003");
        assert_eq!(Code::DisjointPair.as_str(), "PV004");
        assert_eq!(Code::DeadStore.as_str(), "PV005");
        assert_eq!(Code::PairReduction.as_str(), "PV006");
        assert_eq!(Code::DanglingChannel.as_str(), "PV101");
        assert_eq!(Code::MultiDrivenChannel.as_str(), "PV102");
        assert_eq!(Code::UnbufferedCycle.as_str(), "PV103");
        assert_eq!(Code::FrontierCapacity.as_str(), "PV104");
        assert_eq!(Code::UnreachableComponent.as_str(), "PV105");
        assert_eq!(Code::ProtocolBound.as_str(), "PV200");
        assert_eq!(Code::ProtocolDeadlock.as_str(), "PV201");
        assert_eq!(Code::SquashLivelock.as_str(), "PV202");
        assert_eq!(Code::QueueWedge.as_str(), "PV203");
        assert_eq!(Code::ReductionUnsound.as_str(), "PV204");
        assert_eq!(Code::SeparationHorizon.as_str(), "PV300");
        assert_eq!(Code::ProvenDisjoint.as_str(), "PV301");
        assert_eq!(Code::MustAlias.as_str(), "PV302");
        assert_eq!(Code::ThroughputBound.as_str(), "PV400");
        assert_eq!(Code::SlacklessCycle.as_str(), "PV401");
        assert_eq!(Code::QueueBound.as_str(), "PV402");
        assert_eq!(Code::ModelDivergence.as_str(), "PV403");
        assert_eq!(Code::RangeOutOfBounds.as_str(), "PV500");
        assert_eq!(Code::InfeasibleGuard.as_str(), "PV501");
        assert_eq!(Code::InvariantDischarge.as_str(), "PV502");
        assert_eq!(Code::OccupancyBound.as_str(), "PV503");
    }

    #[test]
    fn normalize_sorts_by_span_and_dedupes_exact_duplicates() {
        let mut r = Report::default();
        r.push(Diagnostic::note(Code::ProtocolBound, "horizon"));
        r.push(Diagnostic::warning(Code::DeadStore, "dead").with_span(Some(Span::new(40, 44))));
        r.push(Diagnostic::error(Code::OutOfBounds, "oob").with_span(Some(Span::new(10, 14))));
        // The same finding from an overlapping pass: collapses.
        r.push(Diagnostic::error(Code::OutOfBounds, "oob").with_span(Some(Span::new(10, 14))));
        // Same code and span, different message: both survive.
        r.push(Diagnostic::warning(Code::ProtocolBound, "budget hit").with_span(None));
        r.normalize();
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["PV001", "PV005", "PV200", "PV200"]);
        assert_eq!(
            r.with_code(Code::OutOfBounds).len(),
            1,
            "duplicate collapsed"
        );
        assert_eq!(r.with_code(Code::ProtocolBound).len(), 2);
    }

    #[test]
    fn suggestion_renders_and_serializes() {
        let src = "int a[4];\nfor (int i = 0; i < 4; ++i) {\n  if (i > 9) a[0] += 1;\n}\n";
        let at = src.find("if").expect("present");
        let end = src.find("1;").expect("present") + 2;
        let d = Diagnostic::warning(Code::InfeasibleGuard, "guard is never true")
            .with_span(Some(Span::new(at, end)))
            .with_suggestion(Suggestion::new(
                Span::new(at, end),
                "",
                "remove the dead statement",
            ));
        let text = d.render("t.pvk", Some(src));
        assert!(text.contains("warning[PV501]"));
        assert!(text.contains("fix: remove the dead statement"));
        let j = d.to_json(Some(src));
        assert!(j.contains("\"suggestion\":{\"start\":"));
        assert!(j.contains("\"replacement\":\"\""));
        assert!(j.contains("\"label\":\"remove the dead statement\""));
    }

    #[test]
    fn report_tallies_severities() {
        let mut r = Report::default();
        r.push(Diagnostic::error(Code::OutOfBounds, "oob"));
        r.push(Diagnostic::warning(Code::DeadStore, "dead"));
        r.push(Diagnostic::note(Code::DisjointPair, "safe"));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Note), 1);
        assert_eq!(r.with_code(Code::DeadStore).len(), 1);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn diagnostic_renders_with_span_and_source() {
        let src = "int a[4];\nfor (int i = 0; i < 4; ++i) {\n  a[i + 9] = 1;\n}\n";
        let at = src.find("i + 9").expect("present");
        let d = Diagnostic::error(Code::OutOfBounds, "index out of bounds")
            .with_span(Some(Span::new(at, at + 5)))
            .with_help("shrink the index");
        let text = d.render("t.pvk", Some(src));
        assert!(text.contains("error[PV001]: index out of bounds"));
        assert!(text.contains("t.pvk:3:5"));
        assert!(text.contains("^^^^^"));
        assert!(text.contains("help: shrink the index"));
    }

    #[test]
    fn diagnostic_json_carries_line_and_column() {
        let src = "int a[4];\nfor (int i = 0; i < 4; ++i) {\n  a[i] = 1;\n}\n";
        let d = Diagnostic::note(Code::DisjointPair, "bypassed").with_span(Some(Span::new(42, 46)));
        let j = d.to_json(Some(src));
        assert!(j.contains("\"code\":\"PV004\""));
        assert!(j.contains("\"severity\":\"note\""));
        assert!(j.contains("\"start\":42"));
        assert!(j.contains("\"line\":"));
        let no_src = d.to_json(None);
        assert!(no_src.contains("\"start\":42") && !no_src.contains("\"line\":"));
    }
}
