//! Symbolic dependence engine — GCD and Banerjee-bounds tests over affine
//! index expressions. **This module is the one documented entry point**;
//! the implementation lives in `prevv_ir::symdep` only to break a crate
//! cycle (the dependence pass [`prevv_ir::depend`] needs it as a fast
//! path, and this crate depends on `prevv-ir`, not vice versa). Downstream
//! code — lints, the model checker, external tools — should import from
//! `prevv_analyze::symdep` and treat the `prevv_ir` path as private
//! plumbing.
//!
//! It is analyzer machinery through and through: PV001 uses
//! [`AffineForm::range`] to bound indices over unenumerable iteration
//! spaces, PV004's bypass notes are backed by [`classify_accesses`]
//! verdicts, and the PV2xx model checker's §V-B reduction set is computed
//! against the same [`PairClass`] proofs.
//!
//! The contract is one-sided: a [`PairClass::Disjoint`] or
//! [`PairClass::SameIterationOnly`] verdict is a *proof*, while
//! [`PairClass::Unknown`] merely means "not proved" — the caller falls back
//! to brute-force enumeration (below [`prevv_ir::depend::ENUM_LIMIT`]) or
//! stays conservative. The property tests in `tests/analyzer_properties.rs`
//! hold the engine to exactly this contract against the enumerating oracle.

/// An affine combination of induction variables plus a constant,
/// `Σ coeffs[k]·i_k + constant`, extracted from an index [`prevv_ir::Expr`]
/// by [`AffineForm::from_expr`]. The envelope returned by
/// [`AffineForm::range`] is exact over rectangular iteration spaces.
#[doc(alias = "affine")]
#[doc(alias = "linear-index")]
pub use prevv_ir::symdep::AffineForm;

/// The three-valued dependence verdict: `Disjoint` and `SameIterationOnly`
/// are proofs, `Unknown` is an abstention.
#[doc(alias = "dependence")]
#[doc(alias = "alias-analysis")]
pub use prevv_ir::symdep::PairClass;

/// Classifies one pair of affine accesses via the GCD test and the
/// Banerjee bounds over the given rectangular iteration bounds.
#[doc(alias = "GCD")]
#[doc(alias = "banerjee")]
pub use prevv_ir::symdep::classify_pair;

/// Classifies a load/store access pair straight from kernel expressions,
/// falling back to [`PairClass::Unknown`] when either index is non-affine.
#[doc(alias = "classify")]
pub use prevv_ir::symdep::classify_accesses;

/// The rectangular iteration-space bounds of a loop nest, if every level
/// is affine-bounded; the common precondition of the tests above.
#[doc(alias = "iteration-space")]
pub use prevv_ir::symdep::rect_bounds;
