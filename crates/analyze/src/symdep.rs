//! Symbolic dependence engine — GCD and Banerjee-bounds tests over affine
//! index expressions.
//!
//! The engine itself lives in `prevv_ir::symdep` so that the dependence
//! pass ([`prevv_ir::depend`]) can use it as its fast path without a
//! dependency cycle (this crate depends on `prevv-ir`, not vice versa);
//! this module re-exports it under the analyzer's namespace because it is
//! analyzer machinery: PV001 uses [`AffineForm::range`] to bound indices
//! over unenumerable iteration spaces, and PV004's bypass notes are backed
//! by [`classify_accesses`] verdicts.
//!
//! The contract is one-sided: a [`PairClass::Disjoint`] or
//! [`PairClass::SameIterationOnly`] verdict is a *proof*, while
//! [`PairClass::Unknown`] merely means "not proved" — the caller falls back
//! to brute-force enumeration (below [`prevv_ir::depend::ENUM_LIMIT`]) or
//! stays conservative. The property tests in `tests/analyzer_properties.rs`
//! hold the engine to exactly this contract against the enumerating oracle.

pub use prevv_ir::symdep::{
    classify_accesses, classify_pair, rect_bounds, AffineForm, PairClass,
};
