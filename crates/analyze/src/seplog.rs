//! PV3xx — a separation-logic-style disjointness prover over affine access
//! footprints.
//!
//! The dependence analysis in `prevv_ir::depend` decides which load/store
//! pairs the arbiter must validate. This pass re-examines every conservative
//! pair *symbolically*, in the spirit of separation logic's heap
//! disjointness assertions: each access is abstracted to its affine
//! footprint (the set of raw addresses its index form can take over the
//! iteration hull), and the prover tries to show the two footprints are
//! **separate** — either disjoint outright, or overlapping only where the
//! in-order commit already serializes them.
//!
//! Three verdicts, three codes, all notes:
//!
//! * **PV301 (proven separate)** — the footprints are disjoint over the
//!   hull, or every collision is same-iteration and program-order protected
//!   (load sequenced before the store). Such a pair never needs the arbiter
//!   and never enters the model checker's validated set: a whole pair-class
//!   is discharged before exploration starts.
//! * **PV302 (must-alias)** — the two footprints are the *same* affine
//!   function, so they collide on every traversal: the arbiter validation
//!   for this pair is live, not defensive. Constant footprints (`a[0]`)
//!   additionally collide across iterations — the canonical squash-replay
//!   generator.
//! * **PV300 (separation horizon)** — at least one pair resisted symbolic
//!   discharge (runtime-dependent index, wrapping range); the dynamic
//!   arbiter and the PV2xx bounded checker remain the only line of defense
//!   for it.
//!
//! The prover rides on [`prevv_ir::symdep::classify_accesses`], which since
//! the hull-bounds extension also covers triangular nests — strictly more
//! than the GCD/Banerjee rectangular fast path `refine_pairs` started with.
//! Its verdicts are one-sided (proof or silence) and are cross-checked
//! against brute-force enumeration by the property tests in
//! `tests/analyzer_properties.rs`.

use prevv_ir::depend::{AmbiguousPair, Dependences};
use prevv_ir::symdep::{classify_accesses, AffineForm, PairClass};
use prevv_ir::KernelSpec;

use crate::absint;
use crate::diag::{Code, Diagnostic, Report};
use crate::lints::op_spans;

/// The prover's verdict for one conservative load/store pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Separation {
    /// Proven: the footprints never overlap, in any pair of iterations.
    DisjointFootprints,
    /// Proven: every overlap is same-iteration with the load sequenced
    /// before the store — the in-order commit serializes it.
    OrderProtected,
    /// Proven: the footprints are the same affine function; the pair
    /// collides on every traversal (and across iterations when constant).
    MustAlias,
    /// No symbolic proof; the pair stays with the dynamic arbiter.
    Residual,
}

impl Separation {
    /// Pairs the arbiter (and the model checker) no longer needs.
    pub fn discharged(self) -> bool {
        matches!(
            self,
            Separation::DisjointFootprints | Separation::OrderProtected
        )
    }
}

/// Aggregate pair-class counts, surfaced in the model checker's stats and
/// the `prevv-lint` JSON summary so the discharge is visible to tooling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeparationStats {
    /// Conservative ambiguous pairs found by dependence analysis.
    pub conservative: usize,
    /// Pairs the prover discharged (PV301).
    pub discharged: usize,
    /// Pairs proven must-alias (PV302) — validated, and provably live.
    pub must_alias: usize,
    /// Pairs with no symbolic verdict — validated defensively.
    pub residual: usize,
}

/// Classifies every conservative pair. The order matches `deps.pairs`.
pub fn classify_pairs(spec: &KernelSpec, deps: &Dependences) -> Vec<(AmbiguousPair, Separation)> {
    let levels = spec.levels.len();
    deps.pairs
        .iter()
        .map(|&pair| {
            let load = &deps.ops[pair.load];
            let store = &deps.ops[pair.store];
            let verdict = match classify_accesses(spec, &load.index, &store.index, load.array) {
                PairClass::Disjoint => Separation::DisjointFootprints,
                PairClass::SameIterationOnly if load.seq < store.seq => Separation::OrderProtected,
                _ => {
                    // Identical affine forms must-alias even when the raw
                    // range wraps: equal raw values stay equal after
                    // `rem_euclid`.
                    match (
                        AffineForm::from_expr(&load.index, levels),
                        AffineForm::from_expr(&store.index, levels),
                    ) {
                        (Some(a), Some(b)) if a == b => Separation::MustAlias,
                        _ => Separation::Residual,
                    }
                }
            };
            (pair, verdict)
        })
        .collect()
}

/// Aggregate counts over [`classify_pairs`].
pub fn separation_stats(spec: &KernelSpec, deps: &Dependences) -> SeparationStats {
    let mut stats = SeparationStats {
        conservative: deps.pairs.len(),
        ..SeparationStats::default()
    };
    for (_, verdict) in classify_pairs(spec, deps) {
        match verdict {
            Separation::DisjointFootprints | Separation::OrderProtected => stats.discharged += 1,
            Separation::MustAlias => stats.must_alias += 1,
            Separation::Residual => stats.residual += 1,
        }
    }
    stats
}

/// The lint pass: one PV301 note per discharged pair, one PV302 note per
/// must-alias pair, and a single PV300 horizon note when anything remains
/// for the dynamic arbiter.
///
/// Pairs the affine prover cannot discharge get a second chance with the
/// [`absint`] value domains over the full iteration hull: guard-refined
/// footprints that are disjoint by interval or congruence (e.g. a store
/// guarded to even iterations against a load guarded to odd ones) become
/// PV502 notes and stop counting against the separation horizon.
pub(crate) fn check_separation(spec: &KernelSpec, deps: &Dependences, report: &mut Report) {
    let spans = op_spans(spec, &deps.ops);
    let verdicts = classify_pairs(spec, deps);
    let hull = absint::hull_box(spec);
    let mut residual = 0usize;
    for (pair, verdict) in &verdicts {
        let name = &spec.arrays[deps.ops[pair.load].array.0].name;
        let span = spans[pair.load].or(spans[pair.store]);
        if !verdict.discharged() {
            if let Some(reason) = hull
                .as_deref()
                .and_then(|b| absint::discharge_pair(spec, deps, *pair, b))
            {
                report.push(
                    Diagnostic::note(
                        Code::InvariantDischarge,
                        format!(
                            "value invariants discharge the load/store pair on `{name}`: \
                             {} — the pair leaves the arbiter's validated set",
                            reason.describe()
                        ),
                    )
                    .with_span(span),
                );
                continue;
            }
        }
        match verdict {
            Separation::DisjointFootprints => report.push(
                Diagnostic::note(
                    Code::ProvenDisjoint,
                    format!(
                        "load/store footprints on `{name}` are proven separate: the affine \
                         envelopes never overlap, in any pair of iterations"
                    ),
                )
                .with_span(span),
            ),
            Separation::OrderProtected => report.push(
                Diagnostic::note(
                    Code::ProvenDisjoint,
                    format!(
                        "load/store footprints on `{name}` are proven separate: every overlap \
                         is same-iteration and the load is sequenced before the store, which \
                         the in-order commit serializes"
                    ),
                )
                .with_span(span),
            ),
            Separation::MustAlias => {
                residual += 1;
                report.push(
                    Diagnostic::note(
                        Code::MustAlias,
                        format!(
                            "load/store footprints on `{name}` must-alias: both follow the \
                             same affine index function, so the arbiter validation for this \
                             pair fires on every traversal"
                        ),
                    )
                    .with_span(span),
                );
            }
            Separation::Residual => residual += 1,
        }
    }
    if residual > 0 {
        report.push(
            Diagnostic::note(
                Code::SeparationHorizon,
                format!(
                    "separation horizon: {residual} of {} ambiguous pair(s) resist symbolic \
                     discharge; the dynamic arbiter validates them and the PV2xx checker \
                     explores their interleavings",
                    verdicts.len()
                ),
            )
            .with_help(
                "runtime-dependent or wrapping index functions have no affine footprint; \
                 only the bounded model checker can cover them",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_ir::depend::analyze;
    use prevv_ir::parse::parse_kernel;

    fn verdicts(src: &str) -> Vec<Separation> {
        let spec = parse_kernel("t", src).expect("parses");
        let deps = analyze(&spec);
        classify_pairs(&spec, &deps)
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    #[test]
    fn order_protected_accumulator_is_discharged() {
        let v = verdicts("int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + 1; }");
        assert_eq!(v, vec![Separation::OrderProtected]);
    }

    #[test]
    fn shifted_streams_are_discharged_before_the_prover() {
        // `a[i + 8]` vs `a[i]`: `depend::analyze` runs the same
        // `classify_accesses` proof and drops outright-disjoint pairs from
        // the conservative set, so nothing is left for the prover — the
        // `DisjointFootprints` arm is upstream-subsumed (defense in depth
        // should the dependence policy ever become more conservative).
        let spec = parse_kernel(
            "t",
            "int a[16];\nfor (int i = 0; i < 8; ++i) { a[i + 8] = a[i] + 1; }",
        )
        .expect("parses");
        let deps = analyze(&spec);
        assert!(
            deps.pairs.is_empty(),
            "fully disjoint footprints never reach the prover"
        );
        assert!(classify_pairs(&spec, &deps).is_empty());
    }

    #[test]
    fn constant_cell_must_aliases() {
        let v = verdicts("int a[4];\nfor (int i = 0; i < 8; ++i) { a[0] = a[0] + 1; }");
        assert_eq!(v, vec![Separation::MustAlias]);
    }

    #[test]
    fn runtime_indices_stay_residual() {
        let spec = parse_kernel(
            "t",
            "int a[16];\nint b[8];\nfor (int i = 0; i < 8; ++i) { a[b[i]] = a[b[i]] + 5; }",
        )
        .expect("parses");
        let deps = analyze(&spec);
        let stats = separation_stats(&spec, &deps);
        assert_eq!(stats.conservative, stats.discharged + stats.residual);
        assert!(stats.residual >= 1, "the data-dependent pair stays");
    }

    #[test]
    fn fig2a_discharges_three_pairs_symbolically() {
        let src = "int a[16];\nint b[8] = {2, 5, 2, 7, 2, 1, 5, 2};\n\
                   for (int i = 0; i < 8; ++i) { a[b[i]] = a[b[i]] + 5; b[i] = b[i] + 3; }";
        let spec = parse_kernel("fig2a", src).expect("parses");
        let deps = analyze(&spec);
        let stats = separation_stats(&spec, &deps);
        assert_eq!(stats.conservative, 4);
        assert_eq!(stats.discharged, 3, "the three affine b pairs");
        assert_eq!(stats.residual, 1, "the data-dependent a pair");
    }

    #[test]
    fn parity_guarded_pair_is_value_discharged_not_residual() {
        // Both accesses follow the same affine index `i`, so the affine
        // prover says must-alias — but the guards confine the store to even
        // iterations and the load to odd ones, and the congruence domain
        // proves the footprints disjoint (PV502, no horizon note).
        let spec = parse_kernel(
            "parity",
            "int a[8];\nint s[8];\nfor (int i = 0; i < 8; ++i) {\n  \
             if (i % 2 == 0) a[i] = i;\n  if (i % 2 == 1) s[i] = a[i]; }",
        )
        .expect("parses");
        let deps = analyze(&spec);
        let mut report = Report::default();
        check_separation(&spec, &deps, &mut report);
        assert_eq!(report.with_code(Code::InvariantDischarge).len(), 1);
        assert!(report.with_code(Code::MustAlias).is_empty());
        assert!(report.with_code(Code::SeparationHorizon).is_empty());
    }

    #[test]
    fn lint_emits_horizon_note_only_when_pairs_remain() {
        let spec = parse_kernel(
            "t",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + 1; }",
        )
        .expect("parses");
        let deps = analyze(&spec);
        let mut report = Report::default();
        check_separation(&spec, &deps, &mut report);
        assert_eq!(report.with_code(Code::ProvenDisjoint).len(), 1);
        assert!(report.with_code(Code::SeparationHorizon).is_empty());

        let spec = parse_kernel(
            "t",
            "int a[4];\nfor (int i = 0; i < 8; ++i) { a[0] = a[0] + 1; }",
        )
        .expect("parses");
        let deps = analyze(&spec);
        let mut report = Report::default();
        check_separation(&spec, &deps, &mut report);
        assert_eq!(report.with_code(Code::MustAlias).len(), 1);
        assert_eq!(report.with_code(Code::SeparationHorizon).len(), 1);
    }
}
