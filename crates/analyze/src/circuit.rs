//! PV1xx circuit-level verification: structural lints over a synthesized
//! [`Netlist`].
//!
//! The PV0xx lints analyze the *kernel*; nothing there protects against a
//! malformed *circuit* — a dangling channel, a multiply-driven channel, or a
//! handshake cycle with no elastic buffer, which only surface as runtime
//! stalls or wrong golden traces. This pass promotes those properties to a
//! pre-simulation static check, using the graph-introspection API of
//! `prevv-dataflow` ([`Netlist::channel_endpoints`]) to view the netlist as
//! a directed graph: component → channel → component.
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | PV101 | error    | channel with no producer or no consumer |
//! | PV102 | error    | channel with multiple producers or consumers |
//! | PV103 | error    | handshake cycle with no elastic buffer (structural deadlock) |
//! | PV104 | error/warn | controller capacity inconsistent with the in-flight iteration frontier |
//! | PV105 | warning  | component unreachable from any token source |
//!
//! ## The channel-graph model
//!
//! Each component is a node; every channel with a producer and a consumer
//! contributes an edge producer → consumer. A node's *capacity*
//! ([`Component::capacity`](prevv_dataflow::Component::capacity)) is its
//! elastic storage: a positive capacity means output `valid` and input
//! `ready` come from registers, so the node breaks any handshake cycle it
//! sits on. A strongly connected component in which **every** node has
//! capacity zero is a combinational handshake loop: each node's `valid`
//! waits on its own `ready` through the cycle, the fixpoint never fires a
//! transfer, and the circuit deadlocks on the first token — hence PV103 is
//! an error, the elastic-circuit analogue of a combinational loop.
//!
//! ## Modeling the controller
//!
//! A freshly synthesized kernel leaves its memory ports *open* by design
//! (the controller is attached later), so the port channels would trip
//! PV101 vacuously. [`lint_circuit`] therefore closes them with a virtual
//! controller node per [`ControllerModel`]: `Direct` is a combinational
//! memory (capacity 0 — a load result that feeds a store input of the same
//! memory forms a zero-slack loop), `Queue` is a premature queue / LSQ of
//! the given capacity, and `None` leaves the ports open and exempts exactly
//! those channels from PV101/PV105.

use std::collections::HashSet;

use prevv_core::PrevvConfig;
use prevv_dataflow::{ChannelId, Netlist, NodeId};
use prevv_ir::SynthesizedKernel;

use crate::diag::{Code, Diagnostic, Report};

/// How [`lint_circuit`] models the not-yet-attached memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerModel {
    /// No controller: port channels stay open and are exempt from PV101;
    /// PV104/PV105 are skipped (there is nothing to size and the load
    /// results have no producer to be reached from).
    None,
    /// A combinational direct memory (capacity 0): stores apply and loads
    /// answer in the same handshake instant, so the virtual node does not
    /// break cycles through memory.
    Direct,
    /// A premature queue / LSQ holding up to `capacity` operations.
    Queue {
        /// Operation slots (`depth_q` for PreVV, load+store depth for LSQ).
        capacity: usize,
    },
}

/// Options of the circuit pass.
#[derive(Debug, Clone)]
pub struct CircuitOptions {
    /// Controller model closing the open memory ports.
    pub controller: ControllerModel,
}

impl Default for CircuitOptions {
    fn default() -> Self {
        CircuitOptions {
            controller: ControllerModel::Queue {
                capacity: PrevvConfig::default().depth,
            },
        }
    }
}

/// Index of the virtual controller node, when present.
const CONTROLLER: &str = "<controller>";

/// The directed channel graph the lints run on: the netlist's components
/// plus, optionally, one virtual controller node closing the memory ports.
struct CircuitGraph {
    /// `label(type)` per node, for diagnostics.
    names: Vec<String>,
    /// Elastic storage per node.
    caps: Vec<usize>,
    /// Nodes with no input channels (token sources).
    is_source: Vec<bool>,
    /// `producers[ch]` / `consumers[ch]` as node indices.
    producers: Vec<Vec<usize>>,
    consumers: Vec<Vec<usize>>,
    /// Channels exempt from connectivity checks (open ports under
    /// [`ControllerModel::None`]).
    exempt: HashSet<u32>,
}

impl CircuitGraph {
    fn from_netlist(net: &Netlist) -> Self {
        let ends = net.channel_endpoints();
        let to_idx = |v: &[NodeId]| v.iter().map(|n| n.index()).collect::<Vec<_>>();
        CircuitGraph {
            names: net
                .iter()
                .map(|(_, l, c)| format!("{l}({})", c.type_name()))
                .collect(),
            caps: net.iter().map(|(_, _, c)| c.capacity()).collect(),
            is_source: net
                .iter()
                .map(|(_, _, c)| c.ports().inputs.is_empty())
                .collect(),
            producers: ends.producers.iter().map(|v| to_idx(v)).collect(),
            consumers: ends.consumers.iter().map(|v| to_idx(v)).collect(),
            exempt: HashSet::new(),
        }
    }

    /// Adds one extra node consuming `inputs` and producing `outputs`.
    fn add_virtual(
        &mut self,
        name: &str,
        capacity: usize,
        inputs: &[ChannelId],
        outputs: &[ChannelId],
    ) {
        let idx = self.names.len();
        self.names.push(name.to_string());
        self.caps.push(capacity);
        self.is_source.push(inputs.is_empty());
        for ch in inputs {
            self.consumers[ch.index()].push(idx);
        }
        for ch in outputs {
            self.producers[ch.index()].push(idx);
        }
    }

    fn channel_count(&self) -> usize {
        self.producers.len()
    }

    /// PV101 + PV102: every non-exempt channel needs exactly one producer
    /// and one consumer.
    fn check_channels(&self, report: &mut Report) {
        for ch in 0..self.channel_count() {
            if self.exempt.contains(&(ch as u32)) {
                continue;
            }
            let prods = &self.producers[ch];
            let cons = &self.consumers[ch];
            let describe = |nodes: &[usize]| {
                nodes
                    .iter()
                    .map(|&n| format!("`{}`", self.names[n]))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            if prods.is_empty() {
                let ctx = if cons.is_empty() {
                    "no consumer either".to_string()
                } else {
                    format!("consumed by {}", describe(cons))
                };
                report.push(
                    Diagnostic::error(
                        Code::DanglingChannel,
                        format!("channel c{ch} has no producer ({ctx})"),
                    )
                    .with_help("every channel must be driven by exactly one component output"),
                );
            } else if prods.len() > 1 {
                report.push(
                    Diagnostic::error(
                        Code::MultiDrivenChannel,
                        format!(
                            "channel c{ch} is driven by {} producers: {}",
                            prods.len(),
                            describe(prods)
                        ),
                    )
                    .with_help("merge the drivers explicitly (Merge/Mux) — shared wires corrupt the handshake"),
                );
            }
            if cons.is_empty() {
                if !prods.is_empty() {
                    report.push(
                        Diagnostic::error(
                            Code::DanglingChannel,
                            format!(
                                "channel c{ch} has no consumer (produced by {})",
                                describe(prods)
                            ),
                        )
                        .with_help("attach a Sink if the value is intentionally discarded"),
                    );
                }
            } else if cons.len() > 1 {
                report.push(
                    Diagnostic::error(
                        Code::MultiDrivenChannel,
                        format!(
                            "channel c{ch} is consumed by {} components: {}",
                            cons.len(),
                            describe(cons)
                        ),
                    )
                    .with_help(
                        "fan out explicitly with a Fork — shared ready wires corrupt the handshake",
                    ),
                );
            }
        }
    }

    /// Successor adjacency derived from fully connected channels.
    fn successors(&self) -> Vec<Vec<usize>> {
        let mut succ = vec![Vec::new(); self.names.len()];
        for ch in 0..self.channel_count() {
            for &p in &self.producers[ch] {
                for &c in &self.consumers[ch] {
                    succ[p].push(c);
                }
            }
        }
        succ
    }

    /// PV103: a strongly connected component whose every node has zero
    /// elastic storage is a combinational handshake loop.
    fn check_cycles(&self, report: &mut Report) {
        let succ = self.successors();
        for scc in tarjan_sccs(&succ) {
            let cyclic = scc.len() > 1 || succ[scc[0]].contains(&scc[0]);
            if !cyclic {
                continue;
            }
            let max_cap = scc.iter().map(|&n| self.caps[n]).max().unwrap_or(0);
            if max_cap == 0 {
                let members = scc
                    .iter()
                    .map(|&n| format!("`{}`", self.names[n]))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                let through_memory = scc.iter().any(|&n| self.names[n] == CONTROLLER);
                let mut d = Diagnostic::error(
                    Code::UnbufferedCycle,
                    format!(
                        "handshake cycle with no elastic buffer: {members}; every transfer \
                         on the loop waits on itself, deadlocking the circuit on the first \
                         token"
                    ),
                );
                d = if through_memory {
                    d.with_help(
                        "a load result reaches a store input of the same memory with no \
                         registered stage between them; use a queued controller or buffer \
                         the value path",
                    )
                } else {
                    d.with_help("place a Buffer on the feedback path to register the handshake")
                };
                report.push(d);
            }
        }
    }

    /// PV105: nodes with no directed path from any token source. Such a
    /// component can never see a token — it is dead hardware, and anything
    /// joining on its output deadlocks.
    fn check_reachability(&self, report: &mut Report) {
        let succ = self.successors();
        let mut seen = vec![false; self.names.len()];
        let mut queue: Vec<usize> = (0..self.names.len())
            .filter(|&n| self.is_source[n])
            .collect();
        for &n in &queue {
            seen[n] = true;
        }
        while let Some(n) = queue.pop() {
            for &m in &succ[n] {
                if !seen[m] {
                    seen[m] = true;
                    queue.push(m);
                }
            }
        }
        for (name, _) in self.names.iter().zip(&seen).filter(|(_, &s)| !s) {
            report.push(
                Diagnostic::warning(
                    Code::UnreachableComponent,
                    format!(
                        "`{name}` is unreachable from any token source: no token can ever \
                         arrive, so it is dead hardware (and a deadlock for anything \
                         joining on its output)"
                    ),
                )
                .with_help("remove the component or wire it to the live datapath"),
            );
        }
    }
}

/// Tarjan's algorithm; returns every strongly connected component.
fn tarjan_sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        succ: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(s: &mut State, v: usize) {
        s.index[v] = Some(s.next);
        s.low[v] = s.next;
        s.next += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        for i in 0..s.succ[v].len() {
            let w = s.succ[v][i];
            if s.index[w].is_none() {
                strongconnect(s, w);
                s.low[v] = s.low[v].min(s.low[w]);
            } else if s.on_stack[w] {
                s.low[v] = s.low[v].min(s.index[w].expect("visited"));
            }
        }
        if s.low[v] == s.index[v].expect("set above") {
            let mut scc = Vec::new();
            loop {
                let w = s.stack.pop().expect("stack invariant");
                s.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            s.out.push(scc);
        }
    }
    let n = succ.len();
    let mut s = State {
        succ,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if s.index[v].is_none() {
            strongconnect(&mut s, v);
        }
    }
    s.out
}

/// Runs the structural circuit lints (PV101, PV102, PV103, PV105) over a
/// *closed* netlist — one whose every channel is meant to be fully wired,
/// e.g. after a controller has been attached, or a hand-built test circuit.
pub fn lint_netlist(net: &Netlist, report: &mut Report) {
    let g = CircuitGraph::from_netlist(net);
    g.check_channels(report);
    g.check_cycles(report);
    g.check_reachability(report);
}

/// Runs the full PV1xx pass over a synthesized kernel, closing the open
/// memory ports with a virtual controller per
/// [`CircuitOptions::controller`]. Findings reuse the PV0xx diagnostic
/// stream ([`Report`]), so text and JSON rendering are identical.
pub fn lint_circuit(synth: &SynthesizedKernel, opts: &CircuitOptions) -> Report {
    let mut report = Report::default();
    let mut g = CircuitGraph::from_netlist(&synth.netlist);

    // Channels the controller would close.
    let mut inputs = vec![synth.interface.alloc_in];
    let mut outputs = Vec::new();
    for p in &synth.interface.ports {
        inputs.push(p.addr_in);
        inputs.extend(p.data_in);
        inputs.extend(p.fake_in);
        outputs.extend(p.data_out);
    }

    match opts.controller {
        ControllerModel::None => {
            // Open by design: exempt exactly the port channels from the
            // connectivity checks, and skip reachability (load results have
            // no producer, so their consumers would be flagged vacuously).
            for ch in inputs.iter().chain(&outputs) {
                g.exempt.insert(ch.index() as u32);
            }
            g.check_channels(&mut report);
            g.check_cycles(&mut report);
        }
        ControllerModel::Direct => {
            g.add_virtual(CONTROLLER, 0, &inputs, &outputs);
            g.check_channels(&mut report);
            g.check_cycles(&mut report);
            g.check_reachability(&mut report);
        }
        ControllerModel::Queue { capacity } => {
            g.add_virtual(CONTROLLER, capacity, &inputs, &outputs);
            g.check_channels(&mut report);
            g.check_cycles(&mut report);
            g.check_reachability(&mut report);
            check_frontier_capacity(synth, capacity, &mut report);
        }
    }
    report
}

/// Maximum number of iterations the circuit keeps in flight: the iteration
/// source runs ahead until the least-provisioned consumer path of its
/// outputs fills. Synthesis decouples every induction-variable use with an
/// elastic buffer (`SynthOptions::slack`), so the bound is the minimum
/// elastic storage within two hops of the source, plus the row the source
/// itself holds — capped by the total iteration count.
fn iteration_frontier(synth: &SynthesizedKernel) -> usize {
    let net = &synth.netlist;
    let ends = net.channel_endpoints();
    let mut min_slack: Option<usize> = None;
    let mut note = |cap: usize| {
        min_slack = Some(min_slack.map_or(cap, |m| m.min(cap)));
    };
    for (_, _, comp) in net
        .iter()
        .filter(|(_, _, c)| c.type_name() == "iter_source")
    {
        for out in comp.ports().outputs {
            if out == synth.interface.alloc_in {
                continue; // consumed by the controller, sized separately
            }
            for &consumer in &ends.consumers[out.index()] {
                let c = net.component(consumer);
                if c.type_name() == "sink" {
                    continue; // sinks never backpressure
                }
                if c.capacity() > 0 {
                    note(c.capacity());
                    continue;
                }
                // Combinational fan-out (a fork): the slack sits one hop
                // further, in the per-use buffers.
                for out2 in c.ports().outputs {
                    for &c2 in &ends.consumers[out2.index()] {
                        let cc = net.component(c2);
                        if cc.type_name() != "sink" {
                            note(cc.capacity());
                        }
                    }
                }
            }
        }
    }
    (1 + min_slack.unwrap_or(0)).min(synth.interface.iterations.max(1))
}

/// PV104: premature-queue/arbiter capacity versus the in-flight frontier.
///
/// With fewer slots than one iteration's memory ops the completion frontier
/// can never advance — the controller itself refuses to build
/// (`QueueTooShallow`), so synthesis must refuse too (error). With multiple
/// iterations in flight but fewer than two iterations' worth of slots, the
/// queue cannot double-buffer: premature execution of iteration *i+1*
/// stalls on retirement of *i*, forfeiting the overlap the paper's §V-A
/// sizing model assumes (warning).
fn check_frontier_capacity(synth: &SynthesizedKernel, capacity: usize, report: &mut Report) {
    let ops = synth.spec.mem_ops_per_iter();
    let span = synth.spec.body.first().and_then(|s| s.span());
    if capacity < ops {
        report.push(
            Diagnostic::error(
                Code::FrontierCapacity,
                format!(
                    "controller capacity {capacity} cannot hold one iteration's {ops} memory \
                     ops; the completion frontier can never advance and the circuit wedges on \
                     iteration 0"
                ),
            )
            .with_span(span)
            .with_help(format!("configure a queue capacity of at least {ops}")),
        );
        return;
    }
    let frontier = iteration_frontier(synth);
    if frontier > 1 && capacity < 2 * ops {
        report.push(
            Diagnostic::warning(
                Code::FrontierCapacity,
                format!(
                    "controller capacity {capacity} holds fewer than two iterations' worth of \
                     memory ops ({ops} per iteration) while the circuit keeps up to {frontier} \
                     iterations in flight; premature execution cannot overlap retirement"
                ),
            )
            .with_span(span)
            .with_help(format!(
                "configure a queue capacity of at least {} to double-buffer the frontier",
                2 * ops
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use prevv_dataflow::components::{Buffer, Constant, IterSource, Sink};
    use prevv_dataflow::SquashBus;

    fn report_of(net: &Netlist) -> Report {
        let mut r = Report::default();
        lint_netlist(net, &mut r);
        r
    }

    fn source_to_sink(net: &mut Netlist) {
        let bus = SquashBus::new();
        let ch = net.channel();
        net.add(
            "src",
            IterSource::new(vec![vec![1], vec![2]], vec![ch], bus),
        );
        net.add("sink", Sink::new(vec![ch]));
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        let mut net = Netlist::new();
        source_to_sink(&mut net);
        assert!(report_of(&net).is_empty());
    }

    #[test]
    fn pv101_flags_dangling_channels() {
        let mut net = Netlist::new();
        source_to_sink(&mut net);
        let orphan = net.channel(); // no producer, no consumer
        let produced = net.channel();
        let trigger = net.channel();
        net.add("lone", Constant::new(1, trigger, produced));
        net.add("consume_orphan", Sink::new(vec![orphan]));
        let r = report_of(&net);
        let d = r.with_code(Code::DanglingChannel);
        // orphan: no producer; trigger: no producer; produced: no consumer.
        assert_eq!(d.len(), 3, "{:?}", r.diagnostics);
        assert!(d.iter().all(|d| d.severity == Severity::Error));
        assert!(d.iter().any(|d| d.message.contains("no producer")));
        assert!(d.iter().any(|d| d.message.contains("no consumer")));
    }

    #[test]
    fn pv102_flags_shared_channels() {
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let ch = net.channel();
        net.add(
            "src_a",
            IterSource::new(vec![vec![1]], vec![ch], bus.clone()),
        );
        net.add("src_b", IterSource::new(vec![vec![2]], vec![ch], bus));
        net.add("sink1", Sink::new(vec![ch]));
        net.add("sink2", Sink::new(vec![ch]));
        let r = report_of(&net);
        let d = r.with_code(Code::MultiDrivenChannel);
        assert_eq!(d.len(), 2, "{:?}", r.diagnostics);
        assert!(d.iter().any(|d| d.message.contains("2 producers")));
        assert!(d.iter().any(|d| d.message.contains("2 components")));
    }

    #[test]
    fn pv103_flags_unbuffered_ring_and_buffer_clears_it() {
        // Two constants chasing each other's outputs: a zero-capacity ring.
        let mut net = Netlist::new();
        source_to_sink(&mut net);
        let x = net.channel();
        let y = net.channel();
        net.add("k1", Constant::new(1, x, y));
        net.add("k2", Constant::new(2, y, x));
        let r = report_of(&net);
        let d = r.with_code(Code::UnbufferedCycle);
        assert_eq!(d.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("k1") && d[0].message.contains("k2"));

        // The same ring with an elastic buffer on it is legal (a registered
        // feedback loop).
        let mut net = Netlist::new();
        source_to_sink(&mut net);
        let x = net.channel();
        let y = net.channel();
        let z = net.channel();
        net.add("k1", Constant::new(1, x, y));
        net.add("reg", Buffer::new(1, y, z));
        net.add("k2", Constant::new(2, z, x));
        let r = report_of(&net);
        assert!(r.with_code(Code::UnbufferedCycle).is_empty());
        // ...but it is unreachable from the source, which PV105 reports.
        assert_eq!(r.with_code(Code::UnreachableComponent).len(), 3);
    }

    #[test]
    fn pv105_flags_components_cut_off_from_sources() {
        let mut net = Netlist::new();
        source_to_sink(&mut net);
        let x = net.channel();
        let y = net.channel();
        net.add("island_a", Constant::new(1, x, y));
        net.add("island_b", Buffer::new(1, y, x));
        let r = report_of(&net);
        let d = r.with_code(Code::UnreachableComponent);
        assert_eq!(d.len(), 2, "{:?}", r.diagnostics);
        assert!(d.iter().all(|d| d.severity == Severity::Warning));
        assert!(d.iter().any(|d| d.message.contains("island_a")));
    }

    #[test]
    fn validate_and_pv101_102_agree() {
        // Satellite check: `Netlist::validate` delegates to the same
        // structural walk the lints report through.
        let mut net = Netlist::new();
        let a = net.channel();
        let b = net.channel();
        net.add("c", Constant::new(3, a, b));
        net.add("s1", Sink::new(vec![b]));
        net.add("s2", Sink::new(vec![b]));
        let errors = net.structural_errors();
        assert!(net.validate().is_err());
        let r = report_of(&net);
        let lint_count =
            r.with_code(Code::DanglingChannel).len() + r.with_code(Code::MultiDrivenChannel).len();
        assert_eq!(errors.len(), lint_count);
    }
}
