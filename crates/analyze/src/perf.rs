//! PV4xx static throughput analysis: cycle-ratio bounds, critical-cycle
//! diagnosis, and buffer/queue sizing recommendations over the elastic
//! netlist.
//!
//! The synthesized [`Netlist`] is modeled as a **timed marked graph**: every
//! component contributes a forward edge weighted with its pipeline latency
//! ([`Component::latency`](prevv_dataflow::Component::latency)) carrying its
//! current occupancy as initial tokens, and a backward edge carrying its
//! free elastic slots
//! ([`Component::capacity`](prevv_dataflow::Component::capacity)); channels
//! contribute zero-weight handshake edges in both directions. The
//! steady-state initiation interval of such a graph is its **maximum cycle
//! ratio** — `max over cycles of (total latency / total tokens)` — which
//! [`MarkedGraph::max_cycle_ratio`] computes exactly by iterated
//! Bellman–Ford positive-cycle extraction (Lawler/Howard hybrid: each
//! extracted cycle's ratio becomes the next λ; λ increases through the
//! finite set of simple-cycle ratios and therefore terminates).
//!
//! The memory controller deliberately does **not** appear as a
//! store-to-load edge in the graph: premature value validation is exactly
//! the architectural claim that loads return without waiting for older
//! stores, so the store queue's serialization re-enters the model only as
//! analytic per-cycle budgets (read/write ports, arbiter validations,
//! retirements) and — for the *predicted* interval, not the sound bound —
//! as the RAW-forwarding recurrence and premature-queue residency terms.
//! See DESIGN.md ("Timed marked graph") for the soundness argument and its
//! caveats.
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | PV400 | note     | steady-state II bound + binding resource (+ critical cycle) |
//! | PV401 | warning  | zero-slack backpressure cycle; buffer insertion suggested |
//! | PV402 | warning  | premature-queue/arbiter serialization binds; §V-A depth suggested |
//! | PV403 | warning  | measured II diverged from the static prediction |
//!
//! The *sound* bound `ii_bound` only accumulates terms no execution can
//! beat: the cycle ratio, RAM reads that provably cannot be forwarded,
//! exact guard-density-weighted store commits, and arrival/retire budgets.
//! The *predicted* interval adds average-case terms (forwarding
//! turnaround, queue residency, squash replay) calibrated against the
//! stock kernels; `tests/perf_soundness.rs` property-checks
//! `ii_bound <= measured II` on randomized kernels.

use std::collections::HashSet;

use prevv_core::PrevvConfig;
use prevv_dataflow::{Netlist, Value};
use prevv_ir::depend::{pair_distances, PairDistance};
use prevv_ir::{ArrayId, Expr, KernelSpec, MemOpKind, SynthesizedKernel};

use crate::diag::{json_string, Code, Diagnostic, Report, Suggestion};

/// Iteration spaces larger than this are not enumerated; guard densities
/// fall back to their sound defaults and the address-stream interpreter is
/// skipped (matching `depend::pair_distances`' enumeration limit).
const ENUM_LIMIT: usize = 4096;

/// Cycles from a store's value arriving at the controller to a dependent
/// load taking it through the premature-queue bypass — the forwarding
/// turnaround of the RAW recurrence term (calibrated against the stock
/// kernels; see DESIGN.md).
const FORWARD_TURNAROUND: f64 = 2.5;

/// Average cycles an operation stays resident in the premature queue
/// (arrival to in-order retirement) — the numerator of the queue-depth
/// serialization term.
const QUEUE_RESIDENCY: f64 = 6.0;

/// Fixed pipeline ramp overhead added to the longest-path fill latency.
const FILL_OVERHEAD: f64 = 4.0;

/// Predicted cycles lost per squash (flush + refill of the frontier).
const SQUASH_PENALTY: f64 = 8.0;

/// Arrival skew, in iterations, between a load and the older stores it
/// races: a store this close has typically not arrived when the load
/// issues, so a matching address squashes once before the dependence
/// predictor learns it.
const SQUASH_SKEW_ITERS: u64 = 1;

/// Steady-state II above which the arrival skew vanishes: when each
/// iteration already takes this long, the previous iteration's store has
/// arrived (and validated) before the next load issues, so adjacent-
/// iteration collisions forward instead of squashing.
const SQUASH_II_CUTOFF: f64 = 2.0;

/// Relative divergence between predicted and measured cycles above which
/// [`check_measured`] raises PV403.
const DIVERGENCE_TOLERANCE: f64 = 0.25;

const EPS: f64 = 1e-9;

/// Options of the PV4xx pass: the controller configuration whose port and
/// queue budgets the model uses.
#[derive(Debug, Clone, Default)]
pub struct PerfOptions {
    /// Controller configuration (queue depth, port counts, budgets).
    pub config: PrevvConfig,
}

/// The static throughput verdict for one synthesized kernel.
#[derive(Debug, Clone)]
pub struct PerfSummary {
    /// Sound lower bound on the steady-state initiation interval: no
    /// execution of this circuit completes iterations faster.
    pub ii_bound: f64,
    /// Calibrated average-case prediction (`>= ii_bound`), including
    /// forwarding turnaround, queue residency, and squash terms.
    pub predicted_ii: f64,
    /// Predicted total cycles: `predicted_ii * iterations + fill + squash`.
    pub predicted_cycles: f64,
    /// Which term sets [`Self::ii_bound`]: `compute_cycle`, `read_ports`,
    /// `write_ports`, `validation`, or `retire`.
    pub binding_resource: String,
    /// The critical circuit cycle, component by component, when
    /// `compute_cycle` binds (empty otherwise).
    pub critical_cycle: Vec<String>,
    /// §V-A queue depth that moves a queue-bound kernel back to its
    /// datapath bound (`None` when the queue does not bind). Capped by
    /// [`Self::occupancy_bound`]: depth beyond what the whole run can
    /// enqueue is dead area, however matched the pair model wants it.
    pub recommended_depth: Option<usize>,
    /// Static occupancy bound from the value analysis: the whole run
    /// admits at most this many records (`None` when unbounded or the
    /// kernel has no memory ops).
    pub occupancy_bound: Option<u64>,
    /// Iterations the kernel issues (denominator for measured II).
    pub iterations: usize,
}

impl PerfSummary {
    /// Measured initiation interval for a run of `cycles` cycles.
    pub fn measured_ii(&self, cycles: u64) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            cycles as f64 / self.iterations as f64
        }
    }

    /// Machine-readable JSON object (for the `prevv-lint` summary).
    pub fn to_json(&self) -> String {
        let cycle = self
            .critical_cycle
            .iter()
            .map(|s| json_string(s))
            .collect::<Vec<_>>()
            .join(",");
        let depth = self
            .recommended_depth
            .map_or("null".to_string(), |d| d.to_string());
        let occupancy = self
            .occupancy_bound
            .map_or("null".to_string(), |b| b.to_string());
        format!(
            "{{\"ii_bound\":{:.3},\"predicted_ii\":{:.3},\"predicted_cycles\":{:.0},\
             \"binding_resource\":{},\"critical_cycle\":[{}],\"recommended_depth\":{},\
             \"occupancy_bound\":{}}}",
            self.ii_bound,
            self.predicted_ii,
            self.predicted_cycles,
            json_string(&self.binding_resource),
            cycle,
            depth,
            occupancy,
        )
    }
}

// ---------------------------------------------------------------------------
// The timed marked graph
// ---------------------------------------------------------------------------

/// Where a marked-graph edge came from, for diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    /// Component-internal forward edge (pipeline latency, occupancy tokens).
    Stage(usize),
    /// Component-internal backward edge (free elastic slots).
    StageBack(usize),
    /// Channel forward edge producer → consumer.
    ChannelFwd(usize),
    /// Channel backward (handshake/ready) edge consumer → producer.
    ChannelBack(usize),
}

#[derive(Debug, Clone)]
struct MgEdge {
    from: usize,
    to: usize,
    delay: f64,
    tokens: f64,
    kind: EdgeKind,
}

/// One node of the graph before splitting: a pipeline stage.
#[derive(Debug, Clone)]
struct Stage {
    name: String,
    latency: f64,
    capacity: f64,
    occupancy: f64,
    /// Elastic slots the stage offers *per input channel* before it
    /// backpressures the producer — the premature queue's admission slack
    /// for the virtual controller stages (0 for ordinary components, whose
    /// slack lives on their internal capacity edge).
    input_slack: f64,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
}

/// The timed marked graph: stages split into in/out nodes (`2i` / `2i+1`)
/// joined by latency/capacity edges, with zero-weight channel edges both
/// ways.
#[derive(Debug, Clone, Default)]
struct MarkedGraph {
    stages: Vec<Stage>,
    /// `(producer label, consumer label)` per channel, first pair wins —
    /// used to phrase the PV401 buffer suggestion.
    chan_desc: Vec<Option<(String, String)>>,
    edges: Vec<MgEdge>,
}

/// The outcome of the cycle-ratio computation.
#[derive(Debug, Clone)]
struct CycleRatio {
    /// `max(1, max cycle ratio)`; infinite for a token-free delay cycle.
    ratio: f64,
    /// Edge indices of the critical cycle (empty when no cycle exceeds 1).
    cycle: Vec<usize>,
}

impl MarkedGraph {
    fn from_netlist(net: &Netlist) -> Self {
        let ends = net.channel_endpoints();
        let mut g = MarkedGraph {
            chan_desc: vec![None; net.channel_count()],
            ..MarkedGraph::default()
        };
        for (_, label, comp) in net.iter() {
            g.add_stage(
                format!("{label}({})", comp.type_name()),
                comp.latency() as f64,
                comp.capacity() as f64,
                comp.occupancy() as f64,
                0.0,
                comp.ports().inputs.iter().map(|c| c.index()).collect(),
                comp.ports().outputs.iter().map(|c| c.index()).collect(),
            );
        }
        // Channel wiring is deferred to `build_edges`, which only connects
        // channels with both endpoints present — open memory-port channels
        // stay dangling until the virtual controller stages close them.
        let _ = ends; // endpoints are re-derived from stage port lists
        g
    }

    #[allow(clippy::too_many_arguments)]
    fn add_stage(
        &mut self,
        name: String,
        latency: f64,
        capacity: f64,
        occupancy: f64,
        input_slack: f64,
        inputs: Vec<usize>,
        outputs: Vec<usize>,
    ) {
        let max_ch = inputs.iter().chain(&outputs).copied().max();
        if let Some(m) = max_ch {
            if m >= self.chan_desc.len() {
                self.chan_desc.resize(m + 1, None);
            }
        }
        self.stages.push(Stage {
            name,
            latency,
            capacity,
            occupancy,
            input_slack,
            inputs,
            outputs,
        });
    }

    fn node_count(&self) -> usize {
        2 * self.stages.len()
    }

    /// Materializes the edge list from the stage/channel structure.
    fn build_edges(&mut self) {
        self.edges.clear();
        let nch = self.chan_desc.len();
        let mut producers: Vec<Vec<usize>> = vec![Vec::new(); nch];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nch];
        for (i, s) in self.stages.iter().enumerate() {
            for &ch in &s.outputs {
                producers[ch].push(i);
            }
            for &ch in &s.inputs {
                consumers[ch].push(i);
            }
            self.edges.push(MgEdge {
                from: 2 * i,
                to: 2 * i + 1,
                delay: s.latency,
                tokens: s.occupancy,
                kind: EdgeKind::Stage(i),
            });
            self.edges.push(MgEdge {
                from: 2 * i + 1,
                to: 2 * i,
                delay: 0.0,
                tokens: (s.capacity - s.occupancy).max(0.0),
                kind: EdgeKind::StageBack(i),
            });
        }
        for ch in 0..nch {
            for &p in &producers[ch] {
                for &c in &consumers[ch] {
                    if self.chan_desc[ch].is_none() {
                        self.chan_desc[ch] =
                            Some((self.stages[p].name.clone(), self.stages[c].name.clone()));
                    }
                    self.edges.push(MgEdge {
                        from: 2 * p + 1,
                        to: 2 * c,
                        delay: 0.0,
                        tokens: 0.0,
                        kind: EdgeKind::ChannelFwd(ch),
                    });
                    self.edges.push(MgEdge {
                        from: 2 * c,
                        to: 2 * p + 1,
                        delay: 0.0,
                        tokens: self.stages[c].input_slack,
                        kind: EdgeKind::ChannelBack(ch),
                    });
                }
            }
        }
    }

    /// One Bellman–Ford longest-path sweep with edge weight
    /// `delay − λ·tokens`; returns a positive cycle's edge indices if one
    /// exists (its ratio then strictly exceeds λ, or is infinite).
    fn positive_cycle(&self, lambda: f64) -> Option<Vec<usize>> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let mut dist = vec![0.0f64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut last_updated = None;
        for _pass in 0..=n {
            last_updated = None;
            for (ei, e) in self.edges.iter().enumerate() {
                let w = e.delay - lambda * e.tokens;
                if dist[e.from] + w > dist[e.to] + 1e-7 {
                    dist[e.to] = dist[e.from] + w;
                    pred[e.to] = Some(ei);
                    last_updated = Some(e.to);
                }
            }
            last_updated?;
        }
        // Still relaxing after n passes: walk predecessors n steps to land
        // inside the positive cycle, then collect it.
        let mut v = last_updated.expect("loop exited with an update");
        for _ in 0..n {
            v = self.edges[pred[v].expect("updated nodes have predecessors")].from;
        }
        let start = v;
        let mut cycle = Vec::new();
        loop {
            let ei = pred[v].expect("cycle nodes have predecessors");
            cycle.push(ei);
            v = self.edges[ei].from;
            if v == start {
                break;
            }
        }
        cycle.reverse();
        Some(cycle)
    }

    /// Maximum cycle ratio, clamped to at least 1 (the iteration source
    /// issues at most one row per cycle, so II below 1 is meaningless).
    fn max_cycle_ratio(&self) -> CycleRatio {
        let mut ratio = 1.0f64;
        let mut critical = Vec::new();
        for _ in 0..64 {
            let Some(cycle) = self.positive_cycle(ratio + 1e-6) else {
                break;
            };
            let delay: f64 = cycle.iter().map(|&e| self.edges[e].delay).sum();
            let tokens: f64 = cycle.iter().map(|&e| self.edges[e].tokens).sum();
            if tokens <= EPS {
                return CycleRatio {
                    ratio: f64::INFINITY,
                    cycle,
                };
            }
            let r = delay / tokens;
            if r <= ratio + EPS {
                break;
            }
            ratio = r;
            critical = cycle;
        }
        CycleRatio {
            ratio,
            cycle: critical,
        }
    }

    /// Stage names along a cycle, deduplicated in traversal order.
    fn cycle_labels(&self, cycle: &[usize]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for &ei in cycle {
            let stage = match self.edges[ei].kind {
                EdgeKind::Stage(i) | EdgeKind::StageBack(i) => Some(i),
                _ => None,
            };
            if let Some(i) = stage {
                let name = &self.stages[i].name;
                if out.last().map(String::as_str) != Some(name.as_str()) {
                    out.push(name.clone());
                }
            }
        }
        if out.len() > 1 && out.first() == out.last() {
            out.pop();
        }
        out
    }

    /// The first backward channel edge on a cycle — the handshake hop where
    /// one extra elastic buffer directly adds cycle tokens.
    fn cycle_slack_channel(&self, cycle: &[usize]) -> Option<(usize, &(String, String))> {
        cycle.iter().find_map(|&ei| match self.edges[ei].kind {
            EdgeKind::ChannelBack(ch) => self.chan_desc[ch].as_ref().map(|d| (ch, d)),
            _ => None,
        })
    }

    /// Longest forward-path latency (pipeline fill time), by topological
    /// longest path over the forward edges. Nodes inside forward cycles
    /// (loop-control feedback) never reach in-degree zero and are simply
    /// excluded — fill only needs the acyclic spine.
    fn longest_fill_path(&self) -> f64 {
        let n = self.node_count();
        let fwd = |e: &MgEdge| !matches!(e.kind, EdgeKind::StageBack(_) | EdgeKind::ChannelBack(_));
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for e in self.edges.iter().filter(|e| fwd(e)) {
            indeg[e.to] += 1;
            out[e.from].push((e.to, e.delay));
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut dist = vec![0.0f64; n];
        let mut best = 0.0f64;
        while let Some(v) = queue.pop() {
            best = best.max(dist[v]);
            for &(to, delay) in &out[v] {
                dist[to] = dist[to].max(dist[v] + delay);
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to);
                }
            }
        }
        best
    }
}

/// Builds the marked graph of a synthesized kernel with the controller
/// modeled per the PreVV architecture: each load port becomes a pipeline
/// stage (RAM round-trip latency, queue-deep elastic slack) from its
/// address channel to its data channel, and every store/fake/alloc channel
/// drains into a non-blocking retire stage. Crucially there is **no**
/// store→load edge: premature value validation removes that serialization
/// from the circuit, which is the paper's core claim.
fn controller_graph(synth: &SynthesizedKernel, cfg: &PrevvConfig) -> MarkedGraph {
    let mut g = MarkedGraph::from_netlist(&synth.netlist);
    let load_latency = (cfg.timing.read_latency + 1) as f64;
    let mut retire_inputs = vec![synth.interface.alloc_in.index()];
    for p in &synth.interface.ports {
        if p.is_load() {
            let name = format!("<load:{}>", synth.interface.arrays[p.op.array.0].name);
            let outs = p.data_out.map(|c| vec![c.index()]).unwrap_or_default();
            g.add_stage(
                name,
                load_latency,
                cfg.depth as f64,
                0.0,
                cfg.depth as f64,
                vec![p.addr_in.index()],
                outs,
            );
        } else {
            retire_inputs.push(p.addr_in.index());
            if let Some(c) = p.data_in {
                retire_inputs.push(c.index());
            }
        }
        if let Some(c) = p.fake_in {
            retire_inputs.push(c.index());
        }
    }
    g.add_stage(
        "<retire>".to_string(),
        0.0,
        cfg.depth as f64,
        0.0,
        cfg.depth as f64,
        retire_inputs,
        Vec::new(),
    );
    g.build_edges();
    g
}

// ---------------------------------------------------------------------------
// Guard densities and the address-stream interpreter
// ---------------------------------------------------------------------------

/// Evaluates an expression for one iteration row against a memory image.
fn eval(spec: &KernelSpec, e: &Expr, row: &[Value], mem: &[Vec<Value>]) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Binary(op, l, r) => op.apply(eval(spec, l, row, mem), eval(spec, r, row, mem)),
        Expr::Opaque(f, x) => f.apply(eval(spec, x, row, mem)),
        Expr::Load(a, idx) => {
            let addr = spec.resolve_index(*a, eval(spec, idx, row, mem));
            mem[a.0][addr]
        }
    }
}

/// Exact per-statement guard execution densities (1.0 for unguarded
/// statements). `None` when the space is too large to enumerate.
fn guard_densities(spec: &KernelSpec) -> Option<Vec<f64>> {
    if spec.iteration_count() > ENUM_LIMIT {
        return None;
    }
    let space = spec.iteration_space();
    let n = space.len().max(1);
    let empty: Vec<Vec<Value>> = Vec::new();
    Some(
        spec.body
            .iter()
            .map(|stmt| match &stmt.guard {
                None => 1.0,
                Some(g) => {
                    let taken = space
                        .iter()
                        .filter(|row| eval(spec, g, row, &empty) != 0)
                        .count();
                    taken as f64 / n as f64
                }
            })
            .collect(),
    )
}

/// What the golden-order address-stream replay predicts about the memory
/// subsystem: how many loads must round-trip to RAM (vs taking the queue
/// bypass), how many stores commit, and how many squashes the arrival skew
/// provokes before the dependence predictor learns the colliding addresses.
#[derive(Debug, Clone, Copy, Default)]
struct TraceStats {
    ram_reads: f64,
    taken_stores: f64,
    est_squashes: f64,
}

/// Replays the kernel's exact address streams (golden program order) and
/// classifies every load against the controller's forwarding window. This
/// is still *static* analysis — the kernel's address streams are fully
/// determined by its spec — but it is average-case with respect to timing,
/// so its outputs feed only the predicted interval, never the sound bound.
/// `skew_iters` is the arrival-skew window (0 when the steady state is
/// slow enough that racing stores always arrive first).
fn trace_memory(spec: &KernelSpec, cfg: &PrevvConfig, skew_iters: u64) -> Option<TraceStats> {
    if spec.iteration_count() > ENUM_LIMIT {
        return None;
    }
    let ops = spec.mem_ops_per_iter().max(1);
    let window = ((cfg.depth / ops).max(1)) as u64;
    let mut mem: Vec<Vec<Value>> = spec.arrays.iter().map(|a| a.initial()).collect();
    // (iteration, array, address) of recent committed stores.
    let mut recent: Vec<(u64, usize, usize)> = Vec::new();
    let mut predictor: HashSet<(usize, usize)> = HashSet::new();
    let mut stats = TraceStats::default();
    for (it, row) in spec.iteration_space().into_iter().enumerate() {
        let it = it as u64;
        recent.retain(|&(j, _, _)| it.saturating_sub(j) <= window);
        for stmt in &spec.body {
            let taken = match &stmt.guard {
                None => true,
                Some(g) => eval(spec, g, &row, &mem) != 0,
            };
            if !taken {
                continue; // a fake token: arrives and retires, no traffic
            }
            let loads: Vec<(ArrayId, &Expr)> = stmt
                .index
                .loads()
                .into_iter()
                .chain(stmt.value.loads())
                .collect();
            for (array, idx) in loads {
                let addr = spec.resolve_index(array, eval(spec, idx, &row, &mem));
                let key = (array.0, addr);
                let hit = |lo: u64, hi: u64| {
                    recent.iter().any(|&(j, a, ad)| {
                        a == array.0 && ad == addr && {
                            let d = it.saturating_sub(j);
                            (lo..=hi).contains(&d) || (j == it && lo == 0)
                        }
                    })
                };
                if hit(0, 0) {
                    // Same-iteration older store: the bypass always covers it.
                } else if skew_iters > 0 && hit(1, skew_iters) {
                    // The racing store has typically not arrived yet: the
                    // first collision on this address reads RAM prematurely
                    // and squashes; afterwards the predictor holds the load
                    // and it forwards.
                    if predictor.insert(key) {
                        stats.est_squashes += 1.0;
                        stats.ram_reads += 1.0;
                    }
                } else if cfg.forwarding && hit(skew_iters + 1, window) {
                    // Resident older store: queue bypass, no RAM round-trip.
                } else {
                    stats.ram_reads += 1.0;
                }
            }
            let addr = spec.resolve_index(stmt.array, eval(spec, &stmt.index, &row, &mem));
            let value = eval(spec, &stmt.value, &row, &mem);
            mem[stmt.array.0][addr] = value;
            recent.push((it, stmt.array.0, addr));
            stats.taken_stores += 1.0;
        }
    }
    Some(stats)
}

// ---------------------------------------------------------------------------
// Analytic bounds
// ---------------------------------------------------------------------------

/// Operator latency along the path from a matching load up to the root of
/// `e` (maximum over occurrences); `None` when the load does not occur.
fn path_above_load(e: &Expr, array: ArrayId, index: &Expr) -> Option<f64> {
    match e {
        Expr::Load(a, idx) if *a == array && **idx == *index => Some(0.0),
        Expr::Load(..) | Expr::Const(_) | Expr::IndVar(_) => None,
        Expr::Binary(op, l, r) => {
            let unit = op.default_latency() as f64;
            match (
                path_above_load(l, array, index),
                path_above_load(r, array, index),
            ) {
                (Some(a), Some(b)) => Some(unit + a.max(b)),
                (Some(a), None) | (None, Some(a)) => Some(unit + a),
                (None, None) => None,
            }
        }
        Expr::Opaque(_, x) => path_above_load(x, array, index).map(|p| p + 2.0),
    }
}

/// True when no execution can satisfy this load from the premature queue:
/// every aliasing store is provably retired (or nonexistent) by the time
/// the load issues, so the load must round-trip to RAM.
fn provably_ram_bound(
    synth: &SynthesizedKernel,
    distances: &[PairDistance],
    op_idx: usize,
    depth: usize,
) -> bool {
    let op = &synth.deps.ops[op_idx];
    let stores_to_array = synth
        .deps
        .ops
        .iter()
        .any(|o| o.kind == MemOpKind::Store && o.array == op.array);
    if !stores_to_array {
        return true; // read-only array: nothing to forward from, ever
    }
    if op.index.is_runtime_dependent() {
        return false; // the address stream is unknowable symbolically
    }
    let ops_per_iter = synth.spec.mem_ops_per_iter().max(1);
    // Every pair this load participates in must be provably unforwardable.
    // Stores to the same array *not* paired with this load were proven
    // non-colliding by dependence analysis, so they cannot forward either.
    distances
        .iter()
        .filter(|pd| pd.pair.load == op_idx)
        .all(|pd| match pd.min_distance {
            // No unprotected collision at any distance: same-iteration
            // program order already serializes whatever overlaps exist.
            None => true,
            // A same-iteration store-before-load collision forwards.
            Some(0) => false,
            // A store `d` iterations back is provably retired when the
            // intervening operations alone overflow the queue.
            Some(d) => d.saturating_mul(ops_per_iter as u64) > depth as u64,
        })
}

/// One named contribution to an initiation-interval bound.
#[derive(Debug, Clone)]
struct Term {
    name: &'static str,
    ii: f64,
    detail: String,
}

/// The sound per-iteration budget terms (RAM reads, store commits, arbiter
/// arrivals, retirements). Guarded operations are weighted by their exact
/// enumerated density, or by 0 when the space is too large to enumerate —
/// under-approximating keeps the bound sound.
fn sound_terms(synth: &SynthesizedKernel, cfg: &PrevvConfig) -> Vec<Term> {
    let spec = &synth.spec;
    let densities = guard_densities(spec);
    let density = |stmt: usize| -> f64 {
        match &densities {
            Some(d) => d[stmt],
            None => {
                if spec.body[stmt].guard.is_none() {
                    1.0
                } else {
                    0.0
                }
            }
        }
    };
    let distances = pair_distances(spec, &synth.deps);
    let ram_reads: f64 = synth
        .deps
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.kind == MemOpKind::Load)
        .filter(|(i, _)| provably_ram_bound(synth, &distances, *i, cfg.depth))
        .map(|(_, o)| density(o.stmt))
        .sum();
    let stores: f64 = spec
        .body
        .iter()
        .enumerate()
        .map(|(si, _)| density(si))
        .sum();
    let ops = spec.mem_ops_per_iter() as f64;
    vec![
        Term {
            name: "read_ports",
            ii: ram_reads / cfg.timing.read_ports.max(1) as f64,
            detail: format!(
                "{ram_reads:.2} guaranteed RAM reads/iteration over {} read port(s)",
                cfg.timing.read_ports
            ),
        },
        Term {
            name: "write_ports",
            ii: stores / cfg.timing.write_ports.max(1) as f64,
            detail: format!(
                "{stores:.2} store commits/iteration over {} write port(s)",
                cfg.timing.write_ports
            ),
        },
        Term {
            name: "validation",
            ii: (ops + ram_reads) / cfg.validations_per_cycle.max(1) as f64,
            detail: format!(
                "{:.2} arrivals+completions/iteration over {} validation slot(s)",
                ops + ram_reads,
                cfg.validations_per_cycle
            ),
        },
        Term {
            name: "retire",
            ii: ops / cfg.retire_per_cycle.max(1) as f64,
            detail: format!(
                "{ops:.0} retirements/iteration over {} retire slot(s)",
                cfg.retire_per_cycle
            ),
        },
    ]
}

/// The RAW-forwarding recurrence: a **must-alias** store (same affine
/// address as the load — the true accumulator pattern) feeding a load `d`
/// taken iterations later bounds the *average* interval at
/// `(turnaround + chain) / d_eff` — average-case because a value
/// coincidence (stored value == RAM value) lets the premature result
/// stand. Occasionally-aliasing (residual) pairs are excluded: they stall
/// individual iterations, not the steady state. Guarded accumulators
/// collide only on taken iterations, so the distance is scaled by the
/// guard's execution density.
fn raw_recurrence_ii(synth: &SynthesizedKernel, cfg: &PrevvConfig) -> f64 {
    let spec = &synth.spec;
    let ops_per_iter = spec.mem_ops_per_iter().max(1);
    let distances = pair_distances(spec, &synth.deps);
    let classes = crate::seplog::classify_pairs(spec, &synth.deps);
    let densities = guard_densities(spec);
    distances
        .iter()
        .zip(&classes)
        .filter_map(|(pd, (_, class))| {
            if *class != crate::seplog::Separation::MustAlias {
                return None;
            }
            let d = pd.min_distance.filter(|&d| d >= 1)?;
            // Only pairs whose store is still resident when the load
            // arrives forward; farther pairs already count as RAM reads.
            if d.saturating_mul(ops_per_iter as u64) > cfg.depth as u64 {
                return None;
            }
            let load = &synth.deps.ops[pd.pair.load];
            let store = &synth.deps.ops[pd.pair.store];
            if load.stmt != store.stmt {
                return None; // cross-statement chains are not modeled
            }
            let density = match &densities {
                Some(dens) => dens[store.stmt],
                None if spec.body[store.stmt].guard.is_none() => 1.0,
                None => return None, // guarded beyond enumeration: skip
            };
            if density <= EPS {
                return None;
            }
            let stmt = &spec.body[store.stmt];
            let chain = FORWARD_TURNAROUND
                + 1.0
                + path_above_load(&stmt.value, load.array, &load.index).unwrap_or(0.0);
            Some(chain * density / d as f64)
        })
        .fold(1.0, f64::max)
}

// ---------------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------------

/// Computes the full static throughput verdict for a synthesized kernel.
pub fn analyze_perf(synth: &SynthesizedKernel, opts: &PerfOptions) -> PerfSummary {
    let mut report = Report::default();
    lint_perf(synth, opts, &mut report)
}

/// Runs the PV4xx lints over a synthesized kernel, appending PV400/401/402
/// findings to `report`, and returns the summary (for the CLI JSON and for
/// [`check_measured`]).
pub fn lint_perf(
    synth: &SynthesizedKernel,
    opts: &PerfOptions,
    report: &mut Report,
) -> PerfSummary {
    let cfg = &opts.config;
    let spec = &synth.spec;
    let n_iter = synth.interface.iterations.max(1);
    let ops = spec.mem_ops_per_iter().max(1) as f64;
    let span = spec.body.first().and_then(|s| s.span());

    let graph = controller_graph(synth, cfg);
    let mcr = graph.max_cycle_ratio();
    let cycle_labels = graph.cycle_labels(&mcr.cycle);

    let mut terms = vec![Term {
        name: "compute_cycle",
        ii: mcr.ratio,
        detail: if cycle_labels.is_empty() {
            "no circuit cycle binds".to_string()
        } else {
            format!("critical cycle: {}", cycle_labels.join(" -> "))
        },
    }];
    terms.extend(sound_terms(synth, cfg));
    let binding = terms
        .iter()
        .max_by(|a, b| a.ii.partial_cmp(&b.ii).unwrap_or(std::cmp::Ordering::Equal))
        .expect("terms is non-empty")
        .clone();
    let ii_bound = binding.ii.max(1.0);

    // Predicted (average-case) interval. The RAW recurrence is computed
    // first: when it (or a sound term) already throttles the steady state,
    // racing stores arrive before the next load issues and the arrival
    // skew — the squash driver — vanishes.
    let ii_raw = raw_recurrence_ii(synth, cfg);
    let skew = if ii_bound.max(ii_raw) >= SQUASH_II_CUTOFF {
        0
    } else {
        SQUASH_SKEW_ITERS
    };
    let trace = trace_memory(spec, cfg, skew);
    let pred_terms: Vec<(&'static str, f64)> = match &trace {
        Some(t) => {
            let n = n_iter as f64;
            vec![
                (
                    "read_ports",
                    t.ram_reads / (n * cfg.timing.read_ports.max(1) as f64),
                ),
                (
                    "write_ports",
                    t.taken_stores / (n * cfg.timing.write_ports.max(1) as f64),
                ),
                (
                    "validation",
                    (ops * n + t.ram_reads) / (n * cfg.validations_per_cycle.max(1) as f64),
                ),
            ]
        }
        None => Vec::new(),
    };
    let ii_queue = ops * QUEUE_RESIDENCY / cfg.depth.max(1) as f64;
    let best_non_queue = pred_terms
        .iter()
        .map(|&(_, ii)| ii)
        .fold(ii_bound.max(ii_raw), f64::max);
    let predicted_ii = best_non_queue.max(ii_queue).max(1.0);
    let fill = graph.longest_fill_path() + FILL_OVERHEAD;
    let squash_cycles = trace.map_or(0.0, |t| t.est_squashes * SQUASH_PENALTY);
    let predicted_cycles = predicted_ii * n_iter as f64 + fill + squash_cycles;

    // PV402: the premature queue (a configuration knob, unlike a port) is
    // the predicted bottleneck.
    let queue_bound = ii_queue > best_non_queue + EPS;
    let occupancy = match crate::absint::occupancy_bound(spec) {
        0 => None,
        b => Some(b as u64),
    };
    let matched_depth = if queue_bound {
        let needed = (ops * QUEUE_RESIDENCY / best_non_queue.max(1.0)).ceil() as usize;
        Some(needed.max(cfg.depth + 1).next_power_of_two())
    } else {
        None
    };
    // The §V-A matched depth chases the steady state; the value analysis
    // bounds how many records the whole run can ever enqueue. A matched
    // depth past that bound is dead area, and a bound at or below the
    // configured depth means the asymptotic queue term never materializes
    // over so short a run.
    let recommended_depth = matched_depth.and_then(|want| {
        let capped = prevv_core::sizing::cap_depth_by_occupancy(want, occupancy);
        (capped > cfg.depth).then_some(capped)
    });

    let ii_text = if ii_bound.is_finite() {
        format!("{ii_bound:.2}")
    } else {
        "unbounded (token-free delay cycle — see PV103)".to_string()
    };
    report.push(
        Diagnostic::note(
            Code::ThroughputBound,
            format!(
                "steady-state II bound {ii_text} over {n_iter} iterations — binding resource: \
                 {} ({}); predicted II {predicted_ii:.2}, ≈{predicted_cycles:.0} cycles",
                binding.name, binding.detail
            ),
        )
        .with_span(span),
    );

    // PV401: the binding term is a circuit cycle whose ratio is set by its
    // token capacity — one well-placed buffer raises throughput.
    if binding.name == "compute_cycle" && ii_bound > 1.0 + 1e-6 {
        if let Some((ch, (prod, cons))) = graph.cycle_slack_channel(&mcr.cycle) {
            let tokens: f64 = mcr.cycle.iter().map(|&e| graph.edges[e].tokens).sum();
            let delay: f64 = mcr.cycle.iter().map(|&e| graph.edges[e].delay).sum();
            let second = terms
                .iter()
                .filter(|t| t.name != "compute_cycle")
                .map(|t| t.ii)
                .fold(1.0, f64::max);
            let wanted = (delay / second).ceil().max(tokens + 1.0) as usize;
            let extra = wanted as f64 - tokens;
            report.push(
                Diagnostic::warning(
                    Code::SlacklessCycle,
                    format!(
                        "zero-slack backpressure cycle holds II at {ii_text}: {} cycles of \
                         latency recirculate over only {tokens:.0} elastic token slot(s)",
                        delay
                    ),
                )
                .with_span(span)
                .with_help(format!(
                    "insert an elastic buffer ({extra:.0}+ slots) on channel c{ch} between \
                     `{prod}` and `{cons}` to bring the cycle toward II {second:.2}"
                )),
            );
        }
    }

    if let Some(depth) = recommended_depth {
        let mut help = format!(
            "raise depth_q to {depth} (§V-A matched sizing) to shift the bottleneck back \
             to the datapath"
        );
        if matched_depth.is_some_and(|want| depth < want) {
            if let Some(bound) = occupancy {
                help.push_str(&format!(
                    " — the static occupancy bound ({bound} record(s) over the whole run) \
                     caps the matched depth"
                ));
            }
        }
        let mut diag = Diagnostic::warning(
            Code::QueueBound,
            format!(
                "premature-queue serialization binds throughput: depth {} sustains only \
                 II {ii_queue:.2} while the datapath could run at II {best_non_queue:.2}",
                cfg.depth
            ),
        )
        .with_span(span)
        .with_help(help);
        if let Some((_, dspan)) = spec.depth_hint() {
            diag = diag.with_suggestion(Suggestion::new(
                dspan,
                format!("depth_q = {depth};"),
                format!("resize the premature queue to the matched depth {depth}"),
            ));
        }
        report.push(diag);
    }

    PerfSummary {
        ii_bound,
        predicted_ii,
        predicted_cycles,
        binding_resource: binding.name.to_string(),
        critical_cycle: if binding.name == "compute_cycle" {
            cycle_labels
        } else {
            Vec::new()
        },
        recommended_depth,
        occupancy_bound: occupancy,
        iterations: n_iter,
    }
}

/// Runs the circuit-only PV4xx lints over a *closed* netlist (every channel
/// wired, e.g. a hand-built test circuit): computes the maximum cycle
/// ratio, emits PV400 (and PV401 when a starved cycle binds), and returns
/// the II bound.
pub fn lint_netlist_perf(net: &Netlist, report: &mut Report) -> f64 {
    let mut graph = MarkedGraph::from_netlist(net);
    graph.build_edges();
    let mcr = graph.max_cycle_ratio();
    let labels = graph.cycle_labels(&mcr.cycle);
    let ii_text = if mcr.ratio.is_finite() {
        format!("{:.2}", mcr.ratio)
    } else {
        "unbounded (token-free delay cycle — see PV103)".to_string()
    };
    let detail = if labels.is_empty() {
        "no circuit cycle binds".to_string()
    } else {
        format!("critical cycle: {}", labels.join(" -> "))
    };
    report.push(Diagnostic::note(
        Code::ThroughputBound,
        format!("circuit steady-state II bound {ii_text} — {detail}"),
    ));
    if mcr.ratio > 1.0 + 1e-6 {
        if let Some((ch, (prod, cons))) = graph.cycle_slack_channel(&mcr.cycle) {
            let tokens: f64 = mcr.cycle.iter().map(|&e| graph.edges[e].tokens).sum();
            let delay: f64 = mcr.cycle.iter().map(|&e| graph.edges[e].delay).sum();
            report.push(
                Diagnostic::warning(
                    Code::SlacklessCycle,
                    format!(
                        "zero-slack backpressure cycle holds II at {ii_text}: {delay} cycles \
                         of latency recirculate over only {tokens:.0} elastic token slot(s)"
                    ),
                )
                .with_help(format!(
                    "insert an elastic buffer ({:.0}+ slots) on channel c{ch} between `{prod}` \
                     and `{cons}`",
                    (delay - tokens).max(1.0)
                )),
            );
        }
    }
    mcr.ratio
}

/// PV403 self-check: compares a measured simulation against the static
/// model. Returns a diagnostic when the measured interval beats the sound
/// bound (a soundness hole — should be impossible) or diverges from the
/// prediction beyond tolerance (a missing serialization in the model).
pub fn check_measured(summary: &PerfSummary, measured_cycles: u64) -> Option<Diagnostic> {
    let measured_ii = summary.measured_ii(measured_cycles);
    if summary.iterations == 0 || measured_ii <= 0.0 {
        return None;
    }
    if measured_ii + 1e-6
        < summary.ii_bound * (summary.iterations as f64 - 1.0).max(0.0) / summary.iterations as f64
    {
        return Some(Diagnostic::warning(
            Code::ModelDivergence,
            format!(
                "measured II {measured_ii:.2} beats the sound static bound {:.2} — the \
                 timed-marked-graph model has a soundness hole worth reporting",
                summary.ii_bound
            ),
        ));
    }
    let rel = (summary.predicted_cycles - measured_cycles as f64).abs() / measured_cycles as f64;
    if rel > DIVERGENCE_TOLERANCE {
        return Some(
            Diagnostic::warning(
                Code::ModelDivergence,
                format!(
                    "measured {measured_cycles} cycles diverges {:.0}% from the predicted \
                     {:.0} (II {measured_ii:.2} vs {:.2})",
                    rel * 100.0,
                    summary.predicted_cycles,
                    summary.predicted_ii
                ),
            )
            .with_help(
                "the static model is missing a serialization (under-prediction) or \
                 over-counting one (over-prediction); see DESIGN.md on its caveats"
                    .to_string(),
            ),
        );
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use prevv_dataflow::components::{BinOp, BinaryAlu, Buffer, Fork, IterSource, Join, Sink};
    use prevv_dataflow::SquashBus;

    fn report_ii(net: &Netlist) -> (f64, Report) {
        let mut r = Report::default();
        let ii = lint_netlist_perf(net, &mut r);
        (ii, r)
    }

    #[test]
    fn fully_pipelined_chain_has_ii_one() {
        // src -> mul(lat 4, cap 4) -> buffer(8) -> sink: every stage's
        // latency is matched by its capacity, so no cycle exceeds ratio 1.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let (a, b, c, d) = (net.channel(), net.channel(), net.channel(), net.channel());
        net.add("src", IterSource::new(vec![vec![1], vec![2]], vec![a], bus));
        net.add("sq", BinaryAlu::new(BinOp::Mul, a, a, b));
        // One producer driving both ALU inputs would be PV102; reuse `a`
        // for both operands is fine for the throughput model but keep the
        // netlist clean anyway:
        let _ = (c, d);
        net.add("sink", Sink::new(vec![b]));
        let (ii, r) = report_ii(&net);
        assert!((ii - 1.0).abs() < 1e-6, "ii = {ii}");
        assert_eq!(r.with_code(Code::ThroughputBound).len(), 1);
        assert!(r.with_code(Code::SlacklessCycle).is_empty());
    }

    #[test]
    fn starved_reconvergence_binds_at_latency_over_capacity() {
        // fork -> {buffer(1) || mul(lat 4)} -> join: the reconvergent cycle
        // carries 4 cycles of multiplier latency but only the single buffer
        // slot of the short path, so II = 4/1 = 4.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let short_in = net.channel();
        let short_out = net.channel();
        let long_out = net.channel();
        let joined = net.channel();
        net.add("src", IterSource::new(vec![vec![1]], vec![src_out], bus));
        net.add("fork", Fork::new(src_out, vec![short_in, long_out]));
        net.add("short", Buffer::new(1, short_in, short_out));
        // The long path squares the forked token (both operands from one
        // channel keeps the test minimal; the model only reads ports).
        let long_alu_out = net.channel();
        net.add(
            "long",
            BinaryAlu::new(BinOp::Mul, long_out, long_out, long_alu_out),
        );
        net.add("join", Join::new(vec![short_out, long_alu_out], joined));
        net.add("sink", Sink::new(vec![joined]));
        let (ii, r) = report_ii(&net);
        assert!((ii - 4.0).abs() < 1e-6, "ii = {ii}");
        let warn = r.with_code(Code::SlacklessCycle);
        assert_eq!(warn.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(warn[0].severity, Severity::Warning);
        assert!(warn[0].help.as_deref().unwrap_or("").contains("buffer"));
        let note = r.with_code(Code::ThroughputBound)[0];
        assert!(note.message.contains("critical cycle"), "{}", note.message);
        assert!(note.message.contains("long"), "{}", note.message);
    }

    #[test]
    fn deepened_buffer_restores_full_throughput() {
        // Same shape as above with a 4-deep short-path buffer: the cycle
        // now holds as many tokens as the multiplier needs in flight.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let src_out = net.channel();
        let short_in = net.channel();
        let short_out = net.channel();
        let long_out = net.channel();
        let long_alu_out = net.channel();
        let joined = net.channel();
        net.add("src", IterSource::new(vec![vec![1]], vec![src_out], bus));
        net.add("fork", Fork::new(src_out, vec![short_in, long_out]));
        net.add("short", Buffer::new(4, short_in, short_out));
        net.add(
            "long",
            BinaryAlu::new(BinOp::Mul, long_out, long_out, long_alu_out),
        );
        net.add("join", Join::new(vec![short_out, long_alu_out], joined));
        net.add("sink", Sink::new(vec![joined]));
        let (ii, r) = report_ii(&net);
        assert!((ii - 1.0).abs() < 1e-6, "ii = {ii}");
        assert!(r.with_code(Code::SlacklessCycle).is_empty());
    }

    #[test]
    fn token_free_delay_cycle_is_unbounded() {
        // A directed ring through a buffer with no initial token can never
        // fire: the marked graph reports an infinite ratio.
        let mut net = Netlist::new();
        let bus = SquashBus::new();
        let live = net.channel();
        net.add("src", IterSource::new(vec![vec![1]], vec![live], bus));
        net.add("sink", Sink::new(vec![live]));
        let x = net.channel();
        let y = net.channel();
        let z = net.channel();
        net.add("k1", prevv_dataflow::components::Constant::new(1, x, y));
        net.add("reg", Buffer::new(1, y, z));
        net.add("k2", prevv_dataflow::components::Constant::new(2, z, x));
        let (ii, r) = report_ii(&net);
        assert!(ii.is_infinite());
        assert!(r.with_code(Code::ThroughputBound)[0]
            .message
            .contains("unbounded"));
    }

    #[test]
    fn guard_density_is_exact() {
        let spec = prevv_ir::parse::parse_kernel(
            "g",
            "int a[4];\nfor (int i = 0; i < 48; ++i) { if (i % 3 == 0) a[1] += i; }\n",
        )
        .expect("parses");
        let d = guard_densities(&spec).expect("enumerable");
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-9, "density = {}", d[0]);
    }

    #[test]
    fn trace_counts_ram_reads_and_predictor_squashes() {
        // h[h7_16(i)] += 1: the hashed index collides between adjacent
        // iterations occasionally; each colliding address squashes once.
        let spec = prevv_ir::parse::parse_kernel(
            "hist",
            "int h[16];\nfor (int i = 0; i < 128; ++i) { h[h7_16(i)] += 1; }\n",
        )
        .expect("parses");
        let t =
            trace_memory(&spec, &PrevvConfig::default(), SQUASH_SKEW_ITERS).expect("enumerable");
        assert_eq!(t.taken_stores, 128.0);
        assert!(t.est_squashes > 0.0, "hash collisions must squash");
        assert!(
            t.est_squashes < 16.0,
            "the predictor caps squashes near the address count, got {}",
            t.est_squashes
        );

        // a[i] += 1 never collides across iterations: no squashes, and the
        // order-protected load always round-trips to RAM.
        let spec = prevv_ir::parse::parse_kernel(
            "inc",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] += 1; }\n",
        )
        .expect("parses");
        let t =
            trace_memory(&spec, &PrevvConfig::default(), SQUASH_SKEW_ITERS).expect("enumerable");
        assert_eq!(t.est_squashes, 0.0);
        assert_eq!(t.ram_reads, 8.0);
    }

    #[test]
    fn synthesized_kernel_gets_a_sound_read_bound() {
        let spec = prevv_ir::parse::parse_kernel(
            "inc",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] += 1; }\n",
        )
        .expect("parses");
        let synth = prevv_ir::synthesize(&spec).expect("synthesizes");
        let summary = analyze_perf(&synth, &PerfOptions::default());
        // One order-protected load per iteration must read RAM over one
        // port: the bound is at least 1 and finite, and nothing here can
        // recommend a deeper queue.
        assert!(summary.ii_bound >= 1.0 && summary.ii_bound.is_finite());
        assert!(summary.predicted_ii >= summary.ii_bound);
        assert!(summary.predicted_cycles > 8.0);
        assert_eq!(summary.recommended_depth, None);
        let json = summary.to_json();
        assert!(json.contains("\"ii_bound\":"), "{json}");
        assert!(json.contains("\"binding_resource\":"), "{json}");
    }

    #[test]
    fn shallow_queue_triggers_pv402_with_a_deeper_recommendation() {
        let spec = prevv_ir::parse::parse_kernel(
            "inc",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] += 1; }\n",
        )
        .expect("parses");
        let synth = prevv_ir::synthesize(&spec).expect("synthesizes");
        let mut report = Report::default();
        let opts = PerfOptions {
            config: PrevvConfig::with_depth(2),
        };
        let summary = lint_perf(&synth, &opts, &mut report);
        let warn = report.with_code(Code::QueueBound);
        assert_eq!(warn.len(), 1, "{:?}", report.diagnostics);
        assert!(warn[0].message.contains("premature-queue"));
        let rec = summary.recommended_depth.expect("recommends a depth");
        assert!(rec > 2);
        assert!(warn[0]
            .help
            .as_deref()
            .unwrap_or("")
            .contains(&rec.to_string()));
    }

    #[test]
    fn occupancy_bound_caps_pv402_and_rewrites_the_directive() {
        // Two iterations x two mem ops: the whole run enqueues at most 4
        // records, so the §V-A matched depth (way past 4 for this shallow
        // queue) is capped at the occupancy power of two.
        let spec = prevv_ir::parse::parse_kernel(
            "tiny",
            "depth_q = 2;\nint a[4];\nfor (int i = 0; i < 2; ++i) { a[i] += 1; }\n",
        )
        .expect("parses");
        let synth = prevv_ir::synthesize(&spec).expect("synthesizes");
        let mut report = Report::default();
        let opts = PerfOptions {
            config: PrevvConfig::with_depth(2),
        };
        let summary = lint_perf(&synth, &opts, &mut report);
        assert_eq!(summary.occupancy_bound, Some(4));
        let warn = report.with_code(Code::QueueBound);
        assert_eq!(warn.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(summary.recommended_depth, Some(4), "capped at pow2(4)");
        assert!(
            warn[0].help.as_deref().unwrap_or("").contains("occupancy"),
            "help explains the cap: {:?}",
            warn[0].help
        );
        // The directive is present, so the fix is machine-applicable.
        let sugg = warn[0].suggestion.as_ref().expect("directive rewrite");
        assert_eq!(sugg.replacement, "depth_q = 4;");
        let (_, dspan) = spec.depth_hint().expect("hint");
        assert_eq!(sugg.span, dspan);
        assert!(summary.to_json().contains("\"occupancy_bound\":4"));
    }

    #[test]
    fn measured_divergence_raises_pv403() {
        let summary = PerfSummary {
            ii_bound: 1.0,
            predicted_ii: 1.0,
            predicted_cycles: 100.0,
            binding_resource: "read_ports".into(),
            critical_cycle: vec![],
            recommended_depth: None,
            occupancy_bound: None,
            iterations: 100,
        };
        assert!(check_measured(&summary, 101).is_none(), "within tolerance");
        let d = check_measured(&summary, 200).expect("2x divergence");
        assert_eq!(d.code, Code::ModelDivergence);
        let hole = check_measured(
            &PerfSummary {
                ii_bound: 4.0,
                predicted_cycles: 400.0,
                predicted_ii: 4.0,
                ..summary
            },
            100,
        )
        .expect("measured beats the sound bound");
        assert!(hole.message.contains("soundness"));
    }
}
