//! PV5xx — fixpoint abstract interpretation over kernel loop nests.
//!
//! Every other analysis family treats index expressions and guards
//! conservatively: `symdep` is GCD + Banerjee over affine subscripts and
//! knows nothing about guard predicates, initializer data, or value
//! evolution. This module runs a classic abstract interpretation over the
//! kernel body using a **reduced product of three domains**:
//!
//! * an **interval** domain (`[lo, hi]`, inclusive, with `i64::MIN/MAX` as
//!   top) for range reasoning;
//! * a **congruence** (stride) domain (`x ≡ r (mod m)`; `m = 0` encodes a
//!   singleton) for parity/stride reasoning — this is what sees through
//!   `i % 2 == 0` guards that Banerjee cannot;
//! * **guard predicates**, applied as refinement: evaluating a statement
//!   under its guard first narrows the induction-variable environment to
//!   the iterations that can actually take the guard.
//!
//! Array contents are abstracted per array (one joined value per array,
//! store-free arrays keep their exact initializer abstraction), and the
//! body is iterated to a fixpoint with interval **widening** after
//! [`WIDEN_AFTER`] rounds — accumulators like `a[0] += 1` jump to top
//! instead of climbing forever.
//!
//! Four consumers ride on the inferred invariants:
//!
//! * **PV500** — definite out-of-bounds proofs in exactly the places the
//!   PV001 machinery is blind: runtime-dependent indices bounded through
//!   store-free initializer data (`a[b[i]]`), and guarded statements in
//!   spaces too large to enumerate.
//! * **PV501** — provably-infeasible guards (dead statements), with a
//!   machine-applicable removal fix.
//! * **PV502** — invariant-backed pair discharge ([`discharge_pairs`]):
//!   guard-refined footprints that are disjoint by interval or congruence,
//!   or same-address/injective over a restricted domain. The model checker
//!   reuses this with its bounded-horizon box to shrink the validated set.
//! * **PV503** — a static occupancy bound for the premature queue
//!   ([`occupancy_bound`]): the queue can never hold more records than the
//!   kernel ever issues, so a deeper configured `depth_q` is wasted area.
//!
//! Soundness contract: every abstract value **over-approximates** the set
//! of concrete values. The `exact` flag additionally asserts the abstract
//! set (an arithmetic progression) equals the concrete set — only then may
//! a lint claim a *definite* out-of-bounds witness. Exactness is claimed
//! conservatively (constants, single-occurrence affine chains over
//! verified-contiguous variable domains) and is cross-checked against
//! concrete enumeration by `tests/absint_properties.rs`.

use prevv_dataflow::components::BinOp;
use prevv_dataflow::Value;
use prevv_ir::depend::{AmbiguousPair, Dependences, StaticMemOp, ENUM_LIMIT};
use prevv_ir::symdep::{hull_bounds, AffineForm};
use prevv_ir::{ArrayInit, Expr, KernelSpec, MemOpKind};

use crate::diag::{Code, Diagnostic, Report, Suggestion};
use crate::lints::op_spans;

/// Fixpoint rounds before interval bounds are widened to top.
const WIDEN_AFTER: usize = 3;
/// Hard cap on fixpoint rounds (widening makes this unreachable in
/// practice; the cap is a belt-and-braces termination guarantee).
const MAX_ROUNDS: usize = 16;
/// Largest exact value set [`eval_exact_set`] will enumerate.
const SET_LIMIT: usize = 4096;
/// Congruence moduli above this collapse to top (guards against overflow
/// in CRT/lcm arithmetic; strides this large never help a lint).
const MAX_MODULUS: i128 = 1 << 31;

// --- interval domain --------------------------------------------------------

/// An inclusive integer interval `[lo, hi]`. `i64::MIN`/`i64::MAX` act as
/// the unbounded ends; a transfer function whose true result could wrap
/// 64-bit arithmetic returns [`Interval::TOP`] (clamping would be unsound
/// under the simulator's wrapping semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value (inclusive).
    pub lo: Value,
    /// Largest value (inclusive).
    pub hi: Value,
}

impl Interval {
    /// The full 64-bit range.
    pub const TOP: Interval = Interval {
        lo: Value::MIN,
        hi: Value::MAX,
    };

    /// The interval holding exactly `v`.
    pub fn singleton(v: Value) -> Self {
        Interval { lo: v, hi: v }
    }

    /// An interval from inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` (empty intervals are represented by `Option`
    /// at the call sites, never inside an `Interval`).
    pub fn new(lo: Value, hi: Value) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Sound conversion from i128 arithmetic: results that fit in i64 are
    /// exact; anything wider could have wrapped concretely, so it is top.
    fn from_i128(lo: i128, hi: i128) -> Self {
        if lo >= Value::MIN as i128 && hi <= Value::MAX as i128 {
            Interval {
                lo: lo as Value,
                hi: hi as Value,
            }
        } else {
            Interval::TOP
        }
    }

    /// True when `v` lies inside.
    pub fn contains(&self, v: Value) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound; `None` when the intervals are disjoint.
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Number of integers covered, saturating.
    fn count(&self) -> u128 {
        (self.hi as i128 - self.lo as i128 + 1) as u128
    }
}

// --- congruence domain ------------------------------------------------------

/// A congruence class `x ≡ rem (mod modulus)`. `modulus == 0` encodes the
/// singleton `{rem}`; `modulus == 1` is top. Invariant: `modulus >= 0`,
/// and `0 <= rem < modulus` when `modulus > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Congruence {
    /// The stride (0 = singleton, 1 = top).
    pub modulus: Value,
    /// The residue, normalized into `[0, modulus)` when `modulus > 0`.
    pub rem: Value,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Congruence {
    /// All integers.
    pub const TOP: Congruence = Congruence { modulus: 1, rem: 0 };

    /// The singleton class `{v}`.
    pub fn singleton(v: Value) -> Self {
        Congruence { modulus: 0, rem: v }
    }

    /// Builds a normalized class from i128 arithmetic, collapsing oversized
    /// moduli to top.
    fn normalized(modulus: i128, rem: i128) -> Self {
        let m = modulus.abs();
        if m == 0 {
            if (Value::MIN as i128..=Value::MAX as i128).contains(&rem) {
                return Congruence::singleton(rem as Value);
            }
            return Congruence::TOP;
        }
        if m >= MAX_MODULUS {
            return Congruence::TOP;
        }
        Congruence {
            modulus: m as Value,
            rem: rem.rem_euclid(m) as Value,
        }
    }

    /// True when `v` lies in the class.
    pub fn contains(&self, v: Value) -> bool {
        if self.modulus == 0 {
            v == self.rem
        } else {
            (v as i128 - self.rem as i128).rem_euclid(self.modulus as i128) == 0
        }
    }

    /// Least upper bound: `gcd(m1, m2, |r1 - r2|)`.
    pub fn join(&self, other: &Congruence) -> Congruence {
        let m = gcd(
            gcd(self.modulus as i128, other.modulus as i128),
            self.rem as i128 - other.rem as i128,
        );
        Congruence::normalized(m, self.rem as i128)
    }

    /// Greatest lower bound (CRT); `None` when the classes are disjoint.
    pub fn meet(&self, other: &Congruence) -> Option<Congruence> {
        let (m1, r1) = (self.modulus as i128, self.rem as i128);
        let (m2, r2) = (other.modulus as i128, other.rem as i128);
        if m1 == 0 {
            return other.contains(self.rem).then_some(*self);
        }
        if m2 == 0 {
            return self.contains(other.rem).then_some(*other);
        }
        let g = gcd(m1, m2);
        if (r1 - r2).rem_euclid(g) != 0 {
            return None;
        }
        let lcm = m1 / g * m2;
        if lcm >= MAX_MODULUS {
            // Over-approximate the intersection by the finer operand.
            return Some(if m1 >= m2 { *self } else { *other });
        }
        // x ≡ r1 (m1) ∧ x ≡ r2 (m2): step from r1 in strides of m1.
        let mut x = r1.rem_euclid(lcm);
        while (x - r2).rem_euclid(m2) != 0 {
            x += m1;
        }
        Some(Congruence::normalized(lcm, x))
    }

    /// True when the two classes provably share no value.
    pub fn disjoint(&self, other: &Congruence) -> bool {
        self.meet(other).is_none()
    }
}

// --- the reduced product ----------------------------------------------------

/// One abstract value: the reduced product of an interval and a congruence
/// class, plus an exactness flag.
///
/// `exact` asserts the concrete value set is *precisely* the arithmetic
/// progression `γ(iv) ∩ γ(cg)` — every member is achieved by some executed
/// iteration. Only exact values may back a definite (PV500) proof;
/// inexact values still soundly over-approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Interval component.
    pub iv: Interval,
    /// Congruence component.
    pub cg: Congruence,
    /// Whether `γ(iv) ∩ γ(cg)` equals the concrete set.
    pub exact: bool,
}

impl AbsVal {
    /// The unconstrained value.
    pub const TOP: AbsVal = AbsVal {
        iv: Interval::TOP,
        cg: Congruence::TOP,
        exact: false,
    };

    /// The exact constant `v`.
    pub fn constant(v: Value) -> Self {
        AbsVal {
            iv: Interval::singleton(v),
            cg: Congruence::singleton(v),
            exact: true,
        }
    }

    /// An inclusive contiguous range, optionally exact.
    pub fn range(lo: Value, hi: Value, exact: bool) -> Self {
        AbsVal {
            iv: Interval::new(lo, hi),
            cg: if lo == hi {
                Congruence::singleton(lo)
            } else {
                Congruence::TOP
            },
            exact,
        }
    }

    /// True when the abstraction pins a single value.
    pub fn as_singleton(&self) -> Option<Value> {
        (self.iv.lo == self.iv.hi).then_some(self.iv.lo)
    }

    /// True when `v` lies in the abstraction.
    pub fn contains(&self, v: Value) -> bool {
        self.iv.contains(v) && self.cg.contains(v)
    }

    /// Least upper bound. Joins are never exact unless both sides agree on
    /// a singleton (a join genuinely unions two iterations' histories, and
    /// the union of two APs is rarely an AP).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self == other {
            return *self;
        }
        AbsVal {
            iv: self.iv.join(&other.iv),
            cg: self.cg.join(&other.cg),
            exact: false,
        }
    }

    /// Reduction step of the product: tightens the interval endpoints to
    /// the nearest members of the congruence class. `None` when the
    /// product is empty.
    pub fn reduce(mut self) -> Option<AbsVal> {
        if self.cg.modulus == 0 {
            return self.iv.contains(self.cg.rem).then(|| AbsVal {
                iv: Interval::singleton(self.cg.rem),
                ..self
            });
        }
        let m = self.cg.modulus as i128;
        let r = self.cg.rem as i128;
        let lo = self.iv.lo as i128;
        let hi = self.iv.hi as i128;
        let lo2 = lo + (r - lo).rem_euclid(m);
        let hi2 = hi - (hi - r).rem_euclid(m);
        if lo2 > hi2 {
            return None;
        }
        self.iv = Interval::from_i128(lo2, hi2);
        if self.iv.lo == self.iv.hi {
            self.cg = Congruence::singleton(self.iv.lo);
        }
        Some(self)
    }

    /// Greatest lower bound; `None` when provably empty.
    pub fn meet(&self, other: &AbsVal) -> Option<AbsVal> {
        let iv = self.iv.meet(&other.iv)?;
        let cg = self.cg.meet(&other.cg)?;
        AbsVal {
            iv,
            cg,
            exact: self.exact && other.exact,
        }
        .reduce()
    }

    /// True when the two abstractions provably share no value — the
    /// disjointness test PV502 runs on wrapped footprints.
    pub fn disjoint(&self, other: &AbsVal) -> bool {
        self.iv.meet(&other.iv).is_none() || self.cg.disjoint(&other.cg)
    }

    /// Enumerates the members of an exact abstraction, smallest first.
    /// `None` when inexact or larger than `cap`.
    pub fn enumerate(&self, cap: usize) -> Option<Vec<Value>> {
        if !self.exact {
            return None;
        }
        let v = self.reduce()?;
        let step = v.cg.modulus.max(1) as i128;
        let n = (v.iv.hi as i128 - v.iv.lo as i128) / step + 1;
        if n > cap as i128 {
            return None;
        }
        Some(
            (0..n)
                .map(|k| (v.iv.lo as i128 + k * step) as Value)
                .collect(),
        )
    }
}

// --- transfer functions -----------------------------------------------------

fn add(a: &AbsVal, b: &AbsVal) -> AbsVal {
    let iv = Interval::from_i128(
        a.iv.lo as i128 + b.iv.lo as i128,
        a.iv.hi as i128 + b.iv.hi as i128,
    );
    if iv == Interval::TOP {
        return AbsVal::TOP; // possible concrete wrap: congruence is invalid too
    }
    let cg = Congruence::normalized(
        gcd(a.cg.modulus as i128, b.cg.modulus as i128),
        a.cg.rem as i128 + b.cg.rem as i128,
    );
    AbsVal {
        iv,
        cg,
        exact: a.exact && b.exact && (a.as_singleton().is_some() || b.as_singleton().is_some()),
    }
}

fn sub(a: &AbsVal, b: &AbsVal) -> AbsVal {
    let neg = AbsVal {
        iv: Interval::from_i128(-(b.iv.hi as i128), -(b.iv.lo as i128)),
        cg: Congruence::normalized(b.cg.modulus as i128, -(b.cg.rem as i128)),
        exact: b.exact,
    };
    add(a, &neg)
}

fn mul(a: &AbsVal, b: &AbsVal) -> AbsVal {
    let products = [
        a.iv.lo as i128 * b.iv.lo as i128,
        a.iv.lo as i128 * b.iv.hi as i128,
        a.iv.hi as i128 * b.iv.lo as i128,
        a.iv.hi as i128 * b.iv.hi as i128,
    ];
    let iv = Interval::from_i128(
        *products.iter().min().expect("nonempty"),
        *products.iter().max().expect("nonempty"),
    );
    if iv == Interval::TOP {
        return AbsVal::TOP; // could wrap concretely
    }
    let cg = if let Some(c) = a.as_singleton() {
        Congruence::normalized(
            c as i128 * b.cg.modulus as i128,
            c as i128 * b.cg.rem as i128,
        )
    } else if let Some(c) = b.as_singleton() {
        Congruence::normalized(
            c as i128 * a.cg.modulus as i128,
            c as i128 * a.cg.rem as i128,
        )
    } else {
        // (r1 + k·m1)(r2 + l·m2) ≡ r1·r2 (mod gcd(m1·m2, m1·r2, m2·r1)).
        let (m1, r1) = (a.cg.modulus as i128, a.cg.rem as i128);
        let (m2, r2) = (b.cg.modulus as i128, b.cg.rem as i128);
        Congruence::normalized(gcd(gcd(m1 * m2, m1 * r2), m2 * r1), r1 * r2)
    };
    AbsVal {
        iv,
        cg,
        exact: a.exact && b.exact && (a.as_singleton().is_some() || b.as_singleton().is_some()),
    }
}

/// Truncated remainder (the ALU's `Rem`, 0-safe: `x % 0 == 0`).
fn rem(a: &AbsVal, b: &AbsVal) -> AbsVal {
    let Some(c) = b.as_singleton() else {
        // Bounded by the largest possible divisor magnitude.
        let maxc = b.iv.lo.unsigned_abs().max(b.iv.hi.unsigned_abs());
        if maxc == 0 || maxc > Value::MAX as u64 {
            return AbsVal::TOP;
        }
        let bound = (maxc - 1) as Value;
        return AbsVal {
            iv: Interval::new(-bound, bound),
            cg: Congruence::TOP,
            exact: false,
        };
    };
    if c <= 0 {
        // Negative or zero divisors: |result| < |c| still holds for c < 0;
        // x % 0 is defined as 0. Keep it coarse.
        if c == 0 {
            return AbsVal::constant(0);
        }
        let bound = c.checked_abs().map_or(Value::MAX - 1, |v| v - 1);
        return AbsVal {
            iv: Interval::new(-bound, bound),
            cg: Congruence::TOP,
            exact: false,
        };
    }
    if a.iv.lo >= 0 && a.iv.hi < c {
        return *a; // identity on [0, c)
    }
    if a.iv.lo >= 0 {
        // Nonnegative dividend: truncated rem agrees with euclidean rem.
        if a.cg.modulus > 0 && a.cg.modulus % c == 0 {
            // Every member shares one residue mod c.
            return AbsVal {
                iv: Interval::singleton(a.cg.rem % c),
                cg: Congruence::singleton(a.cg.rem % c),
                exact: true,
            };
        }
        if a.cg.modulus == 1 && a.iv.count() >= c as u128 {
            // A full window of consecutive integers covers every residue.
            return AbsVal {
                iv: Interval::new(0, c - 1),
                cg: Congruence::TOP,
                exact: a.exact,
            };
        }
        if a.iv.lo / c == a.iv.hi / c {
            // One block: remainder is order-preserving within it.
            return AbsVal {
                iv: Interval::new(a.iv.lo % c, a.iv.hi % c),
                cg: Congruence::TOP,
                exact: a.exact && a.cg.modulus == 1,
            };
        }
        return AbsVal {
            iv: Interval::new(0, c - 1),
            cg: Congruence::TOP,
            exact: false,
        };
    }
    AbsVal {
        iv: Interval::new(-(c - 1), c - 1),
        cg: Congruence::TOP,
        exact: false,
    }
}

fn div(a: &AbsVal, b: &AbsVal) -> AbsVal {
    match b.as_singleton() {
        Some(c) if c > 0 && a.iv.lo >= 0 => AbsVal {
            iv: Interval::new(a.iv.lo / c, a.iv.hi / c),
            cg: Congruence::TOP,
            exact: false,
        },
        _ => AbsVal::TOP,
    }
}

/// Three-valued comparison outcome as the ALU's 1/0 encoding.
fn cmp_result(definitely_true: bool, definitely_false: bool) -> AbsVal {
    match (definitely_true, definitely_false) {
        (true, _) => AbsVal::constant(1),
        (_, true) => AbsVal::constant(0),
        _ => AbsVal {
            iv: Interval::new(0, 1),
            cg: Congruence::TOP,
            exact: false,
        },
    }
}

fn compare(op: BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    let eq_possible = !a.disjoint(b);
    match op {
        BinOp::Eq => cmp_result(
            a.as_singleton().is_some() && a.as_singleton() == b.as_singleton(),
            !eq_possible,
        ),
        BinOp::Ne => cmp_result(
            !eq_possible,
            a.as_singleton().is_some() && a.as_singleton() == b.as_singleton(),
        ),
        BinOp::Lt => cmp_result(a.iv.hi < b.iv.lo, a.iv.lo >= b.iv.hi),
        BinOp::Le => cmp_result(a.iv.hi <= b.iv.lo, a.iv.lo > b.iv.hi),
        BinOp::Gt => cmp_result(a.iv.lo > b.iv.hi, a.iv.hi <= b.iv.lo),
        BinOp::Ge => cmp_result(a.iv.lo >= b.iv.hi, a.iv.hi < b.iv.lo),
        _ => unreachable!("compare() called on a non-comparison op"),
    }
}

fn bin_transfer(op: BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    match op {
        BinOp::Add => add(a, b),
        BinOp::Sub => sub(a, b),
        BinOp::Mul => mul(a, b),
        BinOp::Div => div(a, b),
        BinOp::Rem => rem(a, b),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => compare(op, a, b),
        _ => AbsVal::TOP,
    }
}

// --- environment and evaluation ---------------------------------------------

/// Per-array abstraction: one joined value for the whole array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayAbs {
    /// Abstraction of every value the array can hold.
    pub val: AbsVal,
    /// True when no statement ever stores to the array — its contents are
    /// exactly the initializer for the whole run.
    pub store_free: bool,
}

/// The abstract environment: one domain per induction variable, one
/// abstraction per array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    /// Per-loop-level induction-variable domains (outermost first).
    pub vars: Vec<AbsVal>,
    /// Per-array content abstractions.
    pub arrays: Vec<ArrayAbs>,
}

/// Abstractly evaluates `e` under `env`.
pub fn eval(e: &Expr, env: &Env) -> AbsVal {
    match e {
        Expr::Const(v) => AbsVal::constant(*v),
        Expr::IndVar(l) => env.vars.get(*l).copied().unwrap_or(AbsVal::TOP),
        Expr::Load(a, _) => {
            let arr = &env.arrays[a.0];
            AbsVal {
                exact: arr.store_free && arr.val.as_singleton().is_some(),
                ..arr.val
            }
        }
        Expr::Opaque(f, _) => AbsVal {
            iv: Interval::new(0, f.modulus - 1),
            cg: if f.modulus == 1 {
                Congruence::singleton(0)
            } else {
                Congruence::TOP
            },
            exact: f.modulus == 1,
        },
        Expr::Binary(op, l, r) => bin_transfer(*op, &eval(l, env), &eval(r, env)),
    }
}

/// Enumerates the exact concrete value set of `e` under `env`, capped at
/// [`SET_LIMIT`] members. `None` when exactness cannot be established.
/// This is the path that bounds indirect indices like `a[b[i]]` through a
/// store-free `b`'s initializer data.
pub fn eval_exact_set(e: &Expr, env: &Env, spec: &KernelSpec) -> Option<Vec<Value>> {
    let mut out = match e {
        Expr::Const(v) => vec![*v],
        Expr::IndVar(l) => env.vars.get(*l)?.enumerate(SET_LIMIT)?,
        Expr::Load(a, idx) => {
            if !env.arrays[a.0].store_free {
                return None;
            }
            let init = spec.arrays[a.0].initial();
            eval_exact_set(idx, env, spec)?
                .into_iter()
                .map(|j| init[spec.resolve_index(*a, j)])
                .collect()
        }
        Expr::Opaque(..) => return None,
        Expr::Binary(op, l, r) => {
            // One side must be a provable constant (abstract singleton):
            // scaling/shifting an exact set keeps it exact; combining two
            // sets would need correlation tracking this domain lacks.
            let (set, konst, set_is_lhs) =
                match (eval(l, env).as_singleton(), eval(r, env).as_singleton()) {
                    (_, Some(c)) => (eval_exact_set(l, env, spec)?, c, true),
                    (Some(c), _) => (eval_exact_set(r, env, spec)?, c, false),
                    _ => return None,
                };
            set.into_iter()
                .map(|v| {
                    if set_is_lhs {
                        op.apply(v, konst)
                    } else {
                        op.apply(konst, v)
                    }
                })
                .collect()
        }
    };
    out.sort_unstable();
    out.dedup();
    (out.len() <= SET_LIMIT).then_some(out)
}

// --- guard refinement -------------------------------------------------------

/// What the interpreter proved about a statement's guard over the whole
/// (refined) iteration domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardStatus {
    /// No guard: the statement runs every iteration.
    None,
    /// The guard is provably nonzero on every iteration.
    AlwaysTaken,
    /// The guard is provably zero on every iteration — dead code (PV501).
    NeverTaken,
    /// Sometimes taken, or unknown.
    Mixed,
}

/// Evaluates a guard's status under `env`.
pub fn guard_status(guard: Option<&Expr>, env: &Env) -> GuardStatus {
    let Some(g) = guard else {
        return GuardStatus::None;
    };
    let v = eval(g, env);
    if !v.contains(0) {
        return GuardStatus::AlwaysTaken;
    }
    if v.as_singleton() == Some(0) {
        return GuardStatus::NeverTaken;
    }
    if refine(env, g).is_none() {
        return GuardStatus::NeverTaken;
    }
    GuardStatus::Mixed
}

/// Narrows the environment to iterations where `guard` is true (nonzero).
/// The result **over-approximates** that set; `None` means the guard is
/// infeasible. Two refinement patterns are understood — plain comparisons
/// against an induction variable, and the stride idiom
/// `var % c == k` (either operand order) — everything else refines to the
/// unchanged environment, which is always sound.
pub fn refine(env: &Env, guard: &Expr) -> Option<Env> {
    let Expr::Binary(op, lhs, rhs) = guard else {
        // Non-comparison guard (e.g. a bare expression): true = nonzero.
        let v = eval(guard, env);
        return (v.as_singleton() != Some(0)).then(|| env.clone());
    };
    if !matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    ) {
        return Some(env.clone());
    }
    // `(var % c) == k`: refine the congruence component.
    if *op == BinOp::Eq {
        for (a, b) in [(lhs, rhs), (rhs, lhs)] {
            if let (Expr::Binary(BinOp::Rem, x, c), Expr::Const(k)) = (&**a, &**b) {
                if let (Expr::IndVar(l), Expr::Const(c)) = (&**x, &**c) {
                    if *c > 0 && *l < env.vars.len() {
                        // k outside [0, c) is unreachable for nonnegative x
                        // and handled by the interval meet below; the
                        // congruence applies when 0 <= k < c.
                        if *k >= 0 && *k < *c {
                            let mut out = env.clone();
                            let narrowed = out.vars[*l].meet(&AbsVal {
                                iv: Interval::TOP,
                                cg: Congruence {
                                    modulus: *c,
                                    rem: *k,
                                },
                                exact: false,
                            })?;
                            // The meet drops exactness pessimistically, but
                            // restricting a contiguous achieved range by a
                            // congruence keeps every member achieved.
                            out.vars[*l] = AbsVal {
                                exact: env.vars[*l].exact && env.vars[*l].cg.modulus <= 1,
                                ..narrowed
                            };
                            return Some(out);
                        }
                        if eval(guard, env).as_singleton() == Some(0) {
                            return None;
                        }
                    }
                }
            }
        }
    }
    // Plain comparison with an induction variable on one side.
    let a = eval(lhs, env);
    let b = eval(rhs, env);
    if compare(*op, &a, &b).as_singleton() == Some(0) {
        return None;
    }
    let mut out = env.clone();
    let mut narrow = |l: usize, allowed: Interval, other_exact_eq: Option<&AbsVal>| -> bool {
        let Some(iv) = out.vars[l].iv.meet(&allowed) else {
            return false;
        };
        let mut v = AbsVal { iv, ..out.vars[l] };
        if let Some(o) = other_exact_eq {
            match v.meet(o) {
                Some(m) => v = AbsVal { exact: false, ..m },
                None => return false,
            }
        }
        // Clipping a contiguous achieved range keeps it achieved.
        v.exact = out.vars[l].exact && v.cg == out.vars[l].cg;
        out.vars[l] = v;
        true
    };
    let feasible = match (&**lhs, &**rhs) {
        (Expr::IndVar(l), _) if *l < env.vars.len() => {
            let allowed = match op {
                BinOp::Lt => Interval::new(Value::MIN, b.iv.hi.saturating_sub(1)),
                BinOp::Le => Interval::new(Value::MIN, b.iv.hi),
                BinOp::Gt => Interval::new(b.iv.lo.saturating_add(1), Value::MAX),
                BinOp::Ge => Interval::new(b.iv.lo, Value::MAX),
                BinOp::Eq => b.iv,
                _ => Interval::TOP,
            };
            narrow(*l, allowed, (*op == BinOp::Eq).then_some(&b))
        }
        (_, Expr::IndVar(l)) if *l < env.vars.len() => {
            let allowed = match op {
                BinOp::Lt => Interval::new(a.iv.lo.saturating_add(1), Value::MAX),
                BinOp::Le => Interval::new(a.iv.lo, Value::MAX),
                BinOp::Gt => Interval::new(Value::MIN, a.iv.hi.saturating_sub(1)),
                BinOp::Ge => Interval::new(Value::MIN, a.iv.hi),
                BinOp::Eq => a.iv,
                _ => Interval::TOP,
            };
            narrow(*l, allowed, (*op == BinOp::Eq).then_some(&a))
        }
        _ => true,
    };
    feasible.then_some(out)
}

// --- the fixpoint interpreter -----------------------------------------------

/// Per-statement invariant annotations, computed under the statement's
/// guard-refined environment.
#[derive(Debug, Clone)]
pub struct StmtInvariant {
    /// What the interpreter proved about the guard.
    pub guard: GuardStatus,
    /// Abstraction of the raw (pre-wrap) store index.
    pub index: AbsVal,
    /// Abstraction of the stored value.
    pub value: AbsVal,
}

/// The result of running the interpreter to fixpoint: induction-variable
/// domains, post-fixpoint array abstractions, and per-statement invariants.
#[derive(Debug, Clone)]
pub struct KernelInvariants {
    /// Final abstract environment (variable domains + array contents).
    pub env: Env,
    /// Per-statement annotations, aligned with `spec.body`.
    pub stmts: Vec<StmtInvariant>,
}

/// Inclusive per-level variable bounds: the rectangular hull of the nest.
/// `None` only for nests `hull_bounds` cannot resolve (never for validated
/// kernels) or empty iteration spaces.
pub fn hull_box(spec: &KernelSpec) -> Option<Vec<(Value, Value)>> {
    if spec.iteration_count() == 0 {
        return None;
    }
    hull_bounds(&spec.levels)
}

/// Builds induction-variable domains from inclusive per-level bounds.
/// Domains are marked exact (each hull value achieved by some iteration)
/// only when achievement can be verified by enumeration or the nest is
/// rectangular (where it holds trivially).
fn var_domains(spec: &KernelSpec, bounds: &[(Value, Value)]) -> Vec<AbsVal> {
    let rectangular = spec.levels.iter().all(|l| {
        matches!(
            (l.lo, l.hi),
            (
                prevv_dataflow::components::Bound::Const(_),
                prevv_dataflow::components::Bound::Const(_)
            )
        )
    });
    let mut achieved: Vec<bool> = vec![rectangular; bounds.len()];
    if !rectangular && spec.iteration_count() <= ENUM_LIMIT {
        // Verify per-level projection exactness concretely.
        let space = spec.iteration_space();
        for (l, &(lo, hi)) in bounds.iter().enumerate() {
            achieved[l] = (lo..=hi).all(|v| space.iter().any(|row| row[l] == v));
        }
    }
    bounds
        .iter()
        .zip(achieved)
        .map(|(&(lo, hi), ok)| AbsVal::range(lo, hi.max(lo), ok && lo <= hi))
        .collect()
}

/// Initializer abstraction of one array.
fn init_abs(spec: &KernelSpec, ai: usize) -> AbsVal {
    let decl = &spec.arrays[ai];
    match &decl.init {
        ArrayInit::Zero => AbsVal::constant(0),
        ArrayInit::Values(vs) => {
            let mut it = vs.iter();
            let first = AbsVal::constant(*it.next().expect("nonempty initializer"));
            it.fold(first, |acc, &v| acc.join(&AbsVal::constant(v)))
        }
    }
}

/// Runs the interpreter to fixpoint over the full iteration hull.
pub fn analyze_kernel(spec: &KernelSpec) -> KernelInvariants {
    let bounds = hull_box(spec).unwrap_or_else(|| vec![(0, -1); spec.levels.len()]);
    analyze_within(spec, &bounds)
}

/// Runs the interpreter to fixpoint with explicit inclusive per-level
/// variable bounds — the model checker passes the box spanned by its
/// bounded-horizon iteration prefix to obtain horizon-valid invariants.
pub fn analyze_within(spec: &KernelSpec, bounds: &[(Value, Value)]) -> KernelInvariants {
    let empty = bounds.iter().any(|&(lo, hi)| hi < lo);
    let vars = var_domains(spec, bounds);
    let stored: Vec<bool> = {
        let mut s = vec![false; spec.arrays.len()];
        for stmt in &spec.body {
            s[stmt.array.0] = true;
        }
        s
    };
    let mut env = Env {
        vars,
        arrays: (0..spec.arrays.len())
            .map(|ai| ArrayAbs {
                val: init_abs(spec, ai),
                store_free: !stored[ai],
            })
            .collect(),
    };
    if !empty {
        let mut prev = env.arrays.clone();
        for round in 0..MAX_ROUNDS {
            let mut changed = false;
            for stmt in &spec.body {
                let refined = match &stmt.guard {
                    None => Some(env.clone()),
                    Some(g) => refine(&env, g),
                };
                let Some(renv) = refined else { continue };
                let v = eval(&stmt.value, &renv);
                let joined = env.arrays[stmt.array.0].val.join(&v);
                if joined != env.arrays[stmt.array.0].val {
                    env.arrays[stmt.array.0].val = joined;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round + 1 >= WIDEN_AFTER {
                // Widen: any interval bound still moving jumps to top.
                for (arr, old) in env.arrays.iter_mut().zip(&prev) {
                    if arr.val.iv.lo < old.val.iv.lo {
                        arr.val.iv.lo = Value::MIN;
                    }
                    if arr.val.iv.hi > old.val.iv.hi {
                        arr.val.iv.hi = Value::MAX;
                    }
                    arr.val.exact = arr.val.exact && arr.val == old.val;
                }
            }
            prev = env.arrays.clone();
        }
    }
    let stmts = spec
        .body
        .iter()
        .map(|stmt| {
            if empty {
                return StmtInvariant {
                    guard: GuardStatus::NeverTaken,
                    index: AbsVal::TOP,
                    value: AbsVal::TOP,
                };
            }
            let guard = guard_status(stmt.guard.as_ref(), &env);
            let renv = match &stmt.guard {
                None => env.clone(),
                Some(g) => refine(&env, g).unwrap_or_else(|| env.clone()),
            };
            StmtInvariant {
                guard,
                index: eval(&stmt.index, &renv),
                value: eval(&stmt.value, &renv),
            }
        })
        .collect();
    KernelInvariants { env, stmts }
}

// --- consumer: footprints and pair discharge (PV502) ------------------------

/// Why [`discharge_pairs`] proved a pair safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DischargeReason {
    /// The guard-refined wrapped footprints share no address (interval or
    /// congruence disjointness).
    DisjointValues,
    /// Both accesses follow the same address function over the domain, the
    /// function is injective and never wraps, and the load is sequenced
    /// before the store — every collision is same-iteration and already
    /// serialized by the in-order commit.
    SameIterationOrdered,
    /// One side's guard is infeasible over the domain: the op only ever
    /// issues fake tokens, which carry no address.
    DeadCode,
}

impl DischargeReason {
    /// Human-readable clause for diagnostics.
    pub fn describe(&self) -> &'static str {
        match self {
            DischargeReason::DisjointValues => {
                "guard-refined value footprints are disjoint (interval/congruence)"
            }
            DischargeReason::SameIterationOrdered => {
                "addresses provably coincide only same-iteration, load before store"
            }
            DischargeReason::DeadCode => "one access is guarded by an infeasible predicate",
        }
    }
}

/// Post-wrap footprint: the raw index abstraction folded into `[0, len)`
/// the way the runtime's `rem_euclid` does.
fn wrap_footprint(raw: &AbsVal, len: Value) -> AbsVal {
    if raw.iv.lo >= 0 && raw.iv.hi < len {
        return *raw;
    }
    rem(raw, &AbsVal::constant(len))
        .meet(&AbsVal {
            iv: Interval::new(0, len - 1),
            cg: Congruence::TOP,
            exact: false,
        })
        .unwrap_or(AbsVal {
            iv: Interval::new(0, len - 1),
            cg: Congruence::TOP,
            exact: false,
        })
}

/// Guard-refined raw index abstraction of one static op; `None` when the
/// owning statement's guard is infeasible (empty footprint).
fn op_footprint(spec: &KernelSpec, env: &Env, op: &StaticMemOp) -> Option<AbsVal> {
    let renv = match &spec.body[op.stmt].guard {
        None => None,
        Some(g) => Some(refine(env, g)?),
    };
    Some(eval(&op.index, renv.as_ref().unwrap_or(env)))
}

/// Exact i128 range of an affine form over inclusive bounds.
fn form_range(form: &AffineForm, bounds: &[(Value, Value)]) -> (i128, i128) {
    let mut lo = form.constant as i128;
    let mut hi = lo;
    for (&c, &(l, u)) in form.coeffs.iter().zip(bounds) {
        let c = c as i128;
        if c >= 0 {
            lo += c * l as i128;
            hi += c * u as i128;
        } else {
            lo += c * u as i128;
            hi += c * l as i128;
        }
    }
    (lo, hi)
}

/// Sufficient injectivity test for an affine form over a box: sorting the
/// nonzero coefficients by magnitude, each must exceed the largest value
/// the smaller terms can compose (mixed-radix argument).
fn form_injective(form: &AffineForm, bounds: &[(Value, Value)]) -> bool {
    let mut terms: Vec<(i128, i128)> = Vec::new();
    for (&c, &(l, u)) in form.coeffs.iter().zip(bounds) {
        if u <= l {
            continue; // singleton level contributes nothing
        }
        if c == 0 {
            // Two iterations differing only at this level share an address:
            // the form cannot separate them (constant forms land here).
            return false;
        }
        terms.push(((c as i128).abs(), u as i128 - l as i128));
    }
    terms.sort_unstable();
    let mut reach: i128 = 0;
    for (c, span) in terms {
        if reach >= c {
            return false;
        }
        reach += c * span;
    }
    true
}

/// Tries to discharge one ambiguous pair with value reasoning over the
/// given inclusive per-level bounds. Sound over-approximation: a verdict
/// means no cross-iteration hazard exists for any iteration inside the
/// box; `None` means no proof (the pair stays validated).
pub fn discharge_pair(
    spec: &KernelSpec,
    deps: &Dependences,
    pair: AmbiguousPair,
    bounds: &[(Value, Value)],
) -> Option<DischargeReason> {
    if bounds.iter().any(|&(lo, hi)| hi < lo) {
        return Some(DischargeReason::DeadCode);
    }
    let inv = analyze_within(spec, bounds);
    let load = &deps.ops[pair.load];
    let store = &deps.ops[pair.store];
    let len = spec.arrays[load.array.0].len as Value;
    let (fp_load, fp_store) = match (
        op_footprint(spec, &inv.env, load),
        op_footprint(spec, &inv.env, store),
    ) {
        (Some(l), Some(s)) => (l, s),
        _ => return Some(DischargeReason::DeadCode),
    };
    if wrap_footprint(&fp_load, len).disjoint(&wrap_footprint(&fp_store, len)) {
        return Some(DischargeReason::DisjointValues);
    }
    // Same-address path: identical address function over the box, injective
    // and wrap-free, with the load sequenced first.
    if load.seq < store.seq {
        let levels = spec.levels.len();
        if let (Some(a), Some(b)) = (
            AffineForm::from_expr(&load.index, levels),
            AffineForm::from_expr(&store.index, levels),
        ) {
            let diff = AffineForm {
                coeffs: a.coeffs.iter().zip(&b.coeffs).map(|(x, y)| x - y).collect(),
                constant: a.constant - b.constant,
            };
            let (dlo, dhi) = form_range(&diff, bounds);
            let (alo, ahi) = form_range(&a, bounds);
            if dlo == 0 && dhi == 0 && alo >= 0 && ahi < len as i128 && form_injective(&a, bounds) {
                return Some(DischargeReason::SameIterationOrdered);
            }
        }
    }
    None
}

/// Runs [`discharge_pair`] over a pair set, returning the proven ones.
pub fn discharge_pairs(
    spec: &KernelSpec,
    deps: &Dependences,
    pairs: &[AmbiguousPair],
    bounds: &[(Value, Value)],
) -> Vec<(AmbiguousPair, DischargeReason)> {
    pairs
        .iter()
        .filter_map(|&p| discharge_pair(spec, deps, p, bounds).map(|r| (p, r)))
        .collect()
}

// --- consumer: occupancy bound (PV503) --------------------------------------

/// A sound static bound on premature-queue occupancy: the queue can never
/// hold more records than the kernel issues in total (guarded-off
/// statements still issue fake tokens, so every static op of every
/// iteration counts).
pub fn occupancy_bound(spec: &KernelSpec) -> usize {
    spec.mem_ops_per_iter()
        .saturating_mul(spec.iteration_count())
}

/// PV503 — configured queue depth exceeding the occupancy bound. Emitted
/// as a note with a machine-applicable `depth_q` shrink when the kernel
/// carries a `depth_q = N;` directive.
pub(crate) fn check_occupancy(spec: &KernelSpec, depth: usize, report: &mut Report) {
    let bound = occupancy_bound(spec);
    if bound == 0 {
        return;
    }
    // Compare against the power-of-two fit, not the raw bound: the fix
    // rounds up to hardware-friendly sizes, so a depth already at the fit
    // has nothing to shrink (and the suggested fix must re-lint clean).
    let fitted = bound.next_power_of_two();
    if depth <= fitted {
        return;
    }
    let mut d = Diagnostic::note(
        Code::OccupancyBound,
        format!(
            "premature queue depth {depth} exceeds the kernel's static occupancy bound \
             {bound}: the whole run issues only {bound} memory op(s), so slots beyond \
             {fitted} are provably dead area"
        ),
    )
    .with_help(format!("configure depth_q = {fitted}"));
    if let Some((_, span)) = spec.depth_hint() {
        d = d.with_span(Some(span)).with_suggestion(Suggestion::new(
            span,
            format!("depth_q = {fitted};"),
            format!("shrink the queue to the occupancy bound ({fitted})"),
        ));
    }
    report.push(d);
}

// --- consumer: value lints (PV500/PV501) ------------------------------------

/// PV500/PV501 — definite out-of-bounds proofs and infeasible guards.
pub(crate) fn check_values(spec: &KernelSpec, deps: &Dependences, report: &mut Report) {
    if spec.iteration_count() == 0 {
        return;
    }
    let inv = analyze_kernel(spec);
    let spans = op_spans(spec, &deps.ops);
    let large = spec.iteration_count() > ENUM_LIMIT;

    // PV501: provably-infeasible guards.
    for (si, stmt) in spec.body.iter().enumerate() {
        if inv.stmts[si].guard != GuardStatus::NeverTaken {
            continue;
        }
        let name = &spec.arrays[stmt.array.0].name;
        let mut d = Diagnostic::warning(
            Code::InfeasibleGuard,
            format!(
                "guard is provably false for every iteration: the statement updating \
                 `{name}` never executes"
            ),
        )
        .with_span(stmt.span())
        .with_help("delete the statement, or fix the predicate if it was meant to fire");
        if spec.body.len() > 1 {
            if let Some(span) = stmt.span() {
                d = d.with_suggestion(Suggestion::new(
                    span,
                    String::new(),
                    "remove the dead statement",
                ));
            }
        }
        report.push(d);
    }

    // PV500: definite out-of-bounds, only where PV001 is blind.
    for op in &deps.ops {
        let stmt = &spec.body[op.stmt];
        let runtime = op.index.is_runtime_dependent();
        if !(runtime || (large && stmt.guard.is_some())) {
            continue; // PV001 territory
        }
        // A definite witness needs the owning iteration to actually run.
        match inv.stmts[op.stmt].guard {
            GuardStatus::None | GuardStatus::AlwaysTaken => {}
            _ => continue,
        }
        let renv = match &stmt.guard {
            None => inv.env.clone(),
            Some(g) => match refine(&inv.env, g) {
                Some(e) => e,
                None => continue,
            },
        };
        let len = spec.arrays[op.array.0].len as Value;
        let witness = if let Some(set) = eval_exact_set(&op.index, &renv, spec) {
            set.into_iter().find(|&v| v < 0 || v >= len)
        } else {
            let idx = eval(&op.index, &renv);
            idx.enumerate(SET_LIMIT)
                .and_then(|vs| vs.into_iter().find(|&v| v < 0 || v >= len))
        };
        let Some(raw) = witness else { continue };
        let kind = match op.kind {
            MemOpKind::Load => "load",
            MemOpKind::Store => "store",
        };
        let name = &spec.arrays[op.array.0].name;
        let diag = if runtime {
            Diagnostic::warning(
                Code::RangeOutOfBounds,
                format!(
                    "{kind} index provably reaches {raw}, out of bounds for `{name}` of \
                     length {len}: the value analysis bounds the index through \
                     initializer data"
                ),
            )
        } else {
            Diagnostic::error(
                Code::RangeOutOfBounds,
                format!(
                    "{kind} index provably reaches {raw}, out of bounds for `{name}` of \
                     length {len} (guard-refined value analysis)"
                ),
            )
        };
        report.push(diag.with_span(spans[op.id]).with_help(format!(
            "the runtime wraps indices modulo the array length, silently aliasing \
                     `{name}[{}]`; fix the index data or enlarge the array",
            raw.rem_euclid(len)
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_ir::depend;
    use prevv_ir::parse::parse_kernel;

    fn spec(src: &str) -> KernelSpec {
        parse_kernel("t", src).expect("parses")
    }

    #[test]
    fn congruence_join_meet_disjoint() {
        let even = Congruence { modulus: 2, rem: 0 };
        let odd = Congruence { modulus: 2, rem: 1 };
        assert!(even.disjoint(&odd));
        assert_eq!(even.join(&odd), Congruence::TOP);
        let c3 = Congruence { modulus: 3, rem: 1 };
        let c2 = Congruence { modulus: 2, rem: 0 };
        let m = c3.meet(&c2).expect("compatible");
        assert_eq!(m.modulus, 6);
        assert_eq!(m.rem, 4);
        assert!(Congruence::singleton(5).disjoint(&even));
        assert!(!Congruence::singleton(4).disjoint(&even));
    }

    #[test]
    fn interval_transfer_is_sound_and_exactness_tracked() {
        let env = Env {
            vars: vec![AbsVal::range(0, 7, true)],
            arrays: vec![],
        };
        // 2*i + 1 over i in [0,7]: odd values 1..15, exact.
        let e = Expr::var(0).mul(Expr::lit(2)).add(Expr::lit(1));
        let v = eval(&e, &env);
        assert_eq!((v.iv.lo, v.iv.hi), (1, 15));
        assert_eq!((v.cg.modulus, v.cg.rem), (2, 1));
        assert!(v.exact);
        assert_eq!(
            v.enumerate(SET_LIMIT).unwrap(),
            vec![1, 3, 5, 7, 9, 11, 13, 15]
        );
        // i % 3 over a full window covers every residue.
        let r = eval(&Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(3)), &env);
        assert_eq!((r.iv.lo, r.iv.hi), (0, 2));
        assert!(r.exact);
        // i + i is NOT exact: the domain cannot see the correlation.
        let ii = eval(&Expr::var(0).add(Expr::var(0)), &env);
        assert!(!ii.exact);
        assert_eq!((ii.iv.lo, ii.iv.hi), (0, 14));
    }

    #[test]
    fn guard_refinement_narrows_and_detects_infeasible() {
        let env = Env {
            vars: vec![AbsVal::range(0, 7, true)],
            arrays: vec![],
        };
        // i % 2 == 0 refines the congruence.
        let g = Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(2)),
            Expr::lit(0),
        );
        let r = refine(&env, &g).expect("feasible");
        assert_eq!((r.vars[0].cg.modulus, r.vars[0].cg.rem), (2, 0));
        assert_eq!((r.vars[0].iv.lo, r.vars[0].iv.hi), (0, 6));
        // i % 2 == 3 is infeasible.
        let g = Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(2)),
            Expr::lit(3),
        );
        assert_eq!(guard_status(Some(&g), &env), GuardStatus::NeverTaken);
        // i > 100 is infeasible over [0,7].
        let g = Expr::bin(BinOp::Gt, Expr::var(0), Expr::lit(100));
        assert_eq!(guard_status(Some(&g), &env), GuardStatus::NeverTaken);
        // i < 4 narrows the interval.
        let g = Expr::bin(BinOp::Lt, Expr::var(0), Expr::lit(4));
        let r = refine(&env, &g).expect("feasible");
        assert_eq!((r.vars[0].iv.lo, r.vars[0].iv.hi), (0, 3));
        assert!(r.vars[0].exact);
    }

    #[test]
    fn fixpoint_widens_accumulators_without_diverging() {
        let s = spec("int a[4];\nfor (int i = 0; i < 64; ++i) { a[0] += 1; }");
        let inv = analyze_kernel(&s);
        // The accumulator climbs; widening must reach a fixpoint in a
        // handful of rounds rather than iterating 64 times. Once hi is
        // widened to MAX the next `+1` may wrap concretely, so the honest
        // fixpoint is full top — not `[0, MAX]`.
        assert_eq!(inv.env.arrays[0].val.iv.hi, Value::MAX);
        assert_eq!(inv.env.arrays[0].val.iv.lo, Value::MIN);
        assert!(!inv.env.arrays[0].store_free);
    }

    #[test]
    fn store_free_arrays_keep_exact_initializer_sets() {
        let s = spec(
            "int a[16];\nint b[4] = { 2, 5, 2, 7 };\n\
             for (int i = 0; i < 4; ++i) { a[b[i]] = i; }",
        );
        let inv = analyze_kernel(&s);
        assert!(inv.env.arrays[1].store_free);
        let idx = eval_exact_set(&s.body[0].index, &inv.env, &s).expect("exact");
        assert_eq!(idx, vec![2, 5, 7]);
    }

    #[test]
    fn pv501_fires_on_infeasible_guard_with_removal_fix() {
        let src = "int a[8];\nfor (int i = 0; i < 8; ++i) {\n  \
                   if (i % 2 == 3) a[i] = 1;\n  a[i] += 2;\n}\n";
        let s = spec(src);
        let deps = depend::analyze(&s);
        let mut report = Report::default();
        check_values(&s, &deps, &mut report);
        let d = report.with_code(Code::InfeasibleGuard);
        assert_eq!(d.len(), 1, "{:?}", report.diagnostics);
        let sugg = d[0].suggestion.as_ref().expect("machine-applicable");
        assert_eq!(sugg.replacement, "");
        assert_eq!(
            &src[sugg.span.start..sugg.span.end],
            "if (i % 2 == 3) a[i] = 1;"
        );
    }

    #[test]
    fn pv500_bounds_indirect_indices_through_initializers() {
        // b is store-free and holds 9, which escapes a's length 8; the
        // syntactic PV001 check skips runtime-dependent indices entirely.
        let src = "int a[8];\nint b[4] = { 1, 9, 2, 3 };\n\
                   for (int i = 0; i < 4; ++i) { a[b[i]] += 1; }\n";
        let s = spec(src);
        let deps = depend::analyze(&s);
        let mut report = Report::default();
        check_values(&s, &deps, &mut report);
        let d = report.with_code(Code::RangeOutOfBounds);
        assert!(!d.is_empty(), "{:?}", report.diagnostics);
        assert!(d[0].message.contains("reaches 9"), "{}", d[0].message);
        // In-bounds initializer data stays clean.
        let ok = spec(
            "int a[8];\nint b[4] = { 1, 7, 2, 3 };\n\
             for (int i = 0; i < 4; ++i) { a[b[i]] += 1; }\n",
        );
        let deps = depend::analyze(&ok);
        let mut report = Report::default();
        check_values(&ok, &deps, &mut report);
        assert!(report.with_code(Code::RangeOutOfBounds).is_empty());
    }

    #[test]
    fn stock_shapes_stay_clean() {
        for src in [
            // histogram: opaque index is inexact — no definite proof.
            "int h[16];\nfor (int i = 0; i < 128; ++i) { h[h7_16(i)] += 1; }",
            // fig2a: b is stored, so no initializer exactness.
            "int a[16];\nint b[8] = {2, 5, 2, 7, 2, 1, 5, 2};\n\
             for (int i = 0; i < 8; ++i) { a[b[i]] = a[b[i]] + 5; b[i] = b[i] + 3; }",
            // guarded: the i % 3 == 0 guard is feasible.
            "int acc[4];\nfor (int i = 0; i < 48; ++i) { if (i % 3 == 0) acc[1] += i; }",
        ] {
            let s = spec(src);
            let deps = depend::analyze(&s);
            let mut report = Report::default();
            check_values(&s, &deps, &mut report);
            assert!(
                report.with_code(Code::RangeOutOfBounds).is_empty()
                    && report.with_code(Code::InfeasibleGuard).is_empty(),
                "spurious PV5xx on {src}: {:?}",
                report.diagnostics
            );
        }
    }

    #[test]
    fn guard_parity_discharges_a_pair_banerjee_cannot() {
        // Store footprint = even cells, load footprint = odd cells; the
        // affine envelopes overlap, only the congruence separates them.
        let src = "int a[16];\nint s[16];\nfor (int i = 0; i < 16; ++i) {\n  \
                   if (i % 2 == 0) a[i] = i;\n  if (i % 2 == 1) s[i] = a[i];\n}\n";
        let s = spec(src);
        let deps = depend::analyze(&s);
        let bounds = hull_box(&s).expect("nonempty");
        let pairs: Vec<_> = deps
            .pairs
            .iter()
            .copied()
            .filter(|p| deps.ops[p.load].array.0 == 0)
            .collect();
        assert!(!pairs.is_empty(), "the a-pair must be conservative");
        let discharged = discharge_pairs(&s, &deps, &pairs, &bounds);
        assert_eq!(discharged.len(), pairs.len(), "{discharged:?}");
        assert!(discharged
            .iter()
            .all(|(_, r)| *r == DischargeReason::DisjointValues));
    }

    #[test]
    fn triangular_pair_discharges_inside_the_horizon_box_only() {
        let src = "int L[16] = { 1, 0, 0, 0, 2, 1, 0, 0, 3, 2, 1, 0, 4, 3, 2, 1 };\n\
                   int B[16] = { 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16 };\n\
                   for (int i = 0; i < 4; ++i) {\n  for (int j = 0; j < 4; ++j) {\n    \
                   for (int k = 0; k < i + 1; ++k) {\n      \
                   B[i * 4 + j] += L[i * 4 + k] * B[k * 4 + j];\n    }\n  }\n}\n";
        let s = spec(src);
        let deps = depend::analyze(&s);
        // The cross-statement pair: load B[k*4+j] vs store B[i*4+j].
        let pair = deps
            .pairs
            .iter()
            .copied()
            .find(|p| deps.ops[p.load].index != deps.ops[p.store].index)
            .expect("the k-pair is conservative");
        // Full space: a real cross-iteration RAW dependence exists — the
        // prover must stay silent.
        let full = hull_box(&s).expect("nonempty");
        assert_eq!(discharge_pair(&s, &deps, pair, &full), None);
        // First-iterations box (i = 0, k = 0): load and store addresses
        // coincide per-iteration and the form is injective in j.
        let horizon = vec![(0, 0), (0, 3), (0, 0)];
        assert_eq!(
            discharge_pair(&s, &deps, pair, &horizon),
            Some(DischargeReason::SameIterationOrdered)
        );
    }

    #[test]
    fn occupancy_bound_and_pv503() {
        let s = spec("int a[4];\nfor (int i = 0; i < 3; ++i) { a[i] = i; }");
        assert_eq!(occupancy_bound(&s), 3);
        let mut report = Report::default();
        check_occupancy(&s, 16, &mut report);
        let d = report.with_code(Code::OccupancyBound);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("bound 3"), "{}", d[0].message);
        // A depth at or under the bound stays silent.
        let mut report = Report::default();
        check_occupancy(&s, 2, &mut report);
        assert!(report.with_code(Code::OccupancyBound).is_empty());
    }

    #[test]
    fn empty_iteration_spaces_are_inert() {
        let s = KernelSpec::new(
            "empty",
            vec![prevv_dataflow::components::LoopLevel::upto(0)],
            vec![prevv_ir::ArrayDecl::zeroed("a", 4)],
            vec![prevv_ir::Stmt::store(
                prevv_ir::ArrayId(0),
                Expr::var(0),
                Expr::lit(1),
            )],
        );
        // Zero-trip loops may be rejected by validation; only exercise the
        // interpreter when the spec constructs.
        if let Ok(s) = s {
            let deps = depend::analyze(&s);
            let mut report = Report::default();
            check_values(&s, &deps, &mut report);
            check_occupancy(&s, 16, &mut report);
            assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        }
    }
}
