//! PV2xx — bounded explicit-state model checking of the PreVV protocol.
//!
//! The checker builds an abstract transition system from a [`KernelSpec`]
//! and a [`PrevvConfig`] and explores it exhaustively up to a configurable
//! iteration bound:
//!
//! * **State** — the pure [`ProtocolState`] (premature queue, completion
//!   frontier, in-order commit cursor, admission reservation) shared
//!   verbatim with the cycle-accurate simulator, plus a per-port issue
//!   cursor and the abstract RAM image.
//! * **Transitions** — nondeterministic per-port arrivals (real, fake, or
//!   — with fake tokens disabled — a silent *skip*), validated by the very
//!   same [`Arbiter::verdict`] comparator the simulator uses; a `Squash`
//!   verdict flushes and rewinds exactly like the controller's
//!   squash-and-replay. Housekeeping (frontier advance, in-order commit,
//!   retirement) is deterministic, monotone and confluent, so it runs to a
//!   fixpoint after every arrival rather than being interleaved — a sound
//!   reduction of the state space (see DESIGN.md).
//! * **Verdicts** —
//!   [`PV201`](Code::ProtocolDeadlock) reachable deadlock (no enabled
//!   transition, unretired records), [`PV202`](Code::SquashLivelock)
//!   squash livelock (a cycle squashing the same iteration without
//!   frontier progress), [`PV203`](Code::QueueWedge) insufficient queue
//!   capacity on some interleaving, and
//!   [`PV204`](Code::ReductionUnsound) a §V-B-eliminated operation whose
//!   full-set validation verdict is a squash the reduced set would miss.
//!
//! # The exploration engine
//!
//! The frontier is explored **level-synchronously** (breadth-first by
//! trace length, so counterexamples stay shortest):
//!
//! * **Partial-order reduction** — when several arrivals are enabled, a
//!   single *ample* arrival provably independent of every other enabled
//!   one (disjoint footprints, no frontier/commit progress, persistence
//!   of every other enabled arrival, admission slack for all of them) is
//!   explored alone; the commuted interleavings collapse. Ample steps
//!   never squash, so every cycle in the reduced graph still contains a
//!   fully-expanded state (no ignoring). The reduction is cross-checked
//!   against unreduced exploration by property tests; see DESIGN.md for
//!   the independence argument.
//! * **Hash compaction** — the visited set stores 64-bit fingerprints
//!   (a splitmix64 chain over the canonical [`ProtocolKey`] words, the
//!   issue cursors and the RAM image) with the parent fingerprint and the
//!   generating port, ~24 bytes per state in an open-addressed table.
//!   Full states live only for the current and next BFS level.
//!   Counterexamples are rebuilt by backtracking parent fingerprints to
//!   the root and deterministically re-executing the port sequence.
//!   [`ProtocolOptions::audit`] keeps the full keys on the side and
//!   counts fingerprint collisions (expected ≈ n²/2⁶⁴).
//! * **Parallel frontier** — each level is expanded by a work-stealing
//!   chunk pool ([`ProtocolOptions::threads`]); results are merged in
//!   deterministic chunk order, so any thread count produces the same
//!   exploration order, the same traces, and the same statistics.
//!
//! Counterexamples are span-annotated via
//! [`Stmt::op_span`](prevv_ir::Stmt::op_span) and can be re-executed
//! against the transition system with [`replay`] — which is how the
//! property tests prove every reported trace is real.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use prevv_core::protocol::{ProtocolKey, RecordKey};
use prevv_core::reduce::reduce;
use prevv_core::{Arbiter, CommitStep, PrematureRecord, PrevvConfig, ProtocolState, Verdict};
use prevv_dataflow::{Tag, Value};
use prevv_ir::symdep::{classify_accesses, PairClass};
use prevv_ir::{
    depend::{AmbiguousPair, StaticMemOp},
    Expr, KernelSpec, MemOpKind, Span,
};

use crate::absint::{self, DischargeReason};
use crate::diag::{Code, Diagnostic, Report};
use crate::seplog::{Separation, SeparationStats};

/// Default iteration bound when [`ProtocolOptions::iterations`] is zero.
///
/// Four iterations cover every protocol interaction the checker looks
/// for — intra-iteration ordering, distance-1 *and* distance-2
/// cross-iteration hazards that drive squash/replay, admission
/// reservation across the frontier, guarded-iteration draining — plus the
/// second-order replays (a replayed iteration squashed again by a later
/// one) that only appear at depth ≥ 3. Partial-order reduction and hash
/// compaction keep this bound affordable; deeper bounds are opt-in
/// (`--mc-depth`) and the state count still grows steeply (see DESIGN.md).
pub const DEFAULT_ITERATION_BOUND: u64 = 4;

/// Default cap on explored states before the checker gives up with PV200.
pub const DEFAULT_MAX_STATES: usize = 10_000_000;

/// Cap on squash-cycle candidates examined for PV202 per run.
const SQUASH_CANDIDATE_CAP: usize = 64;

/// Cap on states explored by one plane-confined PV202 cycle search.
const CONFINED_SEARCH_CAP: usize = 1 << 18;

/// Configuration of the protocol model checker.
#[derive(Debug, Clone)]
pub struct ProtocolOptions {
    /// Controller configuration being verified (queue depth, forwarding,
    /// pair reduction).
    pub config: PrevvConfig,
    /// Whether guarded ops send fake tokens (paper §V-C). Disabling this on
    /// a guarded kernel is the canonical PV201 deadlock.
    pub fake_tokens: bool,
    /// Iteration bound: only the first `iterations` iterations are
    /// explored. `0` selects [`DEFAULT_ITERATION_BOUND`]. The bound is the
    /// checker's soundness horizon — see DESIGN.md.
    pub iterations: u64,
    /// State cap: exploration stops with a PV200 warning beyond this.
    pub max_states: usize,
    /// Worker threads for frontier expansion. `0` selects all available
    /// cores. Results are identical at any thread count.
    pub threads: usize,
    /// Partial-order reduction (on by default). Disabling it forces the
    /// full interleaving set — the cross-check oracle for the reduction.
    pub por: bool,
    /// Collision-audit mode: keep full state keys beside the fingerprint
    /// table and count fingerprint collisions (costs the memory the
    /// compaction saved; for validation runs only).
    pub audit: bool,
}

impl Default for ProtocolOptions {
    fn default() -> Self {
        ProtocolOptions {
            config: PrevvConfig::default(),
            fake_tokens: true,
            iterations: 0,
            max_states: DEFAULT_MAX_STATES,
            threads: 0,
            por: true,
            audit: false,
        }
    }
}

impl ProtocolOptions {
    /// Options for a concrete controller configuration.
    pub fn for_config(cfg: &PrevvConfig) -> Self {
        ProtocolOptions {
            config: cfg.clone(),
            ..Self::default()
        }
    }
}

/// What kind of protocol event a trace step is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A real operation arrived and validated clean.
    Arrive,
    /// A real load arrived and took the forwarded value of the youngest
    /// older resident store.
    Forward,
    /// A guarded op's guard was false and it sent a fake token.
    Fake,
    /// A guarded op's guard was false and — fake tokens disabled — it sent
    /// nothing at all.
    Skip,
    /// A real arrival was found in violation: squash and replay.
    Squash,
}

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Static port (= op id from `depend::enumerate_ops`).
    pub op: usize,
    /// Iteration the event belongs to.
    pub iter: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Flat RAM address touched (real arrivals only).
    pub addr: Option<usize>,
    /// Value read/written/forwarded (real arrivals only).
    pub value: Value,
    /// Squash restart iteration (squash events only).
    pub squash_from: Option<u64>,
    /// Source span of the op, when the kernel was parsed from text.
    pub span: Option<Span>,
    /// Human-readable rendering of the event.
    pub desc: String,
}

/// A machine-readable counterexample: the shortest event trace reaching
/// the violation. For livelocks, `cycle_from` indexes the first event of
/// the repeating cycle.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which PV2xx property the trace violates.
    pub code: Code,
    /// The events, in execution order.
    pub events: Vec<TraceEvent>,
    /// Livelock only: `events[cycle_from..]` repeats forever.
    pub cycle_from: Option<usize>,
}

impl Counterexample {
    /// Renders the trace as numbered lines (used as diagnostic help text).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("counterexample ({} events):", self.events.len()));
        for (i, e) in self.events.iter().enumerate() {
            out.push('\n');
            out.push_str(&format!("  {:>2}. {}", i + 1, e.desc));
        }
        if let Some(k) = self.cycle_from {
            out.push_str(&format!(
                "\n  events {}..{} repeat forever (no frontier progress)",
                k + 1,
                self.events.len()
            ));
        }
        out
    }
}

/// Exploration statistics of one model-checking run.
#[derive(Debug, Clone)]
pub struct CheckStats {
    /// Distinct abstract states discovered (fingerprint-table size).
    pub states: usize,
    /// Transitions actually executed (post partial-order reduction).
    pub transitions: u64,
    /// Transitions enabled before reduction (the unreduced out-degree sum).
    pub enabled: u64,
    /// Wall-clock time of the exploration.
    pub duration: Duration,
    /// True when the state budget (not the iteration bound) stopped the
    /// run.
    pub truncated_by_budget: bool,
    /// Collision-audit mode only: fingerprint collisions observed
    /// (distinct states sharing a 64-bit fingerprint). `None` when the
    /// audit was off.
    pub audit_collisions: Option<u64>,
    /// Separation-prover pair classes for the kernel (PV300–PV302): how
    /// much of the conservative ambiguous set was discharged before
    /// exploration.
    pub pairs: SeparationStats,
    /// Ops the arbiter actually validates (the post-discharge set).
    pub validated: usize,
    /// Worker threads used.
    pub threads: usize,
}

impl CheckStats {
    /// Fraction of enabled transitions the reduction actually executed
    /// (1.0 = no reduction; smaller is better).
    pub fn reduction_ratio(&self) -> f64 {
        if self.enabled == 0 {
            1.0
        } else {
            self.transitions as f64 / self.enabled as f64
        }
    }

    /// Exploration throughput in states per second.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }
}

/// Result of a protocol model-checking run.
#[derive(Debug)]
pub struct CheckResult {
    /// PV200–PV204 diagnostics, rendered traces attached as help text.
    pub report: Report,
    /// Machine-readable counterexamples (at most one per code, shortest
    /// first found by BFS).
    pub counterexamples: Vec<Counterexample>,
    /// Number of distinct abstract states explored.
    pub states: usize,
    /// False when the state cap was hit before exhausting the space.
    pub complete: bool,
    /// The iteration bound actually used.
    pub bound: u64,
    /// Exploration statistics (throughput, reduction ratio, pair classes).
    pub stats: CheckStats,
}

impl CheckResult {
    /// True when no PV201–PV204 property was violated.
    pub fn is_clean(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// Outcome of [`replay`]ing a counterexample.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOutcome {
    /// After the trace, no transition is enabled and the run has not
    /// succeeded (PV201/PV203 witness).
    pub deadlock: bool,
    /// After the trace, at least one op is blocked by the admission
    /// reservation (distinguishes PV203 from PV201).
    pub admission_blocked: bool,
    /// Livelock traces only: the state at `cycle_from` recurred exactly at
    /// the end of the trace (the cycle closes).
    pub cycle_closed: bool,
}

/// Model-checks the PreVV protocol for `spec` under `opts`.
///
/// # Errors
///
/// Returns a message when the kernel fails validation or synthesis (the
/// checker needs the synthesized memory interface for the ambiguous-pair
/// and §V-B reduction sets).
pub fn check(spec: &KernelSpec, opts: &ProtocolOptions) -> Result<CheckResult, String> {
    Ok(Model::build(spec, opts)?.explore())
}

/// Re-executes a counterexample against the transition system, verifying
/// every event is enabled and produces the recorded kind/iteration, then
/// classifies the final state.
///
/// # Errors
///
/// Returns a message when the model cannot be built or the trace diverges
/// (an event not enabled, or enabled with a different kind/iteration) —
/// which would mean the checker emitted a bogus trace.
pub fn replay(
    spec: &KernelSpec,
    opts: &ProtocolOptions,
    cex: &Counterexample,
) -> Result<ReplayOutcome, String> {
    let model = Model::build(spec, opts)?;
    let mut st = model.initial();
    let mut scratch = McState::hollow();
    let mut cycle_key = None;
    for (k, ev) in cex.events.iter().enumerate() {
        if Some(k) == cex.cycle_from {
            cycle_key = Some(st.key());
        }
        match model.try_step(&st, ev.op, &mut scratch) {
            StepOutcome::Stepped { event, .. } => {
                if event.kind != ev.kind || event.iter != ev.iter {
                    return Err(format!(
                        "event {}: expected {:?} of iteration {}, got {:?} of iteration {}",
                        k + 1,
                        ev.kind,
                        ev.iter,
                        event.kind,
                        event.iter
                    ));
                }
                std::mem::swap(&mut st, &mut scratch);
            }
            blocked => {
                return Err(format!(
                    "event {}: op {} not enabled ({})",
                    k + 1,
                    ev.op,
                    blocked.name()
                ))
            }
        }
    }
    let mut any = false;
    let mut adm = false;
    for op in 0..model.ops.len() {
        match model.try_step(&st, op, &mut scratch) {
            StepOutcome::Stepped { .. } => any = true,
            StepOutcome::BlockedAdmission => adm = true,
            _ => {}
        }
    }
    Ok(ReplayOutcome {
        deadlock: !any && !model.is_success(&st),
        admission_blocked: adm,
        cycle_closed: cycle_key.is_some_and(|k| k == st.key()),
    })
}

// ---------------------------------------------------------------------------
// Fingerprints and the compacted visited store.
// ---------------------------------------------------------------------------

/// The sentinel port marking the root of the parent-fingerprint chain.
const ROOT_OP: u32 = u32::MAX;

/// splitmix64 — a fixed, keyless mixer (the std hasher is randomly seeded
/// per process, which would break deterministic cross-run comparisons).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One visited state: its fingerprint, the fingerprint of the BFS parent
/// and the port whose transition generated it — everything counterexample
/// reconstruction needs, in 24 bytes.
#[derive(Clone, Copy)]
struct FpSlot {
    fp: u64,
    parent: u64,
    op: u32,
}

const EMPTY_SLOT: FpSlot = FpSlot {
    fp: 0,
    parent: 0,
    op: 0,
};

/// Open-addressed fingerprint table (linear probing, ≤ 0.75 load).
/// Fingerprint 0 marks an empty slot; [`Model::fingerprint`] never
/// produces it.
struct FpTable {
    slots: Vec<FpSlot>,
    len: usize,
}

impl FpTable {
    fn new() -> Self {
        FpTable {
            slots: vec![EMPTY_SLOT; 1024],
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Inserts `fp` with its parent edge; returns true when new.
    fn insert(&mut self, fp: u64, parent: u64, op: u32) -> bool {
        debug_assert_ne!(fp, 0);
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (splitmix(fp) as usize) & mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.fp == 0 {
                *slot = FpSlot { fp, parent, op };
                self.len += 1;
                return true;
            }
            if slot.fp == fp {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// The parent edge of a visited fingerprint.
    fn get(&self, fp: u64) -> Option<(u64, u32)> {
        let mask = self.slots.len() - 1;
        let mut i = (splitmix(fp) as usize) & mask;
        loop {
            let slot = &self.slots[i];
            if slot.fp == 0 {
                return None;
            }
            if slot.fp == fp {
                return Some((slot.parent, slot.op));
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; 0]);
        self.slots = vec![EMPTY_SLOT; old.len() * 2];
        let mask = self.slots.len() - 1;
        for s in old {
            if s.fp == 0 {
                continue;
            }
            let mut i = (splitmix(s.fp) as usize) & mask;
            while self.slots[i].fp != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

// ---------------------------------------------------------------------------
// The abstract transition system.
// ---------------------------------------------------------------------------

/// One abstract state: the shared protocol state, the per-port issue
/// cursor (next iteration each static op will process), and the RAM image.
#[derive(Debug)]
struct McState {
    proto: ProtocolState,
    issued: Vec<u64>,
    ram: Vec<Value>,
}

type StateKey = (ProtocolKey, Vec<u64>, Vec<Value>);

impl Clone for McState {
    fn clone(&self) -> Self {
        McState {
            proto: self.proto.clone(),
            issued: self.issued.clone(),
            ram: self.ram.clone(),
        }
    }

    /// Field-wise assignment so every buffer of a recycled scratch state is
    /// reused. [`Model::try_step`] runs this once per explored transition —
    /// the hottest line of the whole checker — and the derived fallback
    /// would turn each one into four fresh allocations.
    fn clone_from(&mut self, source: &Self) {
        self.proto.clone_from(&source.proto);
        self.issued.clone_from(&source.issued);
        self.ram.clone_from(&source.ram);
    }
}

impl McState {
    fn key(&self) -> StateKey {
        (self.proto.key(), self.issued.clone(), self.ram.clone())
    }

    /// A buffer-less placeholder left behind when a scratch state is moved
    /// out into the frontier; the next `clone_from` refills it.
    fn hollow() -> McState {
        McState {
            proto: ProtocolState::new(1),
            issued: Vec::new(),
            ram: Vec::new(),
        }
    }
}

/// Per-worker scratch buffers, never shared across threads. `pool`
/// recycles retired state buffers ([`McState::clone_from`] overwrites them
/// in place instead of allocating); `keys` is the record-projection arena
/// the fingerprint sorts into ([`ProtocolState::fold_key_words`]). One
/// fingerprint runs per explored transition, so in steady state the pair
/// makes the expansion hot loop allocation-free.
#[derive(Default)]
struct WorkerScratch {
    pool: Vec<McState>,
    keys: Vec<RecordKey>,
}

enum StepOutcome {
    /// The op has a unique enabled transition; the successor state has been
    /// written into the caller's scratch buffer.
    Stepped {
        event: TraceEvent,
        squash: bool,
        /// The arrival is a §V-B-eliminated op whose full-set verdict was a
        /// squash (the PV204 witness condition).
        reduction_escape: bool,
    },
    /// Blocked by the admission reservation (a PV203 witness when terminal).
    BlockedAdmission,
    /// Blocked waiting for an operand load of the same iteration.
    BlockedOperand,
    /// All `bound` iterations of this op already processed.
    Exhausted,
}

impl StepOutcome {
    fn name(&self) -> &'static str {
        match self {
            StepOutcome::Stepped { .. } => "enabled",
            StepOutcome::BlockedAdmission => "blocked on admission",
            StepOutcome::BlockedOperand => "blocked on an operand",
            StepOutcome::Exhausted => "exhausted",
        }
    }
}

/// The gating half of [`Model::try_step`], without cloning or evaluating —
/// cheap enough to probe for every op when selecting an ample transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpStatus {
    Enabled,
    BlockedAdmission,
    BlockedOperand,
    Exhausted,
}

enum DeadCause {
    /// A guarded op silently skipped iteration `iter` — the frontier waits
    /// for a token that will never come (missing fake tokens, §V-C).
    MissingToken { op: usize, iter: u64 },
    /// Every not-yet-arrived op is refused a queue slot.
    Wedge { op: usize, iter: u64 },
    /// Any other stuck shape.
    Stuck,
}

/// Everything one expanded state contributes to the merge: its successors
/// (with fingerprints), the pre-reduction enabled count, and any verdict
/// evidence found at the state.
struct StateResult {
    succs: Vec<Succ>,
    enabled: u32,
    /// `Some(blocked ops)` when the state is a dead end short of success.
    dead_blocked: Option<Vec<(usize, u64)>>,
    /// First PV204 reduction-escape event out of this state.
    escape: Option<TraceEvent>,
    /// Squash successors staying in the (frontier, next_commit) plane —
    /// PV202 cycle candidates.
    squash_cands: Vec<(McState, TraceEvent)>,
}

struct Succ {
    op: usize,
    fp: u64,
    state: McState,
}

struct Model<'a> {
    spec: &'a KernelSpec,
    cfg: PrevvConfig,
    fake_tokens: bool,
    bound: u64,
    max_states: usize,
    truncated: bool,
    por: bool,
    audit: bool,
    threads: usize,
    ops: Vec<StaticMemOp>,
    stmt_base: Vec<usize>,
    spans: Vec<Option<Span>>,
    labels: Vec<String>,
    store_seqs: Vec<u32>,
    ports: u32,
    bases: Vec<usize>,
    array_of_addr: Vec<usize>,
    init_ram: Vec<Value>,
    rows: Vec<Vec<Value>>,
    guard_taken: Vec<Vec<bool>>,
    arbiter: Arbiter,
    validated: HashSet<usize>,
    reduced: HashSet<usize>,
    /// Static half of the ample check: op is unvalidated and its footprint
    /// is proven independent of every conflicting op on the same array.
    ample_ok: Vec<bool>,
    pair_stats: SeparationStats,
    /// Pairs the absint value domains discharged within the horizon box —
    /// already removed from `validated`; reported as PV502 notes.
    discharged: Vec<(AmbiguousPair, DischargeReason)>,
    expected_ram: Vec<Value>,
}

impl<'a> Model<'a> {
    fn build(spec: &'a KernelSpec, opts: &ProtocolOptions) -> Result<Self, String> {
        spec.validate()
            .map_err(|e| format!("invalid kernel: {e}"))?;
        let mut synth = prevv_ir::synthesize(spec).map_err(|e| format!("synthesis failed: {e}"))?;

        let requested = if opts.iterations == 0 {
            DEFAULT_ITERATION_BOUND
        } else {
            opts.iterations
        };
        let total = spec.iteration_count() as u64;
        let bound = requested.min(total);
        let truncated = bound < total;

        let rows: Vec<Vec<Value>> = spec
            .iteration_space()
            .into_iter()
            .take(bound as usize)
            .collect();
        let guard_taken: Vec<Vec<bool>> = rows
            .iter()
            .map(|row| {
                spec.body
                    .iter()
                    .map(|s| s.guard.as_ref().is_none_or(|g| eval_affine(g, row) != 0))
                    .collect()
            })
            .collect();

        let deps = prevv_ir::depend::analyze(spec);
        let mut pair_stats = crate::seplog::separation_stats(spec, &deps);

        // Horizon-box invariant discharge (PV502): the per-level min/max of
        // the explored iteration prefix is a rectangular box covering every
        // explored induction-variable value; pairs the absint value domains
        // prove disjoint within that box never collide in any explored
        // interleaving, so they leave the validated set before exploration
        // starts. Sound for the bounded verdicts only — PV2xx claims were
        // already relative to the horizon (PV200, DESIGN.md).
        let horizon_box: Vec<(Value, Value)> = (0..spec.levels.len())
            .map(|l| {
                let lo = rows.iter().map(|r| r[l]).min().unwrap_or(0);
                let hi = rows.iter().map(|r| r[l]).max().unwrap_or(-1);
                (lo, hi)
            })
            .collect();
        let discharged = absint::discharge_pairs(spec, &deps, &synth.interface.pairs, &horizon_box);
        if !discharged.is_empty() {
            let classes = crate::seplog::classify_pairs(spec, &deps);
            for (p, _) in &discharged {
                match classes.iter().find(|(q, _)| q == p).map(|&(_, v)| v) {
                    Some(Separation::MustAlias) => pair_stats.must_alias -= 1,
                    Some(Separation::Residual) => pair_stats.residual -= 1,
                    _ => {}
                }
                pair_stats.discharged += 1;
            }
            synth
                .interface
                .pairs
                .retain(|p| !discharged.iter().any(|(d, _)| d == p));
        }
        let iface = &synth.interface;

        let ops: Vec<StaticMemOp> = iface.ports.iter().map(|p| p.op.clone()).collect();
        let mut stmt_base = Vec::with_capacity(spec.body.len());
        let mut base = 0usize;
        for stmt in &spec.body {
            stmt_base.push(base);
            base += stmt.mem_op_count();
        }
        let spans: Vec<Option<Span>> = ops
            .iter()
            .map(|o| spec.body[o.stmt].op_span(o.id - stmt_base[o.stmt]))
            .collect();
        let labels: Vec<String> = ops
            .iter()
            .map(|o| {
                let kind = match o.kind {
                    MemOpKind::Load => "load",
                    MemOpKind::Store => "store",
                };
                format!("{kind} {}", spec.arrays[o.array.0].name)
            })
            .collect();
        let store_seqs: Vec<u32> = ops
            .iter()
            .filter(|o| o.kind == MemOpKind::Store)
            .map(|o| o.seq)
            .collect();
        let ports = ops.len() as u32;

        let bases: Vec<usize> = iface.arrays.iter().map(|a| a.base).collect();
        let mut array_of_addr = vec![0usize; iface.ram_words()];
        for (ai, a) in iface.arrays.iter().enumerate() {
            for slot in array_of_addr.iter_mut().skip(a.base).take(a.len) {
                *slot = ai;
            }
        }
        let init_ram = iface.initial_ram();

        let validated = iface.ambiguous_ops();
        let reduced = reduce(iface, true).validated;
        let arbiter = Arbiter::new(validated.clone(), opts.config.forwarding);

        // Static ample eligibility. An op can only be explored alone when
        // its arrival provably commutes with every other enabled arrival:
        //
        // * it is never validated (its verdict is forced `Clean`, so it
        //   never squashes — ample steps keep Σissued strictly increasing,
        //   which is the no-ignoring argument: every cycle contains a
        //   squash edge, and squash edges come only from fully-expanded
        //   states);
        // * for every conflicting op on the same array — (load, store),
        //   (store, load), (store, store); load/load pairs commute by
        //   definition — the footprints are proven `Disjoint`, or overlap
        //   only same-iteration *and* one op's record feeds the other
        //   (operand-forced: they are never co-enabled in the iteration
        //   where they could alias). Store/store matters because the
        //   arbiter's intervening-store exemption makes verdicts sensitive
        //   to store arrival order.
        //
        // The dynamic half (purity + persistence + admission slack) is
        // checked per state in `expand_state`.
        let operand_range = |op: usize| -> std::ops::Range<usize> {
            let o = &ops[op];
            match o.kind {
                MemOpKind::Load => (op - o.index.loads().len())..op,
                MemOpKind::Store => stmt_base[o.stmt]..op,
            }
        };
        let mut ample_ok = vec![false; ops.len()];
        for (p, slot) in ample_ok.iter_mut().enumerate() {
            if validated.contains(&p) {
                continue;
            }
            let mut ok = true;
            for q in 0..ops.len() {
                if q == p || ops[q].array != ops[p].array {
                    continue;
                }
                if ops[p].kind == MemOpKind::Load && ops[q].kind == MemOpKind::Load {
                    continue;
                }
                let class = classify_accesses(spec, &ops[p].index, &ops[q].index, ops[p].array);
                let operand_forced = operand_range(p).contains(&q) || operand_range(q).contains(&p);
                match class {
                    PairClass::Disjoint => {}
                    PairClass::SameIterationOnly if operand_forced => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            *slot = ok;
        }

        let threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            opts.threads
        };

        let expected_ram = sequential_ram(spec, &bases, &init_ram, &rows, &guard_taken);

        Ok(Model {
            spec,
            cfg: opts.config.clone(),
            fake_tokens: opts.fake_tokens,
            bound,
            max_states: opts.max_states.max(1),
            truncated,
            por: opts.por,
            audit: opts.audit,
            threads,
            ops,
            stmt_base,
            spans,
            labels,
            store_seqs,
            ports,
            bases,
            array_of_addr,
            init_ram,
            rows,
            guard_taken,
            arbiter,
            validated,
            reduced,
            ample_ok,
            pair_stats,
            discharged,
            expected_ram,
        })
    }

    fn initial(&self) -> McState {
        McState {
            proto: ProtocolState::new(self.cfg.depth),
            issued: vec![0; self.ops.len()],
            ram: self.init_ram.clone(),
        }
    }

    /// Keyless 64-bit fingerprint of a state: a splitmix64 chain over the
    /// canonical protocol-key words, the issue cursors and the RAM image.
    /// All three sections have a state-independent length for a given
    /// model (the key stream is length-prefixed), so no separators are
    /// needed. Zero is remapped (it marks an empty table slot). `keys` is
    /// the caller's reusable record-projection arena — this runs once per
    /// explored transition and must not allocate.
    fn fingerprint(&self, st: &McState, keys: &mut Vec<RecordKey>) -> u64 {
        let mut h = 0x5157_cc1b_7272_20a5u64;
        st.proto.fold_key_words(keys, |w| h = splitmix(h ^ w));
        for &i in &st.issued {
            h = splitmix(h ^ i);
        }
        for &v in &st.ram {
            h = splitmix(h ^ v as u64);
        }
        if h == 0 {
            1
        } else {
            h
        }
    }

    fn is_success(&self, st: &McState) -> bool {
        // The circuit's done condition: every iteration issued, every record
        // retired, and the completion frontier passed every iteration. A
        // silently skipped guarded op (no fake token) leaves the frontier
        // behind forever — that is the §V-C deadlock even when the queue
        // happens to be empty.
        st.issued.iter().all(|&i| i >= self.bound)
            && st.proto.queue.is_empty()
            && st.proto.frontier >= self.bound
    }

    /// The operand ops (loads whose record values feed this op) of `op`, as
    /// id ranges. Loads depend on the loads nested in their index
    /// expression, which `Expr::loads` places contiguously right before
    /// them; stores depend on all of their statement's loads.
    fn operands(&self, op: usize) -> std::ops::Range<usize> {
        let o = &self.ops[op];
        match o.kind {
            MemOpKind::Load => {
                let nested = o.index.loads().len();
                (op - nested)..op
            }
            MemOpKind::Store => self.stmt_base[o.stmt]..op,
        }
    }

    /// Deterministic housekeeping to fixpoint: frontier advance, in-order
    /// commit (writing the abstract RAM), retirement. Monotone (frontier and
    /// commit cursor only grow, records only leave) and confluent, so eager
    /// application is a sound state-space reduction.
    fn housekeeping(&self, st: &mut McState) {
        loop {
            let before = (
                st.proto.frontier,
                st.proto.next_commit,
                st.proto.queue.len(),
            );
            st.proto.advance_frontier(self.ports, u64::MAX);
            loop {
                match st.proto.commit_step(&self.store_seqs, true) {
                    CommitStep::Write { addr, value } => st.ram[addr] = value,
                    CommitStep::Fake => {}
                    CommitStep::Blocked => break,
                }
            }
            st.proto.retire(st.proto.queue.len());
            if (
                st.proto.frontier,
                st.proto.next_commit,
                st.proto.queue.len(),
            ) == before
            {
                break;
            }
        }
    }

    /// Evaluates `e` over induction-variable `row`, consuming the recorded
    /// operand load values in canonical (depth-first) order.
    fn eval_consume(&self, e: &Expr, row: &[Value], vals: &[Value], cur: &mut usize) -> Value {
        match e {
            Expr::Const(v) => *v,
            Expr::IndVar(l) => row[*l],
            Expr::Load(_, idx) => {
                let _ = self.eval_consume(idx, row, vals, cur);
                let v = vals[*cur];
                *cur += 1;
                v
            }
            Expr::Binary(op, l, r) => {
                let a = self.eval_consume(l, row, vals, cur);
                let b = self.eval_consume(r, row, vals, cur);
                op.apply(a, b)
            }
            Expr::Opaque(f, x) => f.apply(self.eval_consume(x, row, vals, cur)),
        }
    }

    fn operand_values(&self, st: &McState, range: std::ops::Range<usize>, iter: u64) -> Vec<Value> {
        range
            .map(|q| {
                st.proto
                    .queue
                    .iter()
                    .find(|r| r.port == q && r.iter == iter)
                    .map(|r| r.value)
                    .expect("operand record resident")
            })
            .collect()
    }

    /// Address and premature value of the arriving real op.
    fn evaluate(&self, st: &McState, op: usize, iter: u64) -> (usize, Value) {
        let o = &self.ops[op];
        let row = &self.rows[iter as usize];
        let vals = self.operand_values(st, self.operands(op), iter);
        match o.kind {
            MemOpKind::Load => {
                let mut cur = 0;
                let raw = self.eval_consume(&o.index, row, &vals, &mut cur);
                let addr = self.bases[o.array.0] + self.spec.resolve_index(o.array, raw);
                // Issue-time bypass: a resident older store to the same
                // address supplies the value when forwarding is on, or
                // unconditionally within the same iteration (program order
                // guarantees the store is what the load must observe).
                let value = match st.proto.resident_bypass(addr, (iter, o.seq)) {
                    Some((v, src)) if self.cfg.forwarding || src == iter => v,
                    _ => st.ram[addr],
                };
                (addr, value)
            }
            MemOpKind::Store => {
                let stmt = &self.spec.body[o.stmt];
                let mi = stmt.index.loads().len();
                let mut cur = 0;
                let raw = self.eval_consume(&stmt.index, row, &vals[..mi], &mut cur);
                let mut cur = 0;
                let value = self.eval_consume(&stmt.value, row, &vals[mi..], &mut cur);
                let addr = self.bases[o.array.0] + self.spec.resolve_index(o.array, raw);
                (addr, value)
            }
        }
    }

    fn describe(
        &self,
        op: usize,
        iter: u64,
        kind: EventKind,
        addr: Option<usize>,
        value: Value,
        from: Option<u64>,
    ) -> String {
        let label = &self.labels[op];
        let place = addr.map(|a| {
            let ai = self.array_of_addr[a];
            format!("{}[{}]", self.spec.arrays[ai].name, a - self.bases[ai])
        });
        match kind {
            EventKind::Arrive => format!(
                "arrive {label}#{op} iter {iter}: {} = {value}",
                place.unwrap_or_default()
            ),
            EventKind::Forward => format!(
                "arrive {label}#{op} iter {iter}: {} forwarded {value} from a resident store",
                place.unwrap_or_default()
            ),
            EventKind::Fake => format!("fake token {label}#{op} iter {iter} (guard false)"),
            EventKind::Skip => format!(
                "skip {label}#{op} iter {iter} (guard false, fake tokens disabled: no token sent)"
            ),
            EventKind::Squash => format!(
                "arrive {label}#{op} iter {iter}: {} = {value} — violation, squash from iter {}",
                place.unwrap_or_default(),
                from.unwrap_or(iter)
            ),
        }
    }

    fn event(
        &self,
        op: usize,
        iter: u64,
        kind: EventKind,
        addr: Option<usize>,
        value: Value,
        from: Option<u64>,
    ) -> TraceEvent {
        TraceEvent {
            op,
            iter,
            kind,
            addr,
            value,
            squash_from: from,
            span: self.spans[op],
            desc: self.describe(op, iter, kind, addr, value, from),
        }
    }

    /// The gating prefix of [`Self::try_step`] — must mirror it exactly:
    /// `op_status` returns [`OpStatus::Enabled`] iff `try_step` would
    /// return [`StepOutcome::Stepped`].
    fn op_status(&self, st: &McState, op: usize) -> OpStatus {
        let iter = st.issued[op];
        if iter >= self.bound {
            return OpStatus::Exhausted;
        }
        let o = &self.ops[op];
        if !self.guard_taken[iter as usize][o.stmt] {
            if !self.fake_tokens {
                return OpStatus::Enabled; // the silent skip is a step
            }
            return if st.proto.can_admit(iter, self.ports, 0) {
                OpStatus::Enabled
            } else {
                OpStatus::BlockedAdmission
            };
        }
        if self.operands(op).any(|q| st.issued[q] <= iter) {
            return OpStatus::BlockedOperand;
        }
        if st.proto.can_admit(iter, self.ports, 0) {
            OpStatus::Enabled
        } else {
            OpStatus::BlockedAdmission
        }
    }

    /// The unique transition of `op` from `st`, if enabled. The successor
    /// is written into `next`, a caller-owned scratch state whose buffers
    /// are recycled across calls ([`McState::clone_from`]); blocked
    /// outcomes leave `next` untouched and allocate nothing.
    fn try_step(&self, st: &McState, op: usize, next: &mut McState) -> StepOutcome {
        let iter = st.issued[op];
        if iter >= self.bound {
            return StepOutcome::Exhausted;
        }
        let o = &self.ops[op];
        if !self.guard_taken[iter as usize][o.stmt] {
            if !self.fake_tokens {
                // The op sends nothing at all: the iteration can never
                // complete at the frontier (the §V-C deadlock).
                next.clone_from(st);
                next.issued[op] = iter + 1;
                let event = self.event(op, iter, EventKind::Skip, None, 0, None);
                return StepOutcome::Stepped {
                    event,
                    squash: false,
                    reduction_escape: false,
                };
            }
            if !st.proto.can_admit(iter, self.ports, 0) {
                return StepOutcome::BlockedAdmission;
            }
            next.clone_from(st);
            next.proto.note_admitted(iter);
            next.proto
                .record_arrival(PrematureRecord::fake(op, o.kind, Tag::new(iter), o.seq));
            next.issued[op] = iter + 1;
            self.housekeeping(next);
            let event = self.event(op, iter, EventKind::Fake, None, 0, None);
            return StepOutcome::Stepped {
                event,
                squash: false,
                reduction_escape: false,
            };
        }
        if self.operands(op).any(|q| st.issued[q] <= iter) {
            return StepOutcome::BlockedOperand;
        }
        if !st.proto.can_admit(iter, self.ports, 0) {
            return StepOutcome::BlockedAdmission;
        }
        let (addr, value) = self.evaluate(st, op, iter);
        let mut rec = PrematureRecord::real(op, o.kind, Tag::new(iter), o.seq, addr, value);
        let verdict = if self.validated.contains(&op) {
            self.arbiter.verdict(&st.proto.queue, &rec)
        } else {
            Verdict::Clean
        };
        next.clone_from(st);
        next.proto.note_admitted(iter);
        next.issued[op] = iter + 1;
        let mut reduction_escape = false;
        let event = match verdict {
            Verdict::Clean => {
                next.proto.record_arrival(rec);
                self.event(op, iter, EventKind::Arrive, Some(addr), value, None)
            }
            Verdict::Forward(v) => {
                rec.value = v;
                next.proto.record_arrival(rec);
                self.event(op, iter, EventKind::Forward, Some(addr), v, None)
            }
            Verdict::Squash(viol) => {
                // The §V-B reduction exempts this op from validation; a
                // squash verdict here is one the reduced set would miss.
                reduction_escape = self.cfg.pair_reduction && !self.reduced.contains(&op);
                next.proto.record_arrival(rec);
                next.proto.flush(viol.from_iter);
                for i in next.issued.iter_mut() {
                    *i = (*i).min(viol.from_iter);
                }
                self.event(
                    op,
                    iter,
                    EventKind::Squash,
                    Some(addr),
                    value,
                    Some(viol.from_iter),
                )
            }
        };
        let squash = event.kind == EventKind::Squash;
        self.housekeeping(next);
        StepOutcome::Stepped {
            event,
            squash,
            reduction_escape,
        }
    }

    fn classify(&self, st: &McState, blocked: &[(usize, u64)]) -> DeadCause {
        let f = st.proto.frontier;
        if f < self.bound {
            for op in 0..self.ops.len() {
                if st.issued[op] > f && !st.proto.port_op_arrived(op, f) {
                    return DeadCause::MissingToken { op, iter: f };
                }
            }
        }
        if let Some(&(op, iter)) = blocked.first() {
            return DeadCause::Wedge { op, iter };
        }
        DeadCause::Stuck
    }

    /// Expands one state. When partial-order reduction applies, the result
    /// holds the single ample successor; otherwise all of them.
    ///
    /// `pool` holds retired states whose buffers are recycled:
    /// [`Model::try_step`] assigns into a pooled scratch via `clone_from`
    /// instead of cloning fresh, so in steady state successor construction
    /// costs no allocation at all — the ring, issue cursors and RAM image
    /// of a previously discarded state are overwritten in place. Kept
    /// successors are moved out whole and replaced from the pool.
    fn expand_state(&self, st: &McState, ws: &mut WorkerScratch) -> StateResult {
        let mut scratch = ws.pool.pop().unwrap_or_else(McState::hollow);
        let result = self.expand_state_with(st, ws, &mut scratch);
        ws.pool.push(scratch);
        result
    }

    fn expand_state_with(
        &self,
        st: &McState,
        ws: &mut WorkerScratch,
        scratch: &mut McState,
    ) -> StateResult {
        let statuses: Vec<OpStatus> = (0..self.ops.len())
            .map(|op| self.op_status(st, op))
            .collect();
        let enabled_count = statuses.iter().filter(|&&s| s == OpStatus::Enabled).count();

        if self.por && enabled_count > 1 {
            if let Some(res) = self.try_ample(st, &statuses, enabled_count, ws, scratch) {
                return res;
            }
        }

        let mut succs = Vec::new();
        let mut blocked: Vec<(usize, u64)> = Vec::new();
        let mut escape = None;
        let mut squash_cands = Vec::new();
        for op in 0..self.ops.len() {
            match self.try_step(st, op, scratch) {
                StepOutcome::Stepped {
                    event,
                    squash,
                    reduction_escape,
                } => {
                    if reduction_escape && escape.is_none() {
                        escape = Some(event.clone());
                    }
                    if squash
                        && scratch.proto.frontier == st.proto.frontier
                        && scratch.proto.next_commit == st.proto.next_commit
                    {
                        // A squash that made no frontier/commit progress can
                        // close a livelock cycle (both quantities are
                        // monotone, so a cycle holds them constant).
                        squash_cands.push((scratch.clone(), event));
                    }
                    let fp = self.fingerprint(scratch, &mut ws.keys);
                    let replacement = ws.pool.pop().unwrap_or_else(McState::hollow);
                    succs.push(Succ {
                        op,
                        fp,
                        state: std::mem::replace(scratch, replacement),
                    });
                }
                StepOutcome::BlockedAdmission => blocked.push((op, st.issued[op])),
                StepOutcome::BlockedOperand | StepOutcome::Exhausted => {}
            }
        }
        let success = self.is_success(st);
        if success {
            debug_assert_eq!(
                st.ram, self.expected_ram,
                "a completed interleaving must match the sequential semantics"
            );
        }
        StateResult {
            succs,
            enabled: enabled_count as u32,
            dead_blocked: (enabled_count == 0 && !success).then_some(blocked),
            escape,
            squash_cands,
        }
    }

    /// The dynamic half of the ample check. A statically eligible op `p`
    /// is explored alone only when its step is
    ///
    /// * **pure** — no frontier or commit progress (so no RAM write, no
    ///   retirement: the step only appends `p`'s own record), keeping it
    ///   invisible to every other op's evaluation;
    /// * **persistent** — every other enabled op stays enabled in the
    ///   successor; and
    /// * **slack-admitted** — `p` would still be admitted after every
    ///   other enabled op arrived first (the admission reservation is a
    ///   shared resource: without slack, delaying `p` behind the others
    ///   could block it and reach a wedge the reduction would hide); and
    /// * **working ahead** — `p` has already delivered its token for the
    ///   frontier iteration (`issued[p] > frontier`). A token still owed
    ///   to the frontier iteration gates frontier progress, and a PV202
    ///   livelock cycle is exactly a schedule that withholds such a token
    ///   forever: forcing it to fire would hide the cycle. Work-ahead
    ///   arrivals can never be what a no-progress cycle withholds — a
    ///   squash either flushes their record (the cycle state repeats) or
    ///   leaves it inert and disjoint.
    fn try_ample(
        &self,
        st: &McState,
        statuses: &[OpStatus],
        enabled_count: usize,
        ws: &mut WorkerScratch,
        scratch: &mut McState,
    ) -> Option<StateResult> {
        for p in 0..self.ops.len() {
            if statuses[p] != OpStatus::Enabled || !self.ample_ok[p] {
                continue;
            }
            if st.issued[p] <= st.proto.frontier {
                continue;
            }
            if !st
                .proto
                .can_admit(st.issued[p], self.ports, enabled_count - 1)
            {
                continue;
            }
            let StepOutcome::Stepped {
                squash,
                reduction_escape,
                ..
            } = self.try_step(st, p, scratch)
            else {
                continue;
            };
            debug_assert!(
                !squash && !reduction_escape,
                "ample ops are never validated"
            );
            // Rejected candidates simply leave their successor in the
            // scratch buffer for the next probe to overwrite.
            if scratch.proto.frontier != st.proto.frontier
                || scratch.proto.next_commit != st.proto.next_commit
            {
                continue;
            }
            let persistent = (0..self.ops.len()).all(|q| {
                q == p
                    || statuses[q] != OpStatus::Enabled
                    || self.op_status(scratch, q) == OpStatus::Enabled
            });
            if !persistent {
                continue;
            }
            let fp = self.fingerprint(scratch, &mut ws.keys);
            let replacement = ws.pool.pop().unwrap_or_else(McState::hollow);
            return Some(StateResult {
                succs: vec![Succ {
                    op: p,
                    fp,
                    state: std::mem::replace(scratch, replacement),
                }],
                enabled: enabled_count as u32,
                dead_blocked: None,
                escape: None,
                squash_cands: Vec::new(),
            });
        }
        None
    }

    /// Expands a whole BFS level, in parallel when configured. Results are
    /// returned in level order regardless of thread count: workers claim
    /// fixed chunks from an atomic counter and the merge re-sorts by chunk
    /// index, so exploration is deterministic and single-threaded runs are
    /// byte-identical to multi-threaded ones.
    ///
    /// `ws` holds the worker scratch (recycled state buffers plus the
    /// fingerprint key arena, see [`Model::expand_state`]); the sequential
    /// path threads it straight through, while parallel workers keep
    /// thread-local scratch (recycled states surface on the merging thread
    /// and cannot cheaply cross back).
    fn expand_level(&self, level: &[(u64, McState)], ws: &mut WorkerScratch) -> Vec<StateResult> {
        const CHUNK: usize = 256;
        if self.threads <= 1 || level.len() <= CHUNK {
            return level
                .iter()
                .map(|(_, st)| self.expand_state(st, ws))
                .collect();
        }
        let nchunks = level.len().div_ceil(CHUNK);
        let counter = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Vec<StateResult>)>> =
            Mutex::new(Vec::with_capacity(nchunks));
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(nchunks) {
                scope.spawn(|| {
                    let mut local = WorkerScratch::default();
                    loop {
                        let c = counter.fetch_add(1, Ordering::Relaxed);
                        if c >= nchunks {
                            break;
                        }
                        let lo = c * CHUNK;
                        let hi = (lo + CHUNK).min(level.len());
                        let out: Vec<StateResult> = level[lo..hi]
                            .iter()
                            .map(|(_, st)| self.expand_state(st, &mut local))
                            .collect();
                        results.lock().expect("worker panicked").push((c, out));
                    }
                });
            }
        });
        let mut results = results.into_inner().expect("worker panicked");
        results.sort_unstable_by_key(|&(c, _)| c);
        results.into_iter().flat_map(|(_, v)| v).collect()
    }

    /// Backtracks the parent-fingerprint chain of `fp` to the root and
    /// returns the generating port sequence in execution order. The length
    /// guard makes a fingerprint-collision-corrupted chain terminate
    /// deterministically instead of looping.
    fn ops_to(&self, visited: &FpTable, mut fp: u64) -> Vec<usize> {
        let mut ops = Vec::new();
        let cap = visited.len() + 1;
        while let Some((parent, op)) = visited.get(fp) {
            if op == ROOT_OP || ops.len() > cap {
                break;
            }
            ops.push(op as usize);
            fp = parent;
        }
        ops.reverse();
        ops
    }

    /// Rebuilds the event trace to the state fingerprinted `fp` by
    /// re-executing its port sequence from the initial state (transitions
    /// are deterministic per port, so the replay regenerates the exact
    /// events the exploration saw without storing any of them).
    fn trace_to(&self, visited: &FpTable, init: &McState, fp: u64) -> Vec<TraceEvent> {
        let ops = self.ops_to(visited, fp);
        let mut st = init.clone();
        let mut scratch = McState::hollow();
        let mut events = Vec::with_capacity(ops.len());
        for op in ops {
            match self.try_step(&st, op, &mut scratch) {
                StepOutcome::Stepped { event, .. } => {
                    events.push(event);
                    std::mem::swap(&mut st, &mut scratch);
                }
                // Unreachable short of a fingerprint collision; truncate
                // deterministically rather than panic.
                _ => break,
            }
        }
        events
    }

    /// Searches for a path `v -> … -> u` confined to the shared
    /// (frontier, next_commit) plane — which is exact, not heuristic: both
    /// quantities are monotone, so any path between two states of the same
    /// plane can never leave it. Returns the path's events (empty when
    /// `v == u`: the squash was a self-loop).
    ///
    /// `budget` is the number of state expansions this call may still
    /// spend; it is shared across every candidate of one exploration so
    /// a run with many deep planes pays [`CONFINED_SEARCH_CAP`] *total*,
    /// not per candidate. Self-loop candidates cost nothing.
    fn close_cycle(&self, u: &McState, v: &McState, budget: &mut usize) -> Option<Vec<TraceEvent>> {
        let target = u.key();
        if v.key() == target {
            return Some(Vec::new());
        }
        let plane = (u.proto.frontier, u.proto.next_commit);
        let mut states = vec![v.clone()];
        let mut seen: HashSet<StateKey> = HashSet::from([v.key()]);
        let mut parent: Vec<Option<(usize, TraceEvent)>> = vec![None];
        let mut queue = VecDeque::from([0usize]);
        let mut scratch = McState::hollow();
        while let Some(i) = queue.pop_front() {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            let st = states[i].clone();
            for op in 0..self.ops.len() {
                let StepOutcome::Stepped { event, .. } = self.try_step(&st, op, &mut scratch)
                else {
                    continue;
                };
                if (scratch.proto.frontier, scratch.proto.next_commit) != plane {
                    continue;
                }
                let key = scratch.key();
                if key == target {
                    let mut events = Vec::new();
                    let mut j = i;
                    while let Some((p, ev)) = &parent[j] {
                        events.push(ev.clone());
                        j = *p;
                    }
                    events.reverse();
                    events.push(event);
                    return Some(events);
                }
                if seen.insert(key) {
                    states.push(std::mem::replace(&mut scratch, McState::hollow()));
                    parent.push(Some((i, event)));
                    queue.push_back(states.len() - 1);
                }
            }
        }
        None
    }

    fn explore(&self) -> CheckResult {
        let start = Instant::now();
        let mut init = self.initial();
        self.housekeeping(&mut init);
        // Retired states (duplicate successors, fully expanded parents) are
        // recycled through the worker scratch so the expansion hot loop
        // reuses their buffers instead of allocating fresh ones per
        // transition; the key arena is recycled the same way.
        let mut ws = WorkerScratch::default();
        let init_fp = self.fingerprint(&init, &mut ws.keys);

        let mut visited = FpTable::new();
        visited.insert(init_fp, 0, ROOT_OP);
        let mut audit: Option<HashMap<u64, StateKey>> = self.audit.then(HashMap::new);
        if let Some(aud) = &mut audit {
            aud.insert(init_fp, init.key());
        }
        let mut audit_collisions = 0u64;

        let mut transitions = 0u64;
        let mut enabled_total = 0u64;
        let mut truncated_by_budget = false;

        struct Deadlock(u64, McState, Vec<(usize, u64)>);
        let mut deadlock: Option<Deadlock> = None;
        let mut escape: Option<(u64, TraceEvent)> = None;
        let mut squash_cands: Vec<(u64, McState, McState, TraceEvent)> = Vec::new();

        let mut level: Vec<(u64, McState)> = vec![(init_fp, init.clone())];
        'levels: while !level.is_empty() {
            let results = self.expand_level(&level, &mut ws);
            let mut next_level: Vec<(u64, McState)> = Vec::new();
            for (si, res) in results.into_iter().enumerate() {
                let (st_fp, st) = &level[si];
                enabled_total += u64::from(res.enabled);
                transitions += res.succs.len() as u64;
                if deadlock.is_none() {
                    if let Some(blocked) = res.dead_blocked {
                        deadlock = Some(Deadlock(*st_fp, st.clone(), blocked));
                    }
                }
                if escape.is_none() {
                    if let Some(ev) = res.escape {
                        escape = Some((*st_fp, ev));
                    }
                }
                for (v, ev) in res.squash_cands {
                    if squash_cands.len() < SQUASH_CANDIDATE_CAP {
                        squash_cands.push((*st_fp, st.clone(), v, ev));
                    }
                }
                for succ in res.succs {
                    if visited.insert(succ.fp, *st_fp, succ.op as u32) {
                        if let Some(aud) = &mut audit {
                            aud.insert(succ.fp, succ.state.key());
                        }
                        next_level.push((succ.fp, succ.state));
                        if visited.len() > self.max_states {
                            truncated_by_budget = true;
                            break 'levels;
                        }
                    } else {
                        if let Some(aud) = &audit {
                            if aud.get(&succ.fp) != Some(&succ.state.key()) {
                                audit_collisions += 1;
                            }
                        }
                        ws.pool.push(succ.state);
                    }
                }
            }
            ws.pool.extend(level.drain(..).map(|(_, st)| st));
            level = next_level;
        }

        let complete = !truncated_by_budget;
        let mut report = Report::default();
        let mut counterexamples = Vec::new();

        if self.truncated {
            report.push(Diagnostic::note(
                Code::ProtocolBound,
                format!(
                    "protocol checked for the first {} of {} iterations (soundness horizon; raise with --mc-depth)",
                    self.bound,
                    self.spec.iteration_count()
                ),
            ));
        }
        for (pair, reason) in &self.discharged {
            report.push(
                Diagnostic::note(
                    Code::InvariantDischarge,
                    format!(
                        "value invariants discharge the {}#{} / {}#{} pair within the \
                         explored bound ({} iteration(s)): {} — the pair leaves the \
                         checker's validated set",
                        self.labels[pair.load],
                        pair.load,
                        self.labels[pair.store],
                        pair.store,
                        self.bound,
                        reason.describe()
                    ),
                )
                .with_span(self.spans[pair.load].or(self.spans[pair.store])),
            );
        }
        if !complete {
            report.push(
                Diagnostic::warning(
                    Code::ProtocolBound,
                    format!(
                        "state cap of {} reached before exhausting the space: PV201–PV204 verdicts are incomplete",
                        self.max_states
                    ),
                )
                .with_help("raise --mc-states or lower --mc-depth"),
            );
        }

        if let Some(Deadlock(fp, st, blocked)) = &deadlock {
            let events = self.trace_to(&visited, &init, *fp);
            let resident = st.proto.queue.len();
            let (diag, code) = match self.classify(st, blocked) {
                DeadCause::MissingToken { op, iter } => (
                    Diagnostic::error(
                        Code::ProtocolDeadlock,
                        format!(
                            "reachable protocol deadlock: iteration {iter} never completes — {}#{op} sends no token when its guard is false",
                            self.labels[op]
                        ),
                    )
                    .with_span(self.spans[op])
                    .with_help(format!(
                        "{}\n{resident} unretired record(s) wait on the frontier; enable fake tokens (§V-C) so untaken guards still drain the queue",
                        render_events(&events, None)
                    )),
                    Code::ProtocolDeadlock,
                ),
                DeadCause::Wedge { op, iter } => (
                    Diagnostic::error(
                        Code::QueueWedge,
                        format!(
                            "premature queue wedge: depth {} cannot admit {}#{op} of iteration {iter} on some interleaving",
                            self.cfg.depth, self.labels[op]
                        ),
                    )
                    .with_span(self.spans[op])
                    .with_help(format!(
                        "{}\nthe admission reservation needs free slots > outstanding older ops; depth must be at least mem-ops-per-iteration (= {}), configured depth is {}",
                        render_events(&events, None),
                        self.ports,
                        self.cfg.depth
                    )),
                    Code::QueueWedge,
                ),
                DeadCause::Stuck => (
                    Diagnostic::error(
                        Code::ProtocolDeadlock,
                        format!(
                            "reachable protocol deadlock: no transition enabled with {resident} unretired record(s)"
                        ),
                    )
                    .with_help(render_events(&events, None)),
                    Code::ProtocolDeadlock,
                ),
            };
            report.push(diag);
            counterexamples.push(Counterexample {
                code,
                events,
                cycle_from: None,
            });
        }

        // PV202: a squash edge u -> v that stayed in its (frontier,
        // next_commit) plane closes a livelock cycle iff v reaches u again
        // — searched within the plane, which is exact (both quantities are
        // monotone, so a cycle holds them constant). Candidates are
        // examined in BFS discovery order; the first confirmed one has the
        // shortest prefix.
        let mut livelock = None;
        let mut confined_budget = CONFINED_SEARCH_CAP;
        for (u_fp, u, v, squash_ev) in &squash_cands {
            if let Some(cycle_tail) = self.close_cycle(u, v, &mut confined_budget) {
                let mut events = self.trace_to(&visited, &init, *u_fp);
                let cycle_from = events.len();
                let from = squash_ev.squash_from.unwrap_or(squash_ev.iter);
                events.push(squash_ev.clone());
                events.extend(cycle_tail);
                livelock = Some((events, cycle_from, from));
                break;
            }
        }
        if let Some((events, cycle_from, from)) = livelock {
            report.push(
                Diagnostic::error(
                    Code::SquashLivelock,
                    format!(
                        "squash livelock: iteration {from} can be squashed and replayed forever without frontier progress (reachable cycle of {} event(s))",
                        events.len() - cycle_from
                    ),
                )
                .with_span(events[cycle_from].span)
                .with_help(format!(
                    "{}\nenable forwarding (queue bypass) so replayed loads take the resident store's value instead of re-squashing",
                    render_events(&events, Some(cycle_from))
                )),
            );
            counterexamples.push(Counterexample {
                code: Code::SquashLivelock,
                events,
                cycle_from: Some(cycle_from),
            });
        }

        if let Some((fp, ev)) = escape {
            let mut events = self.trace_to(&visited, &init, fp);
            events.push(ev.clone());
            report.push(
                Diagnostic::warning(
                    Code::ReductionUnsound,
                    format!(
                        "§V-B pair reduction is unsound here: eliminated {}#{} reaches a squash verdict its run representative cannot observe",
                        self.labels[ev.op], ev.op
                    ),
                )
                .with_span(ev.span)
                .with_help(format!(
                    "{}\nkeep Eq. 11–12 reduction for area estimation only; the arbiter must validate the full ambiguous set for this kernel",
                    render_events(&events, None)
                )),
            );
            counterexamples.push(Counterexample {
                code: Code::ReductionUnsound,
                events,
                cycle_from: None,
            });
        }

        let stats = CheckStats {
            states: visited.len(),
            transitions,
            enabled: enabled_total,
            duration: start.elapsed(),
            truncated_by_budget,
            audit_collisions: audit.map(|_| audit_collisions),
            pairs: self.pair_stats,
            validated: self.validated.len(),
            threads: self.threads,
        };
        CheckResult {
            report,
            counterexamples,
            states: stats.states,
            complete,
            bound: self.bound,
            stats,
        }
    }
}

fn render_events(events: &[TraceEvent], cycle_from: Option<usize>) -> String {
    Counterexample {
        code: Code::ProtocolBound,
        events: events.to_vec(),
        cycle_from,
    }
    .render()
}

/// Guards are validated affine (no loads, no opaque calls).
fn eval_affine(e: &Expr, row: &[Value]) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Binary(op, l, r) => op.apply(eval_affine(l, row), eval_affine(r, row)),
        Expr::Load(..) | Expr::Opaque(..) => unreachable!("guards are validated affine"),
    }
}

/// The sequential (golden) RAM image after the bounded prefix of
/// iterations — what every successful interleaving must produce.
fn sequential_ram(
    spec: &KernelSpec,
    bases: &[usize],
    init: &[Value],
    rows: &[Vec<Value>],
    guard_taken: &[Vec<bool>],
) -> Vec<Value> {
    fn eval(spec: &KernelSpec, bases: &[usize], e: &Expr, row: &[Value], ram: &[Value]) -> Value {
        match e {
            Expr::Const(v) => *v,
            Expr::IndVar(l) => row[*l],
            Expr::Load(a, idx) => {
                let raw = eval(spec, bases, idx, row, ram);
                ram[bases[a.0] + spec.resolve_index(*a, raw)]
            }
            Expr::Binary(op, l, r) => op.apply(
                eval(spec, bases, l, row, ram),
                eval(spec, bases, r, row, ram),
            ),
            Expr::Opaque(f, x) => f.apply(eval(spec, bases, x, row, ram)),
        }
    }
    let mut ram = init.to_vec();
    for (it, row) in rows.iter().enumerate() {
        for (si, stmt) in spec.body.iter().enumerate() {
            if !guard_taken[it][si] {
                continue;
            }
            let raw = eval(spec, bases, &stmt.index, row, &ram);
            let value = eval(spec, bases, &stmt.value, row, &ram);
            ram[bases[stmt.array.0] + spec.resolve_index(stmt.array, raw)] = value;
        }
    }
    ram
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::LoopLevel;
    use prevv_ir::{ArrayDecl, ArrayId, Expr, OpaqueFn, Stmt};

    fn parse(name: &str, src: &str) -> KernelSpec {
        prevv_ir::parse::parse_kernel(name, src).expect("parses")
    }

    fn codes(r: &CheckResult) -> Vec<Code> {
        r.counterexamples.iter().map(|c| c.code).collect()
    }

    #[test]
    fn clean_unambiguous_kernel_proves_all_properties() {
        let spec = parse(
            "inc",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] += 1; }\n",
        );
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(r.is_clean(), "unexpected counterexamples: {:?}", codes(&r));
        assert!(r.complete);
        assert!(r.states > 1);
    }

    #[test]
    fn raw_hazard_kernel_is_clean_with_forwarding() {
        // Paper Fig. 2(a): runtime-dependent RAW hazards between iterations.
        let spec = parse(
            "fig2a",
            "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[b[i]] += 1;\n  b[i] += 2;\n}\n",
        );
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(r.is_clean(), "unexpected counterexamples: {:?}", codes(&r));
        assert!(r.complete, "explored {} states", r.states);
    }

    #[test]
    fn pv201_missing_fake_tokens_deadlocks() {
        let spec = parse(
            "guarded",
            "int acc[4];\nfor (int i = 0; i < 8; ++i) {\n  if (i % 2 == 0) acc[0] += i;\n}\n",
        );
        let opts = ProtocolOptions {
            fake_tokens: false,
            ..ProtocolOptions::default()
        };
        let r = check(&spec, &opts).expect("checks");
        assert_eq!(r.report.with_code(Code::ProtocolDeadlock).len(), 1);
        let cex = &r.counterexamples[0];
        assert_eq!(cex.code, Code::ProtocolDeadlock);
        assert!(!cex.events.is_empty());
        assert!(cex.events.iter().any(|e| e.kind == EventKind::Skip));
        let outcome = replay(&spec, &opts, cex).expect("trace replays");
        assert!(outcome.deadlock, "trace must reach the stuck state");

        // With fake tokens the same kernel is clean.
        let ok = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(ok.is_clean(), "unexpected: {:?}", codes(&ok));
    }

    #[test]
    fn pv203_shallow_queue_wedges() {
        // 3 ops per iteration, depth 2: the reservation can never admit the
        // whole frontier iteration.
        let spec = parse(
            "stencil",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + a[i + 1]; }\n",
        );
        let mut opts = ProtocolOptions::default();
        opts.config.depth = 2;
        let r = check(&spec, &opts).expect("checks");
        assert_eq!(r.report.with_code(Code::QueueWedge).len(), 1);
        let cex = &r.counterexamples[0];
        assert_eq!(cex.code, Code::QueueWedge);
        assert!(
            cex.events.len() <= 25,
            "trace too long: {}",
            cex.events.len()
        );
        let outcome = replay(&spec, &opts, cex).expect("trace replays");
        assert!(outcome.deadlock && outcome.admission_blocked);

        // Depth >= ops/iter admits the frontier iteration: no wedge.
        opts.config.depth = 3;
        let ok = check(&spec, &opts).expect("checks");
        assert!(ok.report.with_code(Code::QueueWedge).is_empty());
    }

    #[test]
    fn pv202_squash_livelock_without_forwarding() {
        // A loop-carried accumulation plus an independent statement that
        // keeps iterations incomplete: with forwarding off, the replayed
        // load re-reads stale RAM and re-squashes forever.
        let spec = parse(
            "livelock",
            "int a[4];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[0] += 1;\n  b[i] += 2;\n}\n",
        );
        let mut opts = ProtocolOptions::default();
        opts.config.forwarding = false;
        let r = check(&spec, &opts).expect("checks");
        assert_eq!(r.report.with_code(Code::SquashLivelock).len(), 1);
        let cex = r
            .counterexamples
            .iter()
            .find(|c| c.code == Code::SquashLivelock)
            .expect("livelock counterexample");
        let k = cex.cycle_from.expect("cycle marker");
        assert!(cex.events.len() <= 25);
        assert!(cex.events[k..].iter().any(|e| e.kind == EventKind::Squash));
        let outcome = replay(&spec, &opts, cex).expect("trace replays");
        assert!(outcome.cycle_closed, "the livelock cycle must close");

        // Forwarding (queue bypass) converges the replay: clean.
        let ok = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(ok.is_clean(), "unexpected: {:?}", codes(&ok));
    }

    #[test]
    fn pv204_reduction_escape_on_eliminated_store() {
        // Two consecutive ambiguous stores to `a`: Eq. 11-12 keeps the
        // last as representative. An opaque-indexed load later in program
        // order can be flagged by the *eliminated* first store. The opaque
        // modulus is 2 so the load's value footprint covers both store
        // addresses — a modulus of 1 would pin the index to 0 and the
        // invariant discharge would (correctly) retire the store-to-1 pair,
        // dissolving the run the reduction eliminates from.
        let a = ArrayId(0);
        let b = ArrayId(1);
        let spec = KernelSpec::new(
            "reduced",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 4), ArrayDecl::zeroed("b", 8)],
            vec![
                Stmt::store(a, Expr::lit(0), Expr::lit(5)),
                Stmt::store(a, Expr::lit(1), Expr::lit(7)),
                Stmt::store(
                    b,
                    Expr::var(0),
                    Expr::load(a, Expr::var(0).opaque(OpaqueFn::new(3, 2))),
                ),
            ],
        )
        .expect("valid");
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        let escapes = r.report.with_code(Code::ReductionUnsound);
        assert_eq!(escapes.len(), 1, "diagnostics: {:?}", r.report.diagnostics);
        let cex = r
            .counterexamples
            .iter()
            .find(|c| c.code == Code::ReductionUnsound)
            .expect("PV204 counterexample");
        assert!(matches!(cex.events.last(), Some(e) if e.kind == EventKind::Squash));
        // With pair reduction disabled the finding disappears.
        let mut opts = ProtocolOptions::default();
        opts.config.pair_reduction = false;
        let off = check(&spec, &opts).expect("checks");
        assert!(off.report.with_code(Code::ReductionUnsound).is_empty());
    }

    #[test]
    fn bounded_runs_note_the_horizon() {
        let spec = parse(
            "long",
            "int a[4];\nfor (int i = 0; i < 64; ++i) { a[i] += 1; }\n",
        );
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert_eq!(r.bound, DEFAULT_ITERATION_BOUND);
        assert_eq!(r.report.with_code(Code::ProtocolBound).len(), 1);
        assert!(r.is_clean());
    }

    // --- the scalable engine ------------------------------------------------

    /// The comparable essence of a run: verdict codes, trace shapes, and
    /// exploration counts. Thread counts must not change any of it.
    type Digest = (Vec<(Code, usize, Option<usize>)>, usize, u64, u64);

    fn digest(r: &CheckResult) -> Digest {
        (
            r.counterexamples
                .iter()
                .map(|c| (c.code, c.events.len(), c.cycle_from))
                .collect(),
            r.states,
            r.stats.transitions,
            r.stats.enabled,
        )
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = parse(
            "fig2a",
            "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[b[i]] += 1;\n  b[i] += 2;\n}\n",
        );
        let one = check(
            &spec,
            &ProtocolOptions {
                threads: 1,
                ..ProtocolOptions::default()
            },
        )
        .expect("checks");
        let four = check(
            &spec,
            &ProtocolOptions {
                threads: 4,
                ..ProtocolOptions::default()
            },
        )
        .expect("checks");
        assert_eq!(digest(&one), digest(&four));
        assert_eq!(one.report.to_json(None), four.report.to_json(None));
        assert_eq!(four.stats.threads, 4);
    }

    #[test]
    fn reduction_agrees_with_full_exploration() {
        // POR must not change any verdict, on clean and violating kernels
        // alike — and must not explore more states than the full graph.
        let cases: Vec<(KernelSpec, ProtocolOptions)> = vec![
            (
                parse(
                    "fig2a",
                    "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[b[i]] += 1;\n  b[i] += 2;\n}\n",
                ),
                ProtocolOptions::default(),
            ),
            (
                parse(
                    "livelock",
                    "int a[4];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[0] += 1;\n  b[i] += 2;\n}\n",
                ),
                {
                    let mut o = ProtocolOptions::default();
                    o.config.forwarding = false;
                    o
                },
            ),
            (
                parse(
                    "stencil",
                    "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + a[i + 1]; }\n",
                ),
                {
                    let mut o = ProtocolOptions::default();
                    o.config.depth = 2;
                    o
                },
            ),
        ];
        for (spec, opts) in cases {
            let por = check(&spec, &opts).expect("checks");
            let full = check(
                &spec,
                &ProtocolOptions {
                    por: false,
                    ..opts.clone()
                },
            )
            .expect("checks");
            let codes_of = |r: &CheckResult| {
                let mut c: Vec<Code> = r.counterexamples.iter().map(|c| c.code).collect();
                c.sort_by_key(|c| c.as_str().to_string());
                c
            };
            assert_eq!(
                codes_of(&por),
                codes_of(&full),
                "{}: reduced and full verdicts diverge",
                spec.name
            );
            assert!(
                por.states <= full.states,
                "{}: reduction explored more states ({} > {})",
                spec.name,
                por.states,
                full.states
            );
        }
    }

    #[test]
    fn reduction_actually_shrinks_the_graph() {
        // A kernel with provably independent streams is where the ample
        // rule bites: the reduced graph must be strictly smaller.
        let spec = parse(
            "streams",
            "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[i] += 1;\n  b[i] += 2;\n}\n",
        );
        let por = check(&spec, &ProtocolOptions::default()).expect("checks");
        let full = check(
            &spec,
            &ProtocolOptions {
                por: false,
                ..ProtocolOptions::default()
            },
        )
        .expect("checks");
        assert!(por.is_clean() && full.is_clean());
        assert!(
            por.states < full.states,
            "reduction did not shrink: {} vs {}",
            por.states,
            full.states
        );
        assert!(por.stats.reduction_ratio() < 1.0);
    }

    #[test]
    fn audit_mode_sees_no_collisions() {
        let spec = parse(
            "fig2a",
            "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[b[i]] += 1;\n  b[i] += 2;\n}\n",
        );
        let r = check(
            &spec,
            &ProtocolOptions {
                audit: true,
                ..ProtocolOptions::default()
            },
        )
        .expect("checks");
        assert_eq!(r.stats.audit_collisions, Some(0));
        let off = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert_eq!(off.stats.audit_collisions, None);
    }

    #[test]
    fn stats_expose_discharge_and_throughput() {
        let spec = parse(
            "fig2a",
            "int a[16];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[b[i]] += 5;\n  b[i] += 3;\n}\n",
        );
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert_eq!(r.stats.pairs.conservative, 4);
        assert_eq!(r.stats.pairs.discharged, 3, "the three affine b pairs");
        assert_eq!(r.stats.pairs.residual, 1);
        assert!(r.stats.validated < 2 * r.stats.pairs.conservative);
        assert!(r.stats.transitions <= r.stats.enabled);
        assert_eq!(r.stats.states, r.states);
        assert!(r.stats.states_per_sec() > 0.0);
        assert!(!r.stats.truncated_by_budget);
    }

    #[test]
    fn budget_truncation_is_reported_distinctly() {
        let spec = parse(
            "fig2a",
            "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[b[i]] += 1;\n  b[i] += 2;\n}\n",
        );
        let r = check(
            &spec,
            &ProtocolOptions {
                max_states: 100,
                ..ProtocolOptions::default()
            },
        )
        .expect("checks");
        assert!(!r.complete);
        assert!(r.stats.truncated_by_budget);
        assert_eq!(
            r.report.with_code(Code::ProtocolBound).len(),
            2,
            "horizon note + budget warning"
        );
    }

    #[test]
    fn fingerprint_table_inserts_and_backtracks() {
        let mut t = FpTable::new();
        assert!(t.insert(42, 0, ROOT_OP));
        assert!(!t.insert(42, 9, 3), "duplicate fingerprints are merged");
        for fp in 1..=3000u64 {
            t.insert(fp.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, 42, 7);
        }
        assert_eq!(t.get(42), Some((0, ROOT_OP)));
        assert_eq!(t.get(0x0dd0_0000_0000_0001), None);
    }
}
