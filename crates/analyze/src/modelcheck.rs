//! PV2xx — bounded explicit-state model checking of the PreVV protocol.
//!
//! The checker builds an abstract transition system from a [`KernelSpec`]
//! and a [`PrevvConfig`] and explores it exhaustively (BFS over hash-consed
//! states) up to a configurable iteration bound:
//!
//! * **State** — the pure [`ProtocolState`] (premature queue, completion
//!   frontier, in-order commit cursor, admission reservation) shared
//!   verbatim with the cycle-accurate simulator, plus a per-port issue
//!   cursor and the abstract RAM image.
//! * **Transitions** — nondeterministic per-port arrivals (real, fake, or
//!   — with fake tokens disabled — a silent *skip*), validated by the very
//!   same [`Arbiter::verdict`] comparator the simulator uses; a `Squash`
//!   verdict flushes and rewinds exactly like the controller's
//!   squash-and-replay. Housekeeping (frontier advance, in-order commit,
//!   retirement) is deterministic, monotone and confluent, so it runs to a
//!   fixpoint after every arrival rather than being interleaved — a sound
//!   reduction of the state space (see DESIGN.md).
//! * **Verdicts** —
//!   [`PV201`](Code::ProtocolDeadlock) reachable deadlock (no enabled
//!   transition, unretired records), [`PV202`](Code::SquashLivelock)
//!   squash livelock (a cycle squashing the same iteration without
//!   frontier progress), [`PV203`](Code::QueueWedge) insufficient queue
//!   capacity on some interleaving, and
//!   [`PV204`](Code::ReductionUnsound) a §V-B-eliminated operation whose
//!   full-set validation verdict is a squash the reduced set would miss.
//!
//! Counterexamples are shortest traces of protocol events (BFS parents),
//! span-annotated via [`Stmt::op_span`](prevv_ir::Stmt::op_span), and can
//! be re-executed against the transition system with [`replay`] — which is
//! how the property tests prove every reported trace is real.

use std::collections::{HashMap, HashSet, VecDeque};

use prevv_core::protocol::ProtocolKey;
use prevv_core::reduce::reduce;
use prevv_core::{Arbiter, CommitStep, PrematureRecord, PrevvConfig, ProtocolState, Verdict};
use prevv_dataflow::{Tag, Value};
use prevv_ir::{depend::StaticMemOp, Expr, KernelSpec, MemOpKind, Span};

use crate::diag::{Code, Diagnostic, Report};

/// Default iteration bound when [`ProtocolOptions::iterations`] is zero.
///
/// Two iterations cover every protocol interaction the checker looks for:
/// intra-iteration ordering, the distance-1 cross-iteration hazards that
/// drive squash/replay, admission reservation across the frontier, and
/// guarded-iteration draining. Deeper bounds are opt-in (`--mc-depth`);
/// the state count grows steeply with the bound (see DESIGN.md).
pub const DEFAULT_ITERATION_BOUND: u64 = 2;

/// Default cap on explored states before the checker gives up with PV200.
pub const DEFAULT_MAX_STATES: usize = 120_000;

/// Configuration of the protocol model checker.
#[derive(Debug, Clone)]
pub struct ProtocolOptions {
    /// Controller configuration being verified (queue depth, forwarding,
    /// pair reduction).
    pub config: PrevvConfig,
    /// Whether guarded ops send fake tokens (paper §V-C). Disabling this on
    /// a guarded kernel is the canonical PV201 deadlock.
    pub fake_tokens: bool,
    /// Iteration bound: only the first `iterations` iterations are
    /// explored. `0` selects [`DEFAULT_ITERATION_BOUND`]. The bound is the
    /// checker's soundness horizon — see DESIGN.md.
    pub iterations: u64,
    /// State cap: exploration stops with a PV200 warning beyond this.
    pub max_states: usize,
}

impl Default for ProtocolOptions {
    fn default() -> Self {
        ProtocolOptions {
            config: PrevvConfig::default(),
            fake_tokens: true,
            iterations: 0,
            max_states: DEFAULT_MAX_STATES,
        }
    }
}

impl ProtocolOptions {
    /// Options for a concrete controller configuration.
    pub fn for_config(cfg: &PrevvConfig) -> Self {
        ProtocolOptions {
            config: cfg.clone(),
            ..Self::default()
        }
    }
}

/// What kind of protocol event a trace step is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A real operation arrived and validated clean.
    Arrive,
    /// A real load arrived and took the forwarded value of the youngest
    /// older resident store.
    Forward,
    /// A guarded op's guard was false and it sent a fake token.
    Fake,
    /// A guarded op's guard was false and — fake tokens disabled — it sent
    /// nothing at all.
    Skip,
    /// A real arrival was found in violation: squash and replay.
    Squash,
}

/// One step of a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Static port (= op id from `depend::enumerate_ops`).
    pub op: usize,
    /// Iteration the event belongs to.
    pub iter: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Flat RAM address touched (real arrivals only).
    pub addr: Option<usize>,
    /// Value read/written/forwarded (real arrivals only).
    pub value: Value,
    /// Squash restart iteration (squash events only).
    pub squash_from: Option<u64>,
    /// Source span of the op, when the kernel was parsed from text.
    pub span: Option<Span>,
    /// Human-readable rendering of the event.
    pub desc: String,
}

/// A machine-readable counterexample: the shortest event trace reaching
/// the violation. For livelocks, `cycle_from` indexes the first event of
/// the repeating cycle.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which PV2xx property the trace violates.
    pub code: Code,
    /// The events, in execution order.
    pub events: Vec<TraceEvent>,
    /// Livelock only: `events[cycle_from..]` repeats forever.
    pub cycle_from: Option<usize>,
}

impl Counterexample {
    /// Renders the trace as numbered lines (used as diagnostic help text).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("counterexample ({} events):", self.events.len()));
        for (i, e) in self.events.iter().enumerate() {
            out.push('\n');
            out.push_str(&format!("  {:>2}. {}", i + 1, e.desc));
        }
        if let Some(k) = self.cycle_from {
            out.push_str(&format!(
                "\n  events {}..{} repeat forever (no frontier progress)",
                k + 1,
                self.events.len()
            ));
        }
        out
    }
}

/// Result of a protocol model-checking run.
#[derive(Debug)]
pub struct CheckResult {
    /// PV200–PV204 diagnostics, rendered traces attached as help text.
    pub report: Report,
    /// Machine-readable counterexamples (at most one per code, shortest
    /// first found by BFS).
    pub counterexamples: Vec<Counterexample>,
    /// Number of distinct abstract states explored.
    pub states: usize,
    /// False when the state cap was hit before exhausting the space.
    pub complete: bool,
    /// The iteration bound actually used.
    pub bound: u64,
}

impl CheckResult {
    /// True when no PV201–PV204 property was violated.
    pub fn is_clean(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// Outcome of [`replay`]ing a counterexample.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOutcome {
    /// After the trace, no transition is enabled and the run has not
    /// succeeded (PV201/PV203 witness).
    pub deadlock: bool,
    /// After the trace, at least one op is blocked by the admission
    /// reservation (distinguishes PV203 from PV201).
    pub admission_blocked: bool,
    /// Livelock traces only: the state at `cycle_from` recurred exactly at
    /// the end of the trace (the cycle closes).
    pub cycle_closed: bool,
}

/// Model-checks the PreVV protocol for `spec` under `opts`.
///
/// # Errors
///
/// Returns a message when the kernel fails validation or synthesis (the
/// checker needs the synthesized memory interface for the ambiguous-pair
/// and §V-B reduction sets).
pub fn check(spec: &KernelSpec, opts: &ProtocolOptions) -> Result<CheckResult, String> {
    Ok(Model::build(spec, opts)?.explore())
}

/// Re-executes a counterexample against the transition system, verifying
/// every event is enabled and produces the recorded kind/iteration, then
/// classifies the final state.
///
/// # Errors
///
/// Returns a message when the model cannot be built or the trace diverges
/// (an event not enabled, or enabled with a different kind/iteration) —
/// which would mean the checker emitted a bogus trace.
pub fn replay(
    spec: &KernelSpec,
    opts: &ProtocolOptions,
    cex: &Counterexample,
) -> Result<ReplayOutcome, String> {
    let model = Model::build(spec, opts)?;
    let mut st = model.initial();
    let mut cycle_key = None;
    for (k, ev) in cex.events.iter().enumerate() {
        if Some(k) == cex.cycle_from {
            cycle_key = Some(st.key());
        }
        match model.try_step(&st, ev.op) {
            StepOutcome::Stepped { next, event, .. } => {
                if event.kind != ev.kind || event.iter != ev.iter {
                    return Err(format!(
                        "event {}: expected {:?} of iteration {}, got {:?} of iteration {}",
                        k + 1,
                        ev.kind,
                        ev.iter,
                        event.kind,
                        event.iter
                    ));
                }
                st = *next;
            }
            blocked => {
                return Err(format!(
                    "event {}: op {} not enabled ({})",
                    k + 1,
                    ev.op,
                    blocked.name()
                ))
            }
        }
    }
    let mut any = false;
    let mut adm = false;
    for op in 0..model.ops.len() {
        match model.try_step(&st, op) {
            StepOutcome::Stepped { .. } => any = true,
            StepOutcome::BlockedAdmission => adm = true,
            _ => {}
        }
    }
    Ok(ReplayOutcome {
        deadlock: !any && !model.is_success(&st),
        admission_blocked: adm,
        cycle_closed: cycle_key.is_some_and(|k| k == st.key()),
    })
}

// ---------------------------------------------------------------------------
// The abstract transition system.
// ---------------------------------------------------------------------------

/// One abstract state: the shared protocol state, the per-port issue
/// cursor (next iteration each static op will process), and the RAM image.
#[derive(Debug, Clone)]
struct McState {
    proto: ProtocolState,
    issued: Vec<u64>,
    ram: Vec<Value>,
}

type StateKey = (ProtocolKey, Vec<u64>, Vec<Value>);

impl McState {
    fn key(&self) -> StateKey {
        (self.proto.key(), self.issued.clone(), self.ram.clone())
    }
}

enum StepOutcome {
    /// The op has a unique enabled transition. The successor is boxed so
    /// the blocked variants stay pointer-sized.
    Stepped {
        next: Box<McState>,
        event: TraceEvent,
        squash: bool,
        /// The arrival is a §V-B-eliminated op whose full-set verdict was a
        /// squash (the PV204 witness condition).
        reduction_escape: bool,
    },
    /// Blocked by the admission reservation (a PV203 witness when terminal).
    BlockedAdmission,
    /// Blocked waiting for an operand load of the same iteration.
    BlockedOperand,
    /// All `bound` iterations of this op already processed.
    Exhausted,
}

impl StepOutcome {
    fn name(&self) -> &'static str {
        match self {
            StepOutcome::Stepped { .. } => "enabled",
            StepOutcome::BlockedAdmission => "blocked on admission",
            StepOutcome::BlockedOperand => "blocked on an operand",
            StepOutcome::Exhausted => "exhausted",
        }
    }
}

enum DeadCause {
    /// A guarded op silently skipped iteration `iter` — the frontier waits
    /// for a token that will never come (missing fake tokens, §V-C).
    MissingToken { op: usize, iter: u64 },
    /// Every not-yet-arrived op is refused a queue slot.
    Wedge { op: usize, iter: u64 },
    /// Any other stuck shape.
    Stuck,
}

struct Model<'a> {
    spec: &'a KernelSpec,
    cfg: PrevvConfig,
    fake_tokens: bool,
    bound: u64,
    max_states: usize,
    truncated: bool,
    ops: Vec<StaticMemOp>,
    stmt_base: Vec<usize>,
    spans: Vec<Option<Span>>,
    labels: Vec<String>,
    store_seqs: Vec<u32>,
    ports: u32,
    bases: Vec<usize>,
    array_of_addr: Vec<usize>,
    init_ram: Vec<Value>,
    rows: Vec<Vec<Value>>,
    guard_taken: Vec<Vec<bool>>,
    arbiter: Arbiter,
    validated: HashSet<usize>,
    reduced: HashSet<usize>,
    expected_ram: Vec<Value>,
}

impl<'a> Model<'a> {
    fn build(spec: &'a KernelSpec, opts: &ProtocolOptions) -> Result<Self, String> {
        spec.validate().map_err(|e| format!("invalid kernel: {e}"))?;
        let synth = prevv_ir::synthesize(spec).map_err(|e| format!("synthesis failed: {e}"))?;
        let iface = &synth.interface;

        let requested = if opts.iterations == 0 {
            DEFAULT_ITERATION_BOUND
        } else {
            opts.iterations
        };
        let total = spec.iteration_count() as u64;
        let bound = requested.min(total);
        let truncated = bound < total;

        let ops: Vec<StaticMemOp> = iface.ports.iter().map(|p| p.op.clone()).collect();
        let mut stmt_base = Vec::with_capacity(spec.body.len());
        let mut base = 0usize;
        for stmt in &spec.body {
            stmt_base.push(base);
            base += stmt.mem_op_count();
        }
        let spans: Vec<Option<Span>> = ops
            .iter()
            .map(|o| spec.body[o.stmt].op_span(o.id - stmt_base[o.stmt]))
            .collect();
        let labels: Vec<String> = ops
            .iter()
            .map(|o| {
                let kind = match o.kind {
                    MemOpKind::Load => "load",
                    MemOpKind::Store => "store",
                };
                format!("{kind} {}", spec.arrays[o.array.0].name)
            })
            .collect();
        let store_seqs: Vec<u32> = ops
            .iter()
            .filter(|o| o.kind == MemOpKind::Store)
            .map(|o| o.seq)
            .collect();
        let ports = ops.len() as u32;

        let bases: Vec<usize> = iface.arrays.iter().map(|a| a.base).collect();
        let mut array_of_addr = vec![0usize; iface.ram_words()];
        for (ai, a) in iface.arrays.iter().enumerate() {
            for slot in array_of_addr.iter_mut().skip(a.base).take(a.len) {
                *slot = ai;
            }
        }
        let init_ram = iface.initial_ram();
        let rows: Vec<Vec<Value>> = spec
            .iteration_space()
            .into_iter()
            .take(bound as usize)
            .collect();
        let guard_taken: Vec<Vec<bool>> = rows
            .iter()
            .map(|row| {
                spec.body
                    .iter()
                    .map(|s| s.guard.as_ref().is_none_or(|g| eval_affine(g, row) != 0))
                    .collect()
            })
            .collect();

        let validated = iface.ambiguous_ops();
        let reduced = reduce(iface, true).validated;
        let arbiter = Arbiter::new(validated.clone(), opts.config.forwarding);

        let expected_ram = sequential_ram(spec, &bases, &init_ram, &rows, &guard_taken);

        Ok(Model {
            spec,
            cfg: opts.config.clone(),
            fake_tokens: opts.fake_tokens,
            bound,
            max_states: opts.max_states.max(1),
            truncated,
            ops,
            stmt_base,
            spans,
            labels,
            store_seqs,
            ports,
            bases,
            array_of_addr,
            init_ram,
            rows,
            guard_taken,
            arbiter,
            validated,
            reduced,
            expected_ram,
        })
    }

    fn initial(&self) -> McState {
        McState {
            proto: ProtocolState::new(self.cfg.depth),
            issued: vec![0; self.ops.len()],
            ram: self.init_ram.clone(),
        }
    }

    fn is_success(&self, st: &McState) -> bool {
        // The circuit's done condition: every iteration issued, every record
        // retired, and the completion frontier passed every iteration. A
        // silently skipped guarded op (no fake token) leaves the frontier
        // behind forever — that is the §V-C deadlock even when the queue
        // happens to be empty.
        st.issued.iter().all(|&i| i >= self.bound)
            && st.proto.queue.is_empty()
            && st.proto.frontier >= self.bound
    }

    /// The operand ops (loads whose record values feed this op) of `op`, as
    /// id ranges. Loads depend on the loads nested in their index
    /// expression, which `Expr::loads` places contiguously right before
    /// them; stores depend on all of their statement's loads.
    fn operands(&self, op: usize) -> std::ops::Range<usize> {
        let o = &self.ops[op];
        match o.kind {
            MemOpKind::Load => {
                let nested = o.index.loads().len();
                (op - nested)..op
            }
            MemOpKind::Store => self.stmt_base[o.stmt]..op,
        }
    }

    /// Deterministic housekeeping to fixpoint: frontier advance, in-order
    /// commit (writing the abstract RAM), retirement. Monotone (frontier and
    /// commit cursor only grow, records only leave) and confluent, so eager
    /// application is a sound state-space reduction.
    fn housekeeping(&self, st: &mut McState) {
        loop {
            let before = (st.proto.frontier, st.proto.next_commit, st.proto.queue.len());
            st.proto.advance_frontier(self.ports, u64::MAX);
            loop {
                match st.proto.commit_step(&self.store_seqs, true) {
                    CommitStep::Write { addr, value } => st.ram[addr] = value,
                    CommitStep::Fake => {}
                    CommitStep::Blocked => break,
                }
            }
            st.proto.retire(st.proto.queue.len());
            if (st.proto.frontier, st.proto.next_commit, st.proto.queue.len()) == before {
                break;
            }
        }
    }

    /// Evaluates `e` over induction-variable `row`, consuming the recorded
    /// operand load values in canonical (depth-first) order.
    fn eval_consume(&self, e: &Expr, row: &[Value], vals: &[Value], cur: &mut usize) -> Value {
        match e {
            Expr::Const(v) => *v,
            Expr::IndVar(l) => row[*l],
            Expr::Load(_, idx) => {
                let _ = self.eval_consume(idx, row, vals, cur);
                let v = vals[*cur];
                *cur += 1;
                v
            }
            Expr::Binary(op, l, r) => {
                let a = self.eval_consume(l, row, vals, cur);
                let b = self.eval_consume(r, row, vals, cur);
                op.apply(a, b)
            }
            Expr::Opaque(f, x) => f.apply(self.eval_consume(x, row, vals, cur)),
        }
    }

    fn operand_values(&self, st: &McState, range: std::ops::Range<usize>, iter: u64) -> Vec<Value> {
        range
            .map(|q| {
                st.proto
                    .queue
                    .iter()
                    .find(|r| r.port == q && r.iter == iter)
                    .map(|r| r.value)
                    .expect("operand record resident")
            })
            .collect()
    }

    /// Address and premature value of the arriving real op.
    fn evaluate(&self, st: &McState, op: usize, iter: u64) -> (usize, Value) {
        let o = &self.ops[op];
        let row = &self.rows[iter as usize];
        let vals = self.operand_values(st, self.operands(op), iter);
        match o.kind {
            MemOpKind::Load => {
                let mut cur = 0;
                let raw = self.eval_consume(&o.index, row, &vals, &mut cur);
                let addr = self.bases[o.array.0] + self.spec.resolve_index(o.array, raw);
                // Issue-time bypass: a resident older store to the same
                // address supplies the value when forwarding is on, or
                // unconditionally within the same iteration (program order
                // guarantees the store is what the load must observe).
                let value = match st.proto.resident_bypass(addr, (iter, o.seq)) {
                    Some((v, src)) if self.cfg.forwarding || src == iter => v,
                    _ => st.ram[addr],
                };
                (addr, value)
            }
            MemOpKind::Store => {
                let stmt = &self.spec.body[o.stmt];
                let mi = stmt.index.loads().len();
                let mut cur = 0;
                let raw = self.eval_consume(&stmt.index, row, &vals[..mi], &mut cur);
                let mut cur = 0;
                let value = self.eval_consume(&stmt.value, row, &vals[mi..], &mut cur);
                let addr = self.bases[o.array.0] + self.spec.resolve_index(o.array, raw);
                (addr, value)
            }
        }
    }

    fn describe(&self, op: usize, iter: u64, kind: EventKind, addr: Option<usize>, value: Value, from: Option<u64>) -> String {
        let label = &self.labels[op];
        let place = addr.map(|a| {
            let ai = self.array_of_addr[a];
            format!("{}[{}]", self.spec.arrays[ai].name, a - self.bases[ai])
        });
        match kind {
            EventKind::Arrive => format!(
                "arrive {label}#{op} iter {iter}: {} = {value}",
                place.unwrap_or_default()
            ),
            EventKind::Forward => format!(
                "arrive {label}#{op} iter {iter}: {} forwarded {value} from a resident store",
                place.unwrap_or_default()
            ),
            EventKind::Fake => format!("fake token {label}#{op} iter {iter} (guard false)"),
            EventKind::Skip => format!(
                "skip {label}#{op} iter {iter} (guard false, fake tokens disabled: no token sent)"
            ),
            EventKind::Squash => format!(
                "arrive {label}#{op} iter {iter}: {} = {value} — violation, squash from iter {}",
                place.unwrap_or_default(),
                from.unwrap_or(iter)
            ),
        }
    }

    fn event(&self, op: usize, iter: u64, kind: EventKind, addr: Option<usize>, value: Value, from: Option<u64>) -> TraceEvent {
        TraceEvent {
            op,
            iter,
            kind,
            addr,
            value,
            squash_from: from,
            span: self.spans[op],
            desc: self.describe(op, iter, kind, addr, value, from),
        }
    }

    /// The unique transition of `op` from `st`, if enabled.
    fn try_step(&self, st: &McState, op: usize) -> StepOutcome {
        let iter = st.issued[op];
        if iter >= self.bound {
            return StepOutcome::Exhausted;
        }
        let o = &self.ops[op];
        if !self.guard_taken[iter as usize][o.stmt] {
            if !self.fake_tokens {
                // The op sends nothing at all: the iteration can never
                // complete at the frontier (the §V-C deadlock).
                let mut next = st.clone();
                next.issued[op] = iter + 1;
                let event = self.event(op, iter, EventKind::Skip, None, 0, None);
                return StepOutcome::Stepped { next: Box::new(next), event, squash: false, reduction_escape: false };
            }
            if !st.proto.can_admit(iter, self.ports, 0) {
                return StepOutcome::BlockedAdmission;
            }
            let mut next = st.clone();
            next.proto.note_admitted(iter);
            next.proto
                .record_arrival(PrematureRecord::fake(op, o.kind, Tag::new(iter), o.seq));
            next.issued[op] = iter + 1;
            self.housekeeping(&mut next);
            let event = self.event(op, iter, EventKind::Fake, None, 0, None);
            return StepOutcome::Stepped { next: Box::new(next), event, squash: false, reduction_escape: false };
        }
        if self.operands(op).any(|q| st.issued[q] <= iter) {
            return StepOutcome::BlockedOperand;
        }
        if !st.proto.can_admit(iter, self.ports, 0) {
            return StepOutcome::BlockedAdmission;
        }
        let (addr, value) = self.evaluate(st, op, iter);
        let mut rec = PrematureRecord::real(op, o.kind, Tag::new(iter), o.seq, addr, value);
        let verdict = if self.validated.contains(&op) {
            self.arbiter.verdict(&st.proto.queue, &rec)
        } else {
            Verdict::Clean
        };
        let mut next = st.clone();
        next.proto.note_admitted(iter);
        next.issued[op] = iter + 1;
        let mut reduction_escape = false;
        let event = match verdict {
            Verdict::Clean => {
                next.proto.record_arrival(rec);
                self.event(op, iter, EventKind::Arrive, Some(addr), value, None)
            }
            Verdict::Forward(v) => {
                rec.value = v;
                next.proto.record_arrival(rec);
                self.event(op, iter, EventKind::Forward, Some(addr), v, None)
            }
            Verdict::Squash(viol) => {
                // The §V-B reduction exempts this op from validation; a
                // squash verdict here is one the reduced set would miss.
                reduction_escape =
                    self.cfg.pair_reduction && !self.reduced.contains(&op);
                next.proto.record_arrival(rec);
                next.proto.flush(viol.from_iter);
                for i in next.issued.iter_mut() {
                    *i = (*i).min(viol.from_iter);
                }
                self.event(op, iter, EventKind::Squash, Some(addr), value, Some(viol.from_iter))
            }
        };
        let squash = event.kind == EventKind::Squash;
        self.housekeeping(&mut next);
        StepOutcome::Stepped { next: Box::new(next), event, squash, reduction_escape }
    }

    fn classify(&self, st: &McState, blocked: &[(usize, u64)]) -> DeadCause {
        let f = st.proto.frontier;
        if f < self.bound {
            for op in 0..self.ops.len() {
                if st.issued[op] > f && !st.proto.port_op_arrived(op, f) {
                    return DeadCause::MissingToken { op, iter: f };
                }
            }
        }
        if let Some(&(op, iter)) = blocked.first() {
            return DeadCause::Wedge { op, iter };
        }
        DeadCause::Stuck
    }

    fn trace_to(&self, parent: &[Option<(usize, TraceEvent)>], mut i: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        while let Some((p, ev)) = &parent[i] {
            events.push(ev.clone());
            i = *p;
        }
        events.reverse();
        events
    }

    /// Regenerates the event of explored edge `x -> y` (edges only store
    /// the target and squash flag, to keep memory bounded).
    fn event_for_edge(&self, states: &[McState], x: usize, y: usize) -> TraceEvent {
        let want = states[y].key();
        for op in 0..self.ops.len() {
            if let StepOutcome::Stepped { next, event, .. } = self.try_step(&states[x], op) {
                if next.key() == want {
                    return event;
                }
            }
        }
        unreachable!("explored edge has a generating transition")
    }

    fn explore(&self) -> CheckResult {
        let mut init = self.initial();
        self.housekeeping(&mut init);

        let mut states = vec![init];
        let mut key_ix: HashMap<StateKey, usize> = HashMap::new();
        key_ix.insert(states[0].key(), 0);
        let mut parent: Vec<Option<(usize, TraceEvent)>> = vec![None];
        let mut edges: Vec<Vec<(usize, bool)>> = vec![Vec::new()];
        let mut squash_edges: Vec<(usize, usize)> = Vec::new();
        let mut bfs = VecDeque::from([0usize]);

        let mut complete = true;
        let mut deadlock: Option<(usize, DeadCause)> = None;
        let mut escape: Option<(usize, TraceEvent)> = None;

        while let Some(i) = bfs.pop_front() {
            let st = states[i].clone();
            let mut any = false;
            let mut blocked: Vec<(usize, u64)> = Vec::new();
            for op in 0..self.ops.len() {
                match self.try_step(&st, op) {
                    StepOutcome::Stepped { next, event, squash, reduction_escape } => {
                        any = true;
                        if reduction_escape && escape.is_none() {
                            escape = Some((i, event.clone()));
                        }
                        let k = next.key();
                        let j = *key_ix.entry(k).or_insert_with(|| {
                            states.push(*next);
                            parent.push(Some((i, event)));
                            edges.push(Vec::new());
                            bfs.push_back(states.len() - 1);
                            states.len() - 1
                        });
                        edges[i].push((j, squash));
                        if squash {
                            squash_edges.push((i, j));
                        }
                    }
                    StepOutcome::BlockedAdmission => blocked.push((op, st.issued[op])),
                    StepOutcome::BlockedOperand | StepOutcome::Exhausted => {}
                }
            }
            if !any && deadlock.is_none() && !self.is_success(&st) {
                deadlock = Some((i, self.classify(&st, &blocked)));
            }
            if self.is_success(&st) {
                debug_assert_eq!(
                    st.ram, self.expected_ram,
                    "a completed interleaving must match the sequential semantics"
                );
            }
            if states.len() > self.max_states {
                complete = false;
                break;
            }
        }

        let mut report = Report::default();
        let mut counterexamples = Vec::new();

        if self.truncated {
            report.push(Diagnostic::note(
                Code::ProtocolBound,
                format!(
                    "protocol checked for the first {} of {} iterations (soundness horizon; raise with --mc-depth)",
                    self.bound,
                    self.spec.iteration_count()
                ),
            ));
        }
        if !complete {
            report.push(
                Diagnostic::warning(
                    Code::ProtocolBound,
                    format!(
                        "state cap of {} reached before exhausting the space: PV201–PV204 verdicts are incomplete",
                        self.max_states
                    ),
                )
                .with_help("raise --mc-states or lower --mc-depth"),
            );
        }

        if let Some((i, cause)) = deadlock {
            let events = self.trace_to(&parent, i);
            let resident = states[i].proto.queue.len();
            let (diag, code) = match cause {
                DeadCause::MissingToken { op, iter } => (
                    Diagnostic::error(
                        Code::ProtocolDeadlock,
                        format!(
                            "reachable protocol deadlock: iteration {iter} never completes — {}#{op} sends no token when its guard is false",
                            self.labels[op]
                        ),
                    )
                    .with_span(self.spans[op])
                    .with_help(format!(
                        "{}\n{resident} unretired record(s) wait on the frontier; enable fake tokens (§V-C) so untaken guards still drain the queue",
                        render_events(&events, None)
                    )),
                    Code::ProtocolDeadlock,
                ),
                DeadCause::Wedge { op, iter } => (
                    Diagnostic::error(
                        Code::QueueWedge,
                        format!(
                            "premature queue wedge: depth {} cannot admit {}#{op} of iteration {iter} on some interleaving",
                            self.cfg.depth, self.labels[op]
                        ),
                    )
                    .with_span(self.spans[op])
                    .with_help(format!(
                        "{}\nthe admission reservation needs free slots > outstanding older ops; depth must be at least mem-ops-per-iteration (= {}), configured depth is {}",
                        render_events(&events, None),
                        self.ports,
                        self.cfg.depth
                    )),
                    Code::QueueWedge,
                ),
                DeadCause::Stuck => (
                    Diagnostic::error(
                        Code::ProtocolDeadlock,
                        format!(
                            "reachable protocol deadlock: no transition enabled with {resident} unretired record(s)"
                        ),
                    )
                    .with_help(render_events(&events, None)),
                    Code::ProtocolDeadlock,
                ),
            };
            report.push(diag);
            counterexamples.push(Counterexample { code, events, cycle_from: None });
        }

        // PV202: a squash edge inside a strongly connected component is a
        // cycle replaying the same iteration with zero frontier progress
        // (the frontier and commit cursor are monotone, so any cycle holds
        // them constant).
        let comp = sccs(&edges);
        if let Some(&(u, v)) = squash_edges.iter().find(|&&(u, v)| comp[u] == comp[v]) {
            let mut events = self.trace_to(&parent, u);
            let cycle_from = events.len();
            let squash_ev = self.event_for_edge(&states, u, v);
            let from = squash_ev.squash_from.unwrap_or(squash_ev.iter);
            events.push(squash_ev);
            for (x, y) in path_in_scc(&edges, &comp, v, u) {
                events.push(self.event_for_edge(&states, x, y));
            }
            report.push(
                Diagnostic::error(
                    Code::SquashLivelock,
                    format!(
                        "squash livelock: iteration {from} can be squashed and replayed forever without frontier progress (reachable cycle of {} event(s))",
                        events.len() - cycle_from
                    ),
                )
                .with_span(events[cycle_from].span)
                .with_help(format!(
                    "{}\nenable forwarding (queue bypass) so replayed loads take the resident store's value instead of re-squashing",
                    render_events(&events, Some(cycle_from))
                )),
            );
            counterexamples.push(Counterexample {
                code: Code::SquashLivelock,
                events,
                cycle_from: Some(cycle_from),
            });
        }

        if let Some((i, ev)) = escape {
            let mut events = self.trace_to(&parent, i);
            events.push(ev.clone());
            report.push(
                Diagnostic::warning(
                    Code::ReductionUnsound,
                    format!(
                        "§V-B pair reduction is unsound here: eliminated {}#{} reaches a squash verdict its run representative cannot observe",
                        self.labels[ev.op], ev.op
                    ),
                )
                .with_span(ev.span)
                .with_help(format!(
                    "{}\nkeep Eq. 11–12 reduction for area estimation only; the arbiter must validate the full ambiguous set for this kernel",
                    render_events(&events, None)
                )),
            );
            counterexamples.push(Counterexample {
                code: Code::ReductionUnsound,
                events,
                cycle_from: None,
            });
        }

        CheckResult {
            report,
            counterexamples,
            states: states.len(),
            complete,
            bound: self.bound,
        }
    }
}

fn render_events(events: &[TraceEvent], cycle_from: Option<usize>) -> String {
    Counterexample {
        code: Code::ProtocolBound,
        events: events.to_vec(),
        cycle_from,
    }
    .render()
}

/// Guards are validated affine (no loads, no opaque calls).
fn eval_affine(e: &Expr, row: &[Value]) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::IndVar(l) => row[*l],
        Expr::Binary(op, l, r) => op.apply(eval_affine(l, row), eval_affine(r, row)),
        Expr::Load(..) | Expr::Opaque(..) => unreachable!("guards are validated affine"),
    }
}

/// The sequential (golden) RAM image after the bounded prefix of
/// iterations — what every successful interleaving must produce.
fn sequential_ram(
    spec: &KernelSpec,
    bases: &[usize],
    init: &[Value],
    rows: &[Vec<Value>],
    guard_taken: &[Vec<bool>],
) -> Vec<Value> {
    fn eval(spec: &KernelSpec, bases: &[usize], e: &Expr, row: &[Value], ram: &[Value]) -> Value {
        match e {
            Expr::Const(v) => *v,
            Expr::IndVar(l) => row[*l],
            Expr::Load(a, idx) => {
                let raw = eval(spec, bases, idx, row, ram);
                ram[bases[a.0] + spec.resolve_index(*a, raw)]
            }
            Expr::Binary(op, l, r) => {
                op.apply(eval(spec, bases, l, row, ram), eval(spec, bases, r, row, ram))
            }
            Expr::Opaque(f, x) => f.apply(eval(spec, bases, x, row, ram)),
        }
    }
    let mut ram = init.to_vec();
    for (it, row) in rows.iter().enumerate() {
        for (si, stmt) in spec.body.iter().enumerate() {
            if !guard_taken[it][si] {
                continue;
            }
            let raw = eval(spec, bases, &stmt.index, row, &ram);
            let value = eval(spec, bases, &stmt.value, row, &ram);
            ram[bases[stmt.array.0] + spec.resolve_index(stmt.array, raw)] = value;
        }
    }
    ram
}

/// Iterative Tarjan SCC over the explored graph; returns the component id
/// of every node. Self-loops form (cyclic) singleton components, which the
/// squash-edge test `comp[u] == comp[v]` classifies correctly.
fn sccs(edges: &[Vec<(usize, bool)>]) -> Vec<usize> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut ncomp = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();

    for s in 0..n {
        if index[s] != usize::MAX {
            continue;
        }
        call.push((s, 0));
        'outer: while let Some((v, ei)) = call.pop() {
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on[v] = true;
            }
            let mut i = ei;
            while i < edges[v].len() {
                let w = edges[v][i].0;
                i += 1;
                if index[w] == usize::MAX {
                    call.push((v, i));
                    call.push((w, 0));
                    continue 'outer;
                }
                if on[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if low[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack");
                    on[w] = false;
                    comp[w] = ncomp;
                    if w == v {
                        break;
                    }
                }
                ncomp += 1;
            }
            if let Some(&(u, _)) = call.last() {
                low[u] = low[u].min(low[v]);
            }
        }
    }
    comp
}

/// Shortest edge path from `from` to `to` staying inside their SCC
/// (empty when `from == to`, e.g. a squash self-loop).
fn path_in_scc(
    edges: &[Vec<(usize, bool)>],
    comp: &[usize],
    from: usize,
    to: usize,
) -> Vec<(usize, usize)> {
    if from == to {
        return Vec::new();
    }
    let c = comp[from];
    let mut prev: HashMap<usize, usize> = HashMap::new();
    let mut q = VecDeque::from([from]);
    while let Some(x) = q.pop_front() {
        if x == to {
            break;
        }
        for &(y, _) in &edges[x] {
            if comp[y] == c && y != from && !prev.contains_key(&y) {
                prev.insert(y, x);
                q.push_back(y);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let p = prev[&cur];
        path.push((p, cur));
        cur = p;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::LoopLevel;
    use prevv_ir::{ArrayDecl, ArrayId, Expr, OpaqueFn, Stmt};

    fn parse(name: &str, src: &str) -> KernelSpec {
        prevv_ir::parse::parse_kernel(name, src).expect("parses")
    }

    fn codes(r: &CheckResult) -> Vec<Code> {
        r.counterexamples.iter().map(|c| c.code).collect()
    }

    #[test]
    fn clean_unambiguous_kernel_proves_all_properties() {
        let spec = parse(
            "inc",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] += 1; }\n",
        );
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(r.is_clean(), "unexpected counterexamples: {:?}", codes(&r));
        assert!(r.complete);
        assert!(r.states > 1);
    }

    #[test]
    fn raw_hazard_kernel_is_clean_with_forwarding() {
        // Paper Fig. 2(a): runtime-dependent RAW hazards between iterations.
        let spec = parse(
            "fig2a",
            "int a[8];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[b[i]] += 1;\n  b[i] += 2;\n}\n",
        );
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(r.is_clean(), "unexpected counterexamples: {:?}", codes(&r));
        assert!(r.complete, "explored {} states", r.states);
    }

    #[test]
    fn pv201_missing_fake_tokens_deadlocks() {
        let spec = parse(
            "guarded",
            "int acc[4];\nfor (int i = 0; i < 8; ++i) {\n  if (i % 2 == 0) acc[0] += i;\n}\n",
        );
        let opts = ProtocolOptions {
            fake_tokens: false,
            ..ProtocolOptions::default()
        };
        let r = check(&spec, &opts).expect("checks");
        assert_eq!(r.report.with_code(Code::ProtocolDeadlock).len(), 1);
        let cex = &r.counterexamples[0];
        assert_eq!(cex.code, Code::ProtocolDeadlock);
        assert!(!cex.events.is_empty());
        assert!(cex.events.iter().any(|e| e.kind == EventKind::Skip));
        let outcome = replay(&spec, &opts, cex).expect("trace replays");
        assert!(outcome.deadlock, "trace must reach the stuck state");

        // With fake tokens the same kernel is clean.
        let ok = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(ok.is_clean(), "unexpected: {:?}", codes(&ok));
    }

    #[test]
    fn pv203_shallow_queue_wedges() {
        // 3 ops per iteration, depth 2: the reservation can never admit the
        // whole frontier iteration.
        let spec = parse(
            "stencil",
            "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + a[i + 1]; }\n",
        );
        let mut opts = ProtocolOptions::default();
        opts.config.depth = 2;
        let r = check(&spec, &opts).expect("checks");
        assert_eq!(r.report.with_code(Code::QueueWedge).len(), 1);
        let cex = &r.counterexamples[0];
        assert_eq!(cex.code, Code::QueueWedge);
        assert!(cex.events.len() <= 25, "trace too long: {}", cex.events.len());
        let outcome = replay(&spec, &opts, cex).expect("trace replays");
        assert!(outcome.deadlock && outcome.admission_blocked);

        // Depth >= ops/iter admits the frontier iteration: no wedge.
        opts.config.depth = 3;
        let ok = check(&spec, &opts).expect("checks");
        assert!(ok.report.with_code(Code::QueueWedge).is_empty());
    }

    #[test]
    fn pv202_squash_livelock_without_forwarding() {
        // A loop-carried accumulation plus an independent statement that
        // keeps iterations incomplete: with forwarding off, the replayed
        // load re-reads stale RAM and re-squashes forever.
        let spec = parse(
            "livelock",
            "int a[4];\nint b[8];\nfor (int i = 0; i < 8; ++i) {\n  a[0] += 1;\n  b[i] += 2;\n}\n",
        );
        let mut opts = ProtocolOptions::default();
        opts.config.forwarding = false;
        let r = check(&spec, &opts).expect("checks");
        assert_eq!(r.report.with_code(Code::SquashLivelock).len(), 1);
        let cex = r
            .counterexamples
            .iter()
            .find(|c| c.code == Code::SquashLivelock)
            .expect("livelock counterexample");
        let k = cex.cycle_from.expect("cycle marker");
        assert!(cex.events.len() <= 25);
        assert!(cex.events[k..].iter().any(|e| e.kind == EventKind::Squash));
        let outcome = replay(&spec, &opts, cex).expect("trace replays");
        assert!(outcome.cycle_closed, "the livelock cycle must close");

        // Forwarding (queue bypass) converges the replay: clean.
        let ok = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert!(ok.is_clean(), "unexpected: {:?}", codes(&ok));
    }

    #[test]
    fn pv204_reduction_escape_on_eliminated_store() {
        // Two consecutive ambiguous stores to `a`: Eq. 11-12 keeps the
        // last as representative. An opaque-indexed load later in program
        // order can be flagged by the *eliminated* first store.
        let a = ArrayId(0);
        let b = ArrayId(1);
        let spec = KernelSpec::new(
            "reduced",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 4), ArrayDecl::zeroed("b", 8)],
            vec![
                Stmt::store(a, Expr::lit(0), Expr::lit(5)),
                Stmt::store(a, Expr::lit(1), Expr::lit(7)),
                Stmt::store(b, Expr::var(0), Expr::load(a, Expr::var(0).opaque(OpaqueFn::new(3, 1)))),
            ],
        )
        .expect("valid");
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        let escapes = r.report.with_code(Code::ReductionUnsound);
        assert_eq!(escapes.len(), 1, "diagnostics: {:?}", r.report.diagnostics);
        let cex = r
            .counterexamples
            .iter()
            .find(|c| c.code == Code::ReductionUnsound)
            .expect("PV204 counterexample");
        assert!(matches!(cex.events.last(), Some(e) if e.kind == EventKind::Squash));
        // With pair reduction disabled the finding disappears.
        let mut opts = ProtocolOptions::default();
        opts.config.pair_reduction = false;
        let off = check(&spec, &opts).expect("checks");
        assert!(off.report.with_code(Code::ReductionUnsound).is_empty());
    }

    #[test]
    fn bounded_runs_note_the_horizon() {
        let spec = parse(
            "long",
            "int a[4];\nfor (int i = 0; i < 64; ++i) { a[i] += 1; }\n",
        );
        let r = check(&spec, &ProtocolOptions::default()).expect("checks");
        assert_eq!(r.bound, DEFAULT_ITERATION_BOUND);
        assert_eq!(r.report.with_code(Code::ProtocolBound).len(), 1);
        assert!(r.is_clean());
    }
}
