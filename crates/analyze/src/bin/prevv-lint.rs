//! `prevv-lint` — static analysis for `.pvk` kernel sources.
//!
//! ```text
//! prevv-lint [--format text|json] [--depth N] [--no-fake-tokens]
//!            [--no-pair-reduction] [--circuit]
//!            [--controller none|direct|prevv] [--protocol]
//!            [--mc-depth N] [--mc-states N[k|m]] [--mc-threads N]
//!            [--mc-audit] [--mc-no-por] [--no-forwarding] [--perf]
//!            [--fix] [--deny-warnings] <file.pvk>...
//! prevv-lint --explain PVxxx
//! ```
//!
//! Parses each file and runs every kernel-level `prevv-analyze` lint
//! (`PV0xx`); with `--circuit` it additionally synthesizes the elastic
//! netlist and runs the circuit-level lints (`PV1xx`) against the
//! controller model chosen by `--controller` (`prevv`, the default, models
//! a premature queue of `--depth` slots; `direct` a combinational memory;
//! `none` leaves the memory ports open). With `--protocol` it runs the
//! `PV2xx` bounded model checker over the abstract premature-queue /
//! arbiter / squash protocol: `--depth` sizes the modeled queue,
//! `--no-fake-tokens` / `--no-pair-reduction` / `--no-forwarding` configure
//! the modeled controller, `--mc-depth` bounds the explored iteration
//! horizon and `--mc-states` caps the explored state count (human
//! suffixes accepted: `120k`, `10m`). `--mc-threads` sets the frontier
//! worker count (0 = all cores; any count produces identical results),
//! `--mc-audit` enables the fingerprint collision audit, and
//! `--mc-no-por` disables partial-order reduction (the unreduced
//! oracle the reduction is cross-checked against). With `--perf` it runs
//! the `PV4xx` static throughput pass: the synthesized netlist is modeled
//! as a timed marked graph and its steady-state initiation-interval bound,
//! critical cycle, and binding resource are reported (PV400) together with
//! buffer-insertion (PV401) and queue-sizing (PV402) suggestions.
//! Findings from all passes fold into one report per file, rendered
//! rustc-style (default) or as one JSON document for the whole run:
//!
//! ```json
//! {"files":[{"file":"...","report":{...}}, ...],
//!  "summary":{"errors":N,"warnings":N,
//!             "protocol":{"states":N,"transitions":N,"enabled":N,
//!                         "reduction_ratio":R,"states_per_sec":R,
//!                         "threads":N,"truncated_by_budget":B,
//!                         "audit_collisions":N|null,"validated":N,
//!                         "pairs":{"conservative":N,"discharged":N,
//!                                  "must_alias":N,"residual":N}},
//!             "perf":{"ii_bound":R,"predicted_ii":R,"predicted_cycles":N,
//!                     "binding_resource":"...","critical_cycle":[...],
//!                     "recommended_depth":N|null}}}
//! ```
//!
//! The `summary.protocol` object (present only under `--protocol`)
//! aggregates the exploration over all checked files — actual states
//! explored, the partial-order reduction ratio, throughput, and the
//! PV30x pair-class discharge. The `summary.perf` object (present only
//! under `--perf`) carries the worst (highest-`ii_bound`) throughput
//! verdict across the checked files.
//!
//! `--fix` applies every machine-applicable suggestion in the report
//! (PV402 / PV503 `depth_q` resizes, PV501 dead-statement removal, ...)
//! to the file in place. Overlapping suggestions are applied outermost-
//! last-first; the patched source must re-parse and re-lint clean of every
//! code whose fix was applied, or the file is left untouched and the run
//! exits with status 2.
//!
//! `--explain PVxxx` prints the documentation, severity, and a minimal
//! triggering example for any diagnostic code and exits (status 2 for an
//! unknown code).
//!
//! Parse failures are reported as `PV000`. The exit status is nonzero iff
//! any file produced an error-severity diagnostic — or, under
//! `--deny-warnings`, any warning.

use prevv_analyze::{
    check_protocol, diag::Code, diag::Diagnostic, diag::Report, diag::Suggestion, explain_code,
    lint_source, lint_source_with_circuit, lint_source_with_perf, AnalyzeOptions, CheckStats,
    CircuitOptions, ControllerModel, PerfOptions, PerfSummary, ProtocolOptions, Severity,
};
use prevv_core::PrevvConfig;
use prevv_dataflow::sweep;

enum Format {
    Text,
    Json,
}

struct Args {
    files: Vec<String>,
    format: Format,
    opts: AnalyzeOptions,
    circuit: Option<CircuitOptions>,
    protocol: Option<ProtocolOptions>,
    perf: Option<PerfOptions>,
    fix: bool,
    deny_warnings: bool,
    jobs: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: prevv-lint [--format text|json] [--depth N] [--no-fake-tokens] \
         [--no-pair-reduction] [--circuit] [--controller none|direct|prevv] \
         [--protocol] [--mc-depth N] [--mc-states N[k|m]] [--mc-threads N] \
         [--mc-audit] [--mc-no-por] [--no-forwarding] [--perf] [--fix] \
         [--deny-warnings] [--jobs N] <file.pvk>...\n       prevv-lint --explain PVxxx"
    );
    std::process::exit(2);
}

fn run_explain(code: Option<String>) -> ! {
    let Some(code) = code else { usage() };
    match explain_code(&code) {
        Some(e) => {
            println!("{}: {}", e.code, e.title);
            println!("severity: {}", e.severity);
            println!("\n{}\n", e.doc);
            println!("minimal example:");
            for line in e.example.lines() {
                println!("    {}", line.trim_start());
            }
            std::process::exit(0);
        }
        None => {
            eprintln!("unknown diagnostic code `{code}` (known: PV000..PV006, PV101..PV105, PV200..PV204, PV300..PV302, PV400..PV403, PV500..PV503)");
            std::process::exit(2);
        }
    }
}

/// Parses a state count with an optional human suffix: `120000`, `120k`,
/// `10m` (case-insensitive).
fn parse_states(v: &str) -> Option<usize> {
    let v = v.trim();
    let (digits, mult) = match v.as_bytes().last()? {
        b'k' | b'K' => (&v[..v.len() - 1], 1_000usize),
        b'm' | b'M' => (&v[..v.len() - 1], 1_000_000usize),
        _ => (v, 1),
    };
    digits.parse::<usize>().ok()?.checked_mul(mult)
}

fn parse_args() -> Args {
    let mut files = Vec::new();
    let mut format = Format::Text;
    let mut opts = AnalyzeOptions::default();
    let mut want_circuit = false;
    let mut controller = None;
    let mut want_protocol = false;
    let mut mc_depth = 0u64;
    let mut mc_states = 0usize;
    let mut mc_threads = 0usize;
    let mut mc_audit = false;
    let mut mc_por = true;
    let mut forwarding = true;
    let mut want_perf = false;
    let mut fix = false;
    let mut deny_warnings = false;
    let mut jobs = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => run_explain(it.next()),
            "--format" => {
                format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    _ => usage(),
                };
            }
            "--depth" => {
                opts.depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-fake-tokens" => opts.fake_tokens = false,
            "--no-pair-reduction" => opts.pair_reduction = false,
            "--circuit" => want_circuit = true,
            "--controller" => {
                controller = match it.next().as_deref() {
                    Some("none") => Some(ControllerModel::None),
                    Some("direct") => Some(ControllerModel::Direct),
                    Some("prevv") => None, // queue of --depth, resolved below
                    _ => usage(),
                };
                want_circuit = true;
            }
            "--protocol" => want_protocol = true,
            "--mc-depth" => {
                mc_depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                want_protocol = true;
            }
            "--mc-states" => {
                mc_states = it
                    .next()
                    .and_then(|v| parse_states(&v))
                    .unwrap_or_else(|| usage());
                want_protocol = true;
            }
            "--mc-threads" => {
                mc_threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                want_protocol = true;
            }
            "--mc-audit" => {
                mc_audit = true;
                want_protocol = true;
            }
            "--mc-no-por" => {
                mc_por = false;
                want_protocol = true;
            }
            "--no-forwarding" => forwarding = false,
            "--perf" => want_perf = true,
            "--fix" => fix = true,
            "--deny-warnings" => deny_warnings = true,
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => files.push(f.to_string()),
            _ => usage(),
        }
    }
    if files.is_empty() {
        usage();
    }
    let circuit = want_circuit.then(|| CircuitOptions {
        controller: controller.unwrap_or(ControllerModel::Queue {
            capacity: opts.depth,
        }),
    });
    let protocol = want_protocol.then(|| {
        let mut p = ProtocolOptions::for_config(&PrevvConfig {
            depth: opts.depth,
            pair_reduction: opts.pair_reduction,
            forwarding,
            ..PrevvConfig::default()
        });
        p.fake_tokens = opts.fake_tokens;
        p.iterations = mc_depth;
        if mc_states > 0 {
            p.max_states = mc_states;
        }
        p.threads = mc_threads;
        p.audit = mc_audit;
        p.por = mc_por;
        p
    });
    let perf = want_perf.then(|| PerfOptions {
        config: PrevvConfig {
            depth: opts.depth,
            pair_reduction: opts.pair_reduction,
            forwarding,
            ..PrevvConfig::default()
        },
    });
    Args {
        files,
        format,
        opts,
        circuit,
        protocol,
        perf,
        fix,
        deny_warnings,
        jobs,
    }
}

/// Runs the parse/kernel/circuit/perf passes (everything except the model
/// checker, whose diagnostics never carry fixes) over one source text.
fn lint_once(name: &str, source: &str, args: &Args) -> (Report, Option<PerfSummary>) {
    match (&args.perf, &args.circuit) {
        (Some(perf), circuit) => {
            lint_source_with_perf(name, source, &args.opts, circuit.as_ref(), perf)
        }
        (None, Some(circuit)) => (
            lint_source_with_circuit(name, source, &args.opts, circuit),
            None,
        ),
        (None, None) => (lint_source(name, source, &args.opts), None),
    }
}

/// Applies machine-applicable suggestions to `source`, last span first so
/// earlier offsets stay valid; overlapping or out-of-range spans are
/// skipped. Returns the patched text and how many fixes were applied.
fn apply_suggestions(source: &str, report: &Report) -> (String, Vec<Code>) {
    let mut suggs: Vec<(&Suggestion, Code)> = report
        .diagnostics
        .iter()
        .filter_map(|d| d.suggestion.as_ref().map(|s| (s, d.code)))
        .collect();
    suggs.sort_by_key(|s| std::cmp::Reverse((s.0.span.start, s.0.span.end)));
    let mut out = source.to_string();
    let mut applied = Vec::new();
    let mut frontier = out.len();
    for (s, code) in suggs {
        if s.span.end > frontier || s.span.start > s.span.end {
            continue;
        }
        out.replace_range(s.span.start..s.span.end, &s.replacement);
        frontier = s.span.start;
        applied.push(code);
    }
    (out, applied)
}

/// `--fix` for one file: patch, verify (re-parse + re-lint clean of every
/// applied code), and write back. Returns false when verification fails
/// (the file is left untouched).
fn fix_file(path: &str, name: &str, source: &str, report: &Report, args: &Args) -> bool {
    let (fixed, applied) = apply_suggestions(source, report);
    if applied.is_empty() {
        return true;
    }
    let (recheck, _) = lint_once(name, &fixed, args);
    let stale: Vec<&Code> = applied
        .iter()
        .filter(|c| recheck.diagnostics.iter().any(|d| d.code == **c))
        .collect();
    let parses = !recheck.diagnostics.iter().any(|d| d.code == Code::Parse);
    if !parses || !stale.is_empty() {
        eprintln!(
            "{path}: not fixed — patched source {}",
            if parses {
                format!("still reports {stale:?}")
            } else {
                "no longer parses".to_string()
            }
        );
        return false;
    }
    if let Err(e) = std::fs::write(path, &fixed) {
        eprintln!("cannot write {path}: {e}");
        return false;
    }
    println!("{path}: applied {} fix(es)", applied.len());
    true
}

/// Aggregated model-checker statistics over every checked file, for the
/// JSON `summary.protocol` object.
#[derive(Default)]
struct ProtocolSummary {
    states: usize,
    transitions: u64,
    enabled: u64,
    secs: f64,
    truncated_by_budget: bool,
    audit_collisions: Option<u64>,
    conservative: usize,
    discharged: usize,
    must_alias: usize,
    residual: usize,
    validated: usize,
    threads: usize,
}

impl ProtocolSummary {
    fn fold(&mut self, s: &CheckStats) {
        self.states += s.states;
        self.transitions += s.transitions;
        self.enabled += s.enabled;
        self.secs += s.duration.as_secs_f64();
        self.truncated_by_budget |= s.truncated_by_budget;
        if let Some(c) = s.audit_collisions {
            *self.audit_collisions.get_or_insert(0) += c;
        }
        self.conservative += s.pairs.conservative;
        self.discharged += s.pairs.discharged;
        self.must_alias += s.pairs.must_alias;
        self.residual += s.pairs.residual;
        self.validated += s.validated;
        self.threads = self.threads.max(s.threads);
    }

    fn to_json(&self) -> String {
        let reduction = if self.enabled == 0 {
            1.0
        } else {
            self.transitions as f64 / self.enabled as f64
        };
        let per_sec = if self.secs > 0.0 {
            self.states as f64 / self.secs
        } else {
            0.0
        };
        format!(
            "{{\"states\":{},\"transitions\":{},\"enabled\":{},\"reduction_ratio\":{:.4},\
             \"states_per_sec\":{:.0},\"threads\":{},\"truncated_by_budget\":{},\
             \"audit_collisions\":{},\"validated\":{},\"pairs\":{{\"conservative\":{},\
             \"discharged\":{},\"must_alias\":{},\"residual\":{}}}}}",
            self.states,
            self.transitions,
            self.enabled,
            reduction,
            per_sec,
            self.threads,
            self.truncated_by_budget,
            self.audit_collisions
                .map_or_else(|| "null".to_string(), |c| c.to_string()),
            self.validated,
            self.conservative,
            self.discharged,
            self.must_alias,
            self.residual,
        )
    }
}

fn main() {
    let args = parse_args();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut json_files = Vec::new();
    let mut fix_failures = 0usize;
    let mut protocol_summary: Option<ProtocolSummary> = None;
    let mut perf_summary: Option<PerfSummary> = None;
    let sources: Vec<(String, String)> = args
        .files
        .iter()
        .map(|path| {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("kernel")
                .to_string();
            (name, source)
        })
        .collect();
    // The parse/kernel/circuit/perf passes are independent per file: shard
    // them across `--jobs` workers (0 = all cores). Results come back in
    // file order, so the rendered output is byte-identical at any job
    // count. Fixing, the protocol checker (which shards internally via
    // `--mc-threads`), and printing stay sequential below.
    let linted: Vec<(Report, Option<PerfSummary>)> = if args.jobs == 1 {
        sources
            .iter()
            .map(|(name, source)| lint_once(name, source, &args))
            .collect()
    } else if args.jobs == 0 {
        sweep::run(&sources, |(name, source)| lint_once(name, source, &args))
    } else {
        sweep::run_with_threads(&sources, args.jobs, |(name, source)| {
            lint_once(name, source, &args)
        })
    };
    for ((path, (name, source)), (mut report, summary)) in
        args.files.iter().zip(&sources).zip(linted)
    {
        // summary.perf keeps the worst verdict across the run.
        if let Some(s) = summary {
            let worse = perf_summary
                .as_ref()
                .is_none_or(|prev| s.ii_bound > prev.ii_bound);
            if worse {
                perf_summary = Some(s);
            }
        }
        if args.fix && !fix_file(path, name, source, &report, &args) {
            fix_failures += 1;
        }
        if let Some(protocol) = &args.protocol {
            // The protocol pass needs a parsed kernel; a PV000 in the base
            // report means there is nothing to check. `check_protocol` is
            // called directly (rather than via `protocol_report`) so the
            // exploration statistics reach the JSON summary.
            if let Ok(spec) = prevv_ir::parse::parse_kernel(name, source) {
                match check_protocol(&spec, protocol) {
                    Ok(result) => {
                        protocol_summary
                            .get_or_insert_with(ProtocolSummary::default)
                            .fold(&result.stats);
                        report.diagnostics.extend(result.report.diagnostics);
                    }
                    Err(e) => report.push(Diagnostic::warning(
                        Code::ProtocolBound,
                        format!("protocol model checker could not run: {e}"),
                    )),
                }
            }
        }
        total_errors += report.count(Severity::Error);
        total_warnings += report.count(Severity::Warning);
        match args.format {
            Format::Text => {
                if report.is_empty() {
                    println!("{path}: clean");
                } else {
                    print!("{}", report.render(path, Some(source)));
                }
            }
            Format::Json => {
                json_files.push(format!(
                    "{{\"file\":{},\"report\":{}}}",
                    prevv_analyze::diag::json_string(path),
                    report.to_json(Some(source))
                ));
            }
        }
    }
    if matches!(args.format, Format::Json) {
        let protocol = protocol_summary
            .as_ref()
            .map_or(String::new(), |p| format!(",\"protocol\":{}", p.to_json()));
        let perf = perf_summary
            .as_ref()
            .map_or(String::new(), |p| format!(",\"perf\":{}", p.to_json()));
        println!(
            "{{\"files\":[{}],\"summary\":{{\"errors\":{total_errors},\"warnings\":{total_warnings}{protocol}{perf}}}}}",
            json_files.join(",")
        );
    }
    if fix_failures > 0 {
        std::process::exit(2);
    }
    if total_errors > 0 || (args.deny_warnings && total_warnings > 0) {
        std::process::exit(1);
    }
}
