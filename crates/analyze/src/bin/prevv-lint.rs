//! `prevv-lint` — static analysis for `.pvk` kernel sources.
//!
//! ```text
//! prevv-lint [--format text|json] [--depth N] [--no-fake-tokens]
//!            [--no-pair-reduction] [--circuit]
//!            [--controller none|direct|prevv] [--protocol]
//!            [--mc-depth N] [--mc-states N] [--no-forwarding]
//!            [--deny-warnings] <file.pvk>...
//! prevv-lint --explain PVxxx
//! ```
//!
//! Parses each file and runs every kernel-level `prevv-analyze` lint
//! (`PV0xx`); with `--circuit` it additionally synthesizes the elastic
//! netlist and runs the circuit-level lints (`PV1xx`) against the
//! controller model chosen by `--controller` (`prevv`, the default, models
//! a premature queue of `--depth` slots; `direct` a combinational memory;
//! `none` leaves the memory ports open). With `--protocol` it runs the
//! `PV2xx` bounded model checker over the abstract premature-queue /
//! arbiter / squash protocol: `--depth` sizes the modeled queue,
//! `--no-fake-tokens` / `--no-pair-reduction` / `--no-forwarding` configure
//! the modeled controller, `--mc-depth` bounds the explored iteration
//! horizon and `--mc-states` caps the explored state count. Findings from
//! all passes fold into one report per file, rendered rustc-style
//! (default) or as one JSON document for the whole run:
//!
//! ```json
//! {"files":[{"file":"...","report":{...}}, ...],
//!  "summary":{"errors":N,"warnings":N}}
//! ```
//!
//! `--explain PVxxx` prints the documentation, severity, and a minimal
//! triggering example for any diagnostic code and exits (status 2 for an
//! unknown code).
//!
//! Parse failures are reported as `PV000`. The exit status is nonzero iff
//! any file produced an error-severity diagnostic — or, under
//! `--deny-warnings`, any warning.

use prevv_analyze::{
    explain_code, lint_source, lint_source_with_circuit, protocol_report, AnalyzeOptions,
    CircuitOptions, ControllerModel, ProtocolOptions, Severity,
};
use prevv_core::PrevvConfig;

enum Format {
    Text,
    Json,
}

struct Args {
    files: Vec<String>,
    format: Format,
    opts: AnalyzeOptions,
    circuit: Option<CircuitOptions>,
    protocol: Option<ProtocolOptions>,
    deny_warnings: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: prevv-lint [--format text|json] [--depth N] [--no-fake-tokens] \
         [--no-pair-reduction] [--circuit] [--controller none|direct|prevv] \
         [--protocol] [--mc-depth N] [--mc-states N] [--no-forwarding] \
         [--deny-warnings] <file.pvk>...\n       prevv-lint --explain PVxxx"
    );
    std::process::exit(2);
}

fn run_explain(code: Option<String>) -> ! {
    let Some(code) = code else { usage() };
    match explain_code(&code) {
        Some(e) => {
            println!("{}: {}", e.code, e.title);
            println!("severity: {}", e.severity);
            println!("\n{}\n", e.doc);
            println!("minimal example:");
            for line in e.example.lines() {
                println!("    {}", line.trim_start());
            }
            std::process::exit(0);
        }
        None => {
            eprintln!("unknown diagnostic code `{code}` (known: PV000..PV006, PV101..PV105, PV200..PV204)");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let mut files = Vec::new();
    let mut format = Format::Text;
    let mut opts = AnalyzeOptions::default();
    let mut want_circuit = false;
    let mut controller = None;
    let mut want_protocol = false;
    let mut mc_depth = 0u64;
    let mut mc_states = 0usize;
    let mut forwarding = true;
    let mut deny_warnings = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => run_explain(it.next()),
            "--format" => {
                format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    _ => usage(),
                };
            }
            "--depth" => {
                opts.depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-fake-tokens" => opts.fake_tokens = false,
            "--no-pair-reduction" => opts.pair_reduction = false,
            "--circuit" => want_circuit = true,
            "--controller" => {
                controller = match it.next().as_deref() {
                    Some("none") => Some(ControllerModel::None),
                    Some("direct") => Some(ControllerModel::Direct),
                    Some("prevv") => None, // queue of --depth, resolved below
                    _ => usage(),
                };
                want_circuit = true;
            }
            "--protocol" => want_protocol = true,
            "--mc-depth" => {
                mc_depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                want_protocol = true;
            }
            "--mc-states" => {
                mc_states = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                want_protocol = true;
            }
            "--no-forwarding" => forwarding = false,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => files.push(f.to_string()),
            _ => usage(),
        }
    }
    if files.is_empty() {
        usage();
    }
    let circuit = want_circuit.then(|| CircuitOptions {
        controller: controller.unwrap_or(ControllerModel::Queue {
            capacity: opts.depth,
        }),
    });
    let protocol = want_protocol.then(|| {
        let mut p = ProtocolOptions::for_config(&PrevvConfig {
            depth: opts.depth,
            pair_reduction: opts.pair_reduction,
            forwarding,
            ..PrevvConfig::default()
        });
        p.fake_tokens = opts.fake_tokens;
        p.iterations = mc_depth;
        if mc_states > 0 {
            p.max_states = mc_states;
        }
        p
    });
    Args {
        files,
        format,
        opts,
        circuit,
        protocol,
        deny_warnings,
    }
}

fn main() {
    let args = parse_args();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut json_files = Vec::new();
    for path in &args.files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("kernel");
        let mut report = match &args.circuit {
            Some(circuit) => lint_source_with_circuit(name, &source, &args.opts, circuit),
            None => lint_source(name, &source, &args.opts),
        };
        if let Some(protocol) = &args.protocol {
            // The protocol pass needs a parsed kernel; a PV000 in the base
            // report means there is nothing to check.
            if let Ok(spec) = prevv_ir::parse::parse_kernel(name, &source) {
                report
                    .diagnostics
                    .extend(protocol_report(&spec, protocol).diagnostics);
            }
        }
        total_errors += report.count(Severity::Error);
        total_warnings += report.count(Severity::Warning);
        match args.format {
            Format::Text => {
                if report.is_empty() {
                    println!("{path}: clean");
                } else {
                    print!("{}", report.render(path, Some(&source)));
                }
            }
            Format::Json => {
                json_files.push(format!(
                    "{{\"file\":{},\"report\":{}}}",
                    prevv_analyze::diag::json_string(path),
                    report.to_json(Some(&source))
                ));
            }
        }
    }
    if matches!(args.format, Format::Json) {
        println!(
            "{{\"files\":[{}],\"summary\":{{\"errors\":{total_errors},\"warnings\":{total_warnings}}}}}",
            json_files.join(",")
        );
    }
    if total_errors > 0 || (args.deny_warnings && total_warnings > 0) {
        std::process::exit(1);
    }
}
