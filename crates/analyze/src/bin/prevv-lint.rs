//! `prevv-lint` — static analysis for `.pvk` kernel sources.
//!
//! ```text
//! prevv-lint [--format text|json] [--depth N] [--no-fake-tokens]
//!            [--no-pair-reduction] <file.pvk>...
//! ```
//!
//! Parses each file, runs every `prevv-analyze` lint, and renders the
//! findings rustc-style (default) or as one JSON object per file (one per
//! line). Parse failures are reported as `PV000`. The exit status is
//! nonzero iff any file produced an error-severity diagnostic.

use prevv_analyze::{lint_source, AnalyzeOptions};

enum Format {
    Text,
    Json,
}

struct Args {
    files: Vec<String>,
    format: Format,
    opts: AnalyzeOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: prevv-lint [--format text|json] [--depth N] [--no-fake-tokens] \
         [--no-pair-reduction] <file.pvk>..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut files = Vec::new();
    let mut format = Format::Text;
    let mut opts = AnalyzeOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    _ => usage(),
                };
            }
            "--depth" => {
                opts.depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-fake-tokens" => opts.fake_tokens = false,
            "--no-pair-reduction" => opts.pair_reduction = false,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => files.push(f.to_string()),
            _ => usage(),
        }
    }
    if files.is_empty() {
        usage();
    }
    Args {
        files,
        format,
        opts,
    }
}

fn main() {
    let args = parse_args();
    let mut any_errors = false;
    for path in &args.files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("kernel");
        let report = lint_source(name, &source, &args.opts);
        any_errors |= report.has_errors();
        match args.format {
            Format::Text => {
                if report.is_empty() {
                    println!("{path}: clean");
                } else {
                    print!("{}", report.render(path, Some(&source)));
                }
            }
            Format::Json => {
                println!(
                    "{{\"file\":{},\"report\":{}}}",
                    prevv_analyze::diag::json_string(path),
                    report.to_json(Some(&source))
                );
            }
        }
    }
    if any_errors {
        std::process::exit(1);
    }
}
