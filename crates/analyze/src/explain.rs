//! Long-form documentation for every diagnostic code.
//!
//! `prevv-lint --explain PVxxx` resolves here. Each entry carries the
//! severity the lint emits at, a few sentences of documentation, and a
//! minimal kernel (plus the flags needed, when the default configuration
//! would not trigger it) that produces the finding. The examples are real:
//! `tests/explain_examples.rs`-style coverage lives in the CLI fixture
//! tests, and the strings below are the canonical cheat sheet.

use crate::diag::Code;

/// Documentation record for one diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct Explanation {
    /// The code being documented.
    pub code: Code,
    /// One-line title (matches the lib-level lint table).
    pub title: &'static str,
    /// Severity as emitted, including conditional escalations
    /// (e.g. "note; error when fake tokens are disabled").
    pub severity: &'static str,
    /// A few sentences: what the lint proves, why it matters for the PreVV
    /// protocol, and what to do about it.
    pub doc: &'static str,
    /// A minimal triggering example: kernel source, plus the `prevv-lint`
    /// flags required when the default configuration stays clean.
    pub example: &'static str,
}

/// Every documented code, in code order.
pub const ALL: &[Explanation] = &[
    Explanation {
        code: Code::Parse,
        title: "source failed to parse",
        severity: "error",
        doc: "The `.pvk` source is not a valid kernel: the parser stopped at \
              the reported offset. Nothing else can be checked until the \
              kernel parses; the analyzer proper operates on parsed kernels, \
              so PV000 is emitted by the CLI front end only.",
        example: "int a[4];\nfor (int i = 0; i < 4; ++i) { a[i] = ; }",
    },
    Explanation {
        code: Code::OutOfBounds,
        title: "affine index provably out of bounds",
        severity: "error",
        doc: "An affine index expression provably leaves the declared array \
              bounds for some iteration in range. The symbolic dependence \
              engine evaluates the index's affine envelope over the \
              iteration space; a proven escape means the synthesized \
              circuit would address memory outside the array's layout.",
        example: "int a[4];\nfor (int i = 0; i < 8; ++i) { a[i] = i; }",
    },
    Explanation {
        code: Code::DeadlockRisk,
        title: "guarded op in an ambiguous pair (\u{a7}V-C)",
        severity: "note; error when fake tokens are disabled",
        doc: "A guarded memory operation participates in an ambiguous \
              (arbiter-validated) pair. When the guard is false the op emits \
              no token, the premature queue never observes the iteration, \
              and the in-order retirement frontier stalls forever — the \
              paper's \u{a7}V-C deadlock. Fake tokens (the default) inject a \
              placeholder arrival so the queue always drains; with \
              `--no-fake-tokens` this becomes a hard error.",
        example: "int a[8];\nfor (int i = 0; i < 8; ++i) { if (i % 2 == 0) \
                  { a[0] = a[0] + i; } }\n\nflags: --no-fake-tokens",
    },
    Explanation {
        code: Code::QueueDepth,
        title: "premature-queue depth insufficient",
        severity: "error below the frontier minimum; warning below the \u{a7}V-A recommendation",
        doc: "The configured premature-queue depth cannot hold one \
              iteration's worth of validated operations (error: the circuit \
              wedges), or is below the \u{a7}V-A matched-pair sizing model's \
              recommendation (warning: squash-rate and stall penalties).",
        example: "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + \
                  a[i + 0]; }\n\nflags: --depth 1",
    },
    Explanation {
        code: Code::DisjointPair,
        title: "provably-disjoint pair — arbiter bypassed",
        severity: "note",
        doc: "A potentially-aliasing load/store pair is provably disjoint \
              (GCD / Banerjee tests), so the arbiter never needs to compare \
              them and synthesis drops the validation. Informational: it \
              explains why a pair you expected to see validated is not.",
        example: "int a[16];\nfor (int i = 0; i < 8; ++i) { a[2 * i] = \
                  a[2 * i + 1]; }",
    },
    Explanation {
        code: Code::DeadStore,
        title: "dead store or unused array",
        severity: "warning",
        doc: "A store whose value is never observed (overwritten before any \
              load, or to an array nothing reads) or an array declaration \
              nothing touches. Usually a typo in an index expression; dead \
              stores still occupy premature-queue slots and arbiter \
              bandwidth.",
        example: "int a[4];\nint b[4];\nfor (int i = 0; i < 4; ++i) { a[i] \
                  = i; }",
    },
    Explanation {
        code: Code::PairReduction,
        title: "pair reduction (\u{a7}V-B) profitable but disabled",
        severity: "note",
        doc: "The \u{a7}V-B pair-reduction analysis (Eq. 11–12) proves some \
              validated pairs redundant — a cheaper arbiter covers the same \
              hazards — but the configuration disables the reduction. \
              Enable it to save comparators; the PV204 model-checker lint \
              verifies the reduction's soundness on the abstract protocol.",
        example: "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + 1; \
                  }\n\nflags: --no-pair-reduction",
    },
    Explanation {
        code: Code::DanglingChannel,
        title: "circuit: channel with no producer or no consumer",
        severity: "error",
        doc: "A handshake channel in the synthesized netlist has no \
              producer (its consumer waits forever) or no consumer (its \
              producer's valid is never acknowledged). Either way the \
              elastic circuit wedges. Indicates a synthesis bug or a \
              hand-patched netlist; unreachable from well-formed kernels.",
        example: "(circuit-level: inject a dangling channel into a netlist \
                  via the prevv-dataflow graph API; `prevv-lint --circuit` \
                  checks every synthesized netlist)",
    },
    Explanation {
        code: Code::MultiDrivenChannel,
        title: "circuit: channel with multiple producers or consumers",
        severity: "error",
        doc: "Two components drive (or consume) the same handshake channel. \
              The ready/valid protocol assumes exactly one of each; \
              multiple drivers corrupt the handshake and can drop or \
              duplicate tokens silently.",
        example: "(circuit-level: connect two producers to one channel via \
                  the prevv-dataflow graph API)",
    },
    Explanation {
        code: Code::UnbufferedCycle,
        title: "circuit: handshake cycle with no elastic buffer",
        severity: "error",
        doc: "A cycle of combinationally-coupled handshake signals with no \
              elastic buffer on it: the dataflow analogue of a \
              combinational loop. The cycle deadlocks (or oscillates) the \
              moment a token enters it. Loop-carried kernels synthesize \
              buffers on every back edge; their absence is a structural \
              bug.",
        example: "kernels/bad/combinational_loop.pvk\n\nflags: --circuit",
    },
    Explanation {
        code: Code::FrontierCapacity,
        title: "circuit: controller capacity vs. in-flight frontier",
        severity: "error when the frontier cannot fit; warning when tight",
        doc: "The circuit's maximum in-flight iteration frontier (how many \
              iterations the elastic pipeline can hold) exceeds what the \
              modeled controller (premature queue or LSQ) can admit. The \
              pipeline fills, admission blocks, and throughput collapses — \
              or, below the per-iteration minimum, wedges outright.",
        example: "kernels/bad/undersized_queue.pvk\n\nflags: --circuit --depth 2",
    },
    Explanation {
        code: Code::UnreachableComponent,
        title: "circuit: component unreachable from any token source",
        severity: "warning",
        doc: "A netlist component no token source can ever reach: dead \
              hardware. It synthesizes to area that provably never fires. \
              Usually fallout from constant folding a guard to false.",
        example: "(circuit-level: add a component fed only by a channel \
                  with no producer)",
    },
    Explanation {
        code: Code::ProtocolBound,
        title: "model checker hit its exploration bound",
        severity: "note; warning when the state cap truncated exploration",
        doc: "The PV2xx bounded model checker stopped at its iteration \
              bound or state cap before exhausting the reachable abstract \
              state space. PV201–PV204 verdicts are sound only up to the \
              reported horizon: \"clean\" means \"clean within the bound\". \
              Raise `--mc-depth` / `--mc-states` to push the horizon.",
        example: "int a[4];\nfor (int i = 0; i < 64; ++i) { a[0] = a[0] + 1; \
                  }\n\nflags: --protocol   (note: bound 2 < 64 iterations)",
    },
    Explanation {
        code: Code::ProtocolDeadlock,
        title: "reachable protocol deadlock",
        severity: "error",
        doc: "Exhaustive exploration of the abstract protocol (premature \
              queue, arbiter scan, fake-token injection, squash/replay) \
              found a reachable state with no enabled transition where the \
              kernel has not completed. The classic shape is a guarded \
              validated op with fake tokens disabled: the skipped iteration \
              never reaches the queue and the retirement frontier stalls \
              (\u{a7}V-C). The diagnostic carries the shortest event trace \
              into the dead state.",
        example: "int a[8];\nfor (int i = 0; i < 8; ++i) { if (i % 2 == 0) \
                  { a[0] = a[0] + i; } }\n\nflags: --protocol --no-fake-tokens",
    },
    Explanation {
        code: Code::SquashLivelock,
        title: "squash livelock",
        severity: "error",
        doc: "A reachable cycle in the abstract state graph contains a \
              squash edge: the same iteration is squashed and replayed \
              forever while the retired frontier never advances. Typically \
              a same-address store→load hazard re-raised on every replay \
              because forwarding is disabled, so the replayed load reads \
              the same stale value each time. The diagnostic renders the \
              lasso: a shortest prefix into the cycle, then the repeating \
              events.",
        example: "int a[4];\nint b[8];\nfor (int i = 0; i < 8; ++i) { a[0] \
                  = a[0] + 1; b[i] = b[i] + 2; }\n\nflags: --protocol \
                  --no-forwarding",
    },
    Explanation {
        code: Code::QueueWedge,
        title: "queue capacity insufficient on some interleaving",
        severity: "error",
        doc: "On some legal interleaving of premature executions, an \
              operation can never be admitted to the premature queue and no \
              resident entry can retire: a capacity wedge. The static PV003 \
              bound is per-iteration and necessary; this is the exact \
              reachability version — it catches interleavings where \
              out-of-order arrivals from a later iteration reserve the \
              slots an earlier iteration still needs. Fix by deepening the \
              queue (`depth_q`, \u{a7}V-A Eq. 6–10).",
        example: "int a[16];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + \
                  a[i + 1]; }\n\nflags: --protocol --depth 2",
    },
    Explanation {
        code: Code::ReductionUnsound,
        title: "pair-reduction representative diverges from unreduced set",
        severity: "warning",
        doc: "The \u{a7}V-B pair reduction (Eq. 11–12) nominates \
              representative pairs whose validation is claimed to cover the \
              eliminated ones. The model checker found a reachable state \
              where an operation *outside* the reduced set takes a squash \
              verdict — its hazard was real, and a controller that skipped \
              its validation (trusting the reduction) would commit stale \
              data. The stock runtime controller always validates the full \
              set, so this is a warning about the area model, not the \
              simulator.",
        example: "(programmatic: two stores to distinct constant addresses \
                  of `a` plus an opaque-indexed load of `a` feeding a store \
                  to `b`; see modelcheck.rs \
                  pv204_reduction_escape_on_eliminated_store)",
    },
    Explanation {
        code: Code::SeparationHorizon,
        title: "separation horizon: pairs left to the dynamic arbiter",
        severity: "note",
        doc: "The separation-logic disjointness prover could not discharge \
              every ambiguous load/store pair: at least one pair's access \
              footprint is runtime-dependent or can wrap around the array \
              length, so no affine separation proof applies. Those pairs \
              stay in the arbiter's validated set and the PV2xx model \
              checker explores their interleavings — the note records where \
              the symbolic guarantee ends and the dynamic one begins.",
        example: "int a[16];\nint b[8];\nfor (int i = 0; i < 8; ++i) { \
                  a[b[i]] = a[b[i]] + 5; }",
    },
    Explanation {
        code: Code::ProvenDisjoint,
        title: "pair footprints proven separate — discharged",
        severity: "note",
        doc: "A conservative ambiguous pair's affine footprints are proven \
              separate: either the two address envelopes never overlap in \
              any pair of iterations, or every overlap is same-iteration \
              with the load sequenced before the store (which the in-order \
              commit already serializes). The pair never enters the \
              arbiter's validated set or the model checker's state space — \
              a whole pair-class is discharged symbolically, shrinking both \
              the arbiter area and the exploration frontier.",
        example: "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + 1; }",
    },
    Explanation {
        code: Code::MustAlias,
        title: "pair footprints must-alias — validation provably live",
        severity: "note",
        doc: "Both accesses of an ambiguous pair follow the *same* affine \
              index function, so they touch the same address on every \
              traversal: the arbiter validation for this pair fires every \
              time, it is live rather than defensive. A constant footprint \
              (`a[0]`) additionally collides across iterations — the \
              canonical squash-replay generator, and with forwarding \
              disabled the classic PV202 livelock shape.",
        example: "int a[4];\nfor (int i = 0; i < 8; ++i) { a[0] = a[0] + 1; }",
    },
    Explanation {
        code: Code::ThroughputBound,
        title: "static steady-state initiation-interval bound",
        severity: "note",
        doc: "The PV4xx pass models the synthesized netlist as a timed \
              marked graph (component latency = edge weight, capacity = \
              initial tokens on the back edge) and computes the steady-state \
              initiation-interval bound as the maximum cycle ratio, joined \
              with the memory controller's analytic port/validation/retire \
              limits. The note names the bound, the binding resource, and — \
              when a circuit cycle binds — renders the critical cycle \
              component by component. The bound is sound: measured II can \
              only be equal or worse.",
        example: "int a[8];\nfor (int i = 0; i < 8; ++i) { a[i] = a[i] + 1; \
                  }\n\nflags: --circuit --perf",
    },
    Explanation {
        code: Code::SlacklessCycle,
        title: "zero-slack backpressure cycle",
        severity: "warning",
        doc: "The critical cycle's ratio is set by its token capacity, not \
              its latency: every slot on the cycle is needed every \
              traversal, so any downstream hiccup backpressures the whole \
              loop (zero slack). Inserting an elastic buffer on the named \
              channel raises the cycle's capacity and therefore its \
              sustainable throughput. The warning names the exact channel \
              where one buffer helps most.",
        example: "(circuit-level: a feedback loop whose buffer capacity \
                  equals the tokens in flight; see \
                  tests in analyze::perf for a closed-form instance)",
    },
    Explanation {
        code: Code::QueueBound,
        title: "premature-queue/arbiter serialization binds throughput",
        severity: "warning",
        doc: "The initiation interval is set by premature-queue admission or \
              arbiter validation serialization, not by the datapath: the \
              in-flight iteration frontier outruns what the queue can hold \
              until retirement. Unlike a port limit this is configuration, \
              not hardware: the \u{a7}V-A sizing model names the depth at \
              which the bottleneck shifts back to compute, and the warning \
              reports it.",
        example: "kernels/bad/throughput_cliff.pvk\n\nflags: --circuit \
                  --perf --depth 4",
    },
    Explanation {
        code: Code::ModelDivergence,
        title: "measured II diverged from the static prediction",
        severity: "warning",
        doc: "A simulation ran alongside the static model and the measured \
              initiation interval differs from the predicted one beyond \
              tolerance. Under-prediction beyond the squash allowance means \
              the timed-marked-graph model is missing a serialization (a \
              model bug worth reporting); measured II *below* the sound \
              bound should be impossible and indicates a soundness hole. \
              Emitted by `runkernel` after a run, not by the static lint \
              alone.",
        example: "(runtime: `runkernel kernels/fig2a.pvk --stats` prints \
                  predicted vs measured II and raises PV403 on divergence)",
    },
    Explanation {
        code: Code::RangeOutOfBounds,
        title: "value-range analysis proves an index out of bounds",
        severity: "error; warning for opaque-index wraparound",
        doc: "The abstract interpreter (interval \u{d7} congruence \u{d7} \
              guard domains) proves an index expression reaches a value \
              outside the declared array bounds — including cases the \
              affine PV001 check cannot see: indirect indices like \
              `a[b[i]]` bounded through a store-free `b`'s initializer \
              data, and guarded statements in iteration spaces too large \
              to enumerate. Runtime-dependent indices demote to a warning \
              because the hardware wraps them modulo the array length by \
              design; the wrap still silently aliases another element.",
        example: "int b[4] = { 1, 9, 2, 3 };\nint a[8];\nfor (int i = 0; \
                  i < 4; ++i) { a[b[i]] = i; }",
    },
    Explanation {
        code: Code::InfeasibleGuard,
        title: "guard is provably false on every iteration",
        severity: "warning",
        doc: "The abstract interpreter proves a statement's guard evaluates \
              to zero on every iteration of the (possibly refined) loop \
              nest — for example `i % 2 == 3`. The statement is dead code, \
              but unlike an unguarded dead store it still injects fake \
              tokens into the premature queue every iteration, burning \
              queue slots and arbiter bandwidth for work that provably \
              never happens. The suggested fix removes the statement.",
        example: "int a[8];\nfor (int i = 0; i < 8; ++i) { if (i % 2 == 3) \
                  a[i] = 1;\n  a[i] = a[i] + 1; }",
    },
    Explanation {
        code: Code::InvariantDischarge,
        title: "invariant-backed pair discharge",
        severity: "note",
        doc: "Inferred value invariants (intervals, strides, guard \
              predicates) prove an ambiguous load/store pair disjoint where \
              the affine GCD/Banerjee tests cannot — e.g. a store guarded \
              to even iterations against a load guarded to odd ones, or a \
              triangular pair separated within the model checker's horizon \
              box. The pair leaves the arbiter's validated set (full-space \
              proofs) or the model checker's state space (horizon-bounded \
              proofs), shrinking both.",
        example: "int a[8];\nint s[8];\nfor (int i = 0; i < 8; ++i) { if \
                  (i % 2 == 0) a[i] = i;\n  if (i % 2 == 1) s[i] = a[i]; }",
    },
    Explanation {
        code: Code::OccupancyBound,
        title: "static occupancy bound below configured depth_q",
        severity: "note",
        doc: "The abstract interpreter bounds the premature queue's peak \
              occupancy: at most (memory ops per iteration \u{d7} total \
              iterations) entries can ever be live, counting fake tokens, \
              which occupy slots like real ones. When that bound is below \
              the configured `depth_q`, the extra slots are provably dead \
              area; the note names the bound and suggests the next \
              power-of-two depth that covers it. A `depth_q = N;` source \
              directive makes the suggestion machine-applicable via \
              `prevv-lint --fix`.",
        example: "int a[4];\nfor (int i = 0; i < 4; ++i) { a[i] = i; }\n\n\
                  flags: --depth 16   (bound 4 < depth 16)",
    },
];

/// Looks up one code by its `PVxxx` string (case-insensitive).
pub fn explain(code: &str) -> Option<&'static Explanation> {
    let want = code.to_ascii_uppercase();
    ALL.iter().find(|e| e.code.as_str() == want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_is_documented() {
        // Compile-time exhaustiveness: if a new Code variant appears, this
        // match stops compiling until it is added to ALL.
        for e in ALL {
            match e.code {
                Code::Parse
                | Code::OutOfBounds
                | Code::DeadlockRisk
                | Code::QueueDepth
                | Code::DisjointPair
                | Code::DeadStore
                | Code::PairReduction
                | Code::DanglingChannel
                | Code::MultiDrivenChannel
                | Code::UnbufferedCycle
                | Code::FrontierCapacity
                | Code::UnreachableComponent
                | Code::ProtocolBound
                | Code::ProtocolDeadlock
                | Code::SquashLivelock
                | Code::QueueWedge
                | Code::ReductionUnsound
                | Code::SeparationHorizon
                | Code::ProvenDisjoint
                | Code::MustAlias
                | Code::ThroughputBound
                | Code::SlacklessCycle
                | Code::QueueBound
                | Code::ModelDivergence
                | Code::RangeOutOfBounds
                | Code::InfeasibleGuard
                | Code::InvariantDischarge
                | Code::OccupancyBound => {}
            }
        }
        assert_eq!(ALL.len(), 28, "one entry per Code variant");
        // No duplicates, sorted by code string.
        let strs: Vec<_> = ALL.iter().map(|e| e.code.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(strs, sorted);
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert_eq!(explain("pv201").unwrap().code, Code::ProtocolDeadlock);
        assert_eq!(explain("PV001").unwrap().code, Code::OutOfBounds);
        assert!(explain("PV999").is_none());
        assert!(explain("nonsense").is_none());
    }
}
