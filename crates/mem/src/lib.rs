//! # prevv-mem — memory subsystem and load-store queue baselines
//!
//! The memory side of the PreVV reproduction:
//!
//! * [`Ram`] — the functional BRAM model (timing lives in the controllers);
//! * [`PortIo`] — the channel adapter every controller is built on;
//! * [`DirectMemory`] — no disambiguation at all (demonstrates why
//!   dynamically scheduled circuits mis-execute without an LSQ);
//! * [`Lsq`] — the Dynamatic-style load-store queue \[15\] with group
//!   allocation, associative search, store-to-load forwarding and in-order
//!   commit; [`LsqConfig::fast`] models the fast-allocation plugin \[8\].
//!
//! The PreVV controller itself lives in `prevv-core` and plugs into the same
//! [`MemoryInterface`](prevv_ir::MemoryInterface).
//!
//! ## Example
//!
//! ```
//! use prevv_dataflow::{Simulator, components::LoopLevel};
//! use prevv_ir::{golden, synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};
//! use prevv_mem::{Lsq, LsqConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = ArrayId(0);
//! let spec = KernelSpec::new(
//!     "inc",
//!     vec![LoopLevel::upto(8)],
//!     vec![ArrayDecl::zeroed("a", 8)],
//!     vec![Stmt::store(a, Expr::var(0), Expr::load(a, Expr::var(0)).add(Expr::lit(1)))],
//! )?;
//! let mut circuit = synthesize(&spec)?;
//! let (lsq, ram) = Lsq::new(circuit.interface.clone(), LsqConfig::dynamatic(16))?;
//! circuit.netlist.add("lsq", lsq);
//! let mut sim = Simulator::new(circuit.netlist, circuit.bus)?;
//! sim.run()?;
//! assert_eq!(ram.borrow().image(), golden::execute(&spec).array(a));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod direct;
mod lsq;
mod portio;
mod ram;
mod spec_alloc;

pub use delay::DelayLine;
pub use direct::DirectMemory;
pub use lsq::{Lsq, LsqConfig, LsqError, LsqStats, SharedLsqStats};
pub use portio::{PortIo, DEFAULT_IO_CAPACITY};
pub use ram::{shared, Ram, SharedRam};
pub use spec_alloc::{SpecLsq, SpecLsqConfig, SpecStats};

/// RAM timing and port bandwidth shared by all controllers.
///
/// Defaults model a dual-port BRAM (one read, one write per cycle) with a
/// 2-cycle read and 1-cycle write, typical of Dynamatic's memory interface
/// on 7-series FPGAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTiming {
    /// Cycles from read issue to data.
    pub read_latency: u32,
    /// Cycles from write issue to the cell being updated.
    pub write_latency: u32,
    /// Reads that may issue per cycle.
    pub read_ports: u32,
    /// Writes that may commit per cycle.
    pub write_ports: u32,
}

impl Default for MemTiming {
    fn default() -> Self {
        MemTiming {
            read_latency: 2,
            write_latency: 1,
            read_ports: 1,
            write_ports: 1,
        }
    }
}
