//! The load-store queue baseline — the component PreVV eliminates.
//!
//! Models the Dynamatic LSQ of Josipović et al. \[15\]/\[4\]: a **group
//! allocator** receives one token per iteration in program order and
//! reserves, atomically, one entry per static memory op of that iteration
//! (the program-order ROM), a **load queue** and **store queue** hold the
//! in-flight ops, loads perform an **associative search** of older stores
//! (wait on unknown addresses, forward on a match), and stores commit to RAM
//! strictly in order from the queue head. The fast-allocation variant of
//! Elakhras et al. \[8\] ("straight to the queue") is the same machine with
//! zero allocation latency — see [`LsqConfig::fast`].
//!
//! The resource cost of all this — per-entry CAM comparators, allocation
//! logic, wide priority encoders — is what Fig. 1 of the paper shows
//! dominating Dynamatic circuits; the analytic model in `prevv-area` prices
//! it from this crate's configuration.

use std::cell::RefCell;
use std::rc::Rc;

use prevv_dataflow::{Component, Ports, Signals, Tag, Token, Value};
use prevv_ir::{MemOpKind, MemoryInterface};

use crate::delay::DelayLine;
use crate::portio::PortIo;
use crate::ram::{shared, Ram, SharedRam};
use crate::MemTiming;

/// Configuration of the LSQ baseline.
#[derive(Debug, Clone)]
pub struct LsqConfig {
    /// Load queue entries.
    pub load_depth: usize,
    /// Store queue entries.
    pub store_depth: usize,
    /// Cycles between an iteration's allocation token arriving and its
    /// entries being usable. Plain Dynamatic routes allocation requests
    /// through the control network (several cycles); the fast-allocation
    /// plugin \[8\] delivers them straight to the queue.
    pub alloc_latency: u32,
    /// RAM timing and port bandwidth.
    pub timing: MemTiming,
}

impl LsqConfig {
    /// Plain Dynamatic \[15\]: depth-16 queues, slow allocation path.
    pub fn dynamatic(depth: usize) -> Self {
        LsqConfig {
            load_depth: depth,
            store_depth: depth,
            alloc_latency: 3,
            timing: MemTiming::default(),
        }
    }

    /// Fast load-store queue allocation \[8\]: same queues, allocation tokens
    /// delivered straight to the queue.
    pub fn fast(depth: usize) -> Self {
        LsqConfig {
            alloc_latency: 0,
            ..Self::dynamatic(depth)
        }
    }
}

/// Errors raised when constructing an LSQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsqError {
    /// One iteration has more loads than the load queue can hold, so group
    /// allocation could never succeed.
    LoadQueueTooShallow {
        /// Loads per iteration.
        needed: usize,
        /// Configured depth.
        depth: usize,
    },
    /// One iteration has more stores than the store queue can hold.
    StoreQueueTooShallow {
        /// Stores per iteration.
        needed: usize,
        /// Configured depth.
        depth: usize,
    },
}

impl std::fmt::Display for LsqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LsqError::LoadQueueTooShallow { needed, depth } => write!(
                f,
                "load queue depth {depth} cannot hold one iteration's {needed} loads"
            ),
            LsqError::StoreQueueTooShallow { needed, depth } => write!(
                f,
                "store queue depth {depth} cannot hold one iteration's {needed} stores"
            ),
        }
    }
}

impl std::error::Error for LsqError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Allocated; waiting for operands / ordering.
    Waiting,
    /// Read issued to RAM (loads only).
    Issued,
    /// Finished (result delivered / written); awaiting head deallocation.
    Done,
    /// Guard was false; a fake token cancelled this entry.
    Cancelled,
}

#[derive(Debug, Clone)]
struct Entry {
    port: usize,
    iter: u64,
    seq: u32,
    tag: Tag,
    addr: Option<usize>,
    data: Option<Value>,
    state: EntryState,
}

impl Entry {
    fn order(&self) -> (u64, u32) {
        (self.iter, self.seq)
    }
}

/// Statistics specific to the LSQ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsqStats {
    /// Loads satisfied by store-to-load forwarding.
    pub forwards: u64,
    /// Loads issued to RAM.
    pub ram_reads: u64,
    /// Stores committed to RAM.
    pub ram_writes: u64,
    /// Cycles in which allocation stalled for lack of queue space.
    pub alloc_stall_cycles: u64,
    /// Peak combined queue occupancy (loads + stores).
    pub high_water: usize,
}

/// Shared handle to LSQ statistics, readable after simulation.
pub type SharedLsqStats = Rc<RefCell<LsqStats>>;

/// The load-store queue controller.
#[derive(Debug)]
pub struct Lsq {
    io: PortIo,
    ram: SharedRam,
    config: LsqConfig,
    lq: Vec<Entry>,
    sq: Vec<Entry>,
    alloc_delay: DelayLine<Token>,
    ready_allocs: std::collections::VecDeque<Token>,
    reads: DelayLine<(usize, u64, u32, Value)>,
    loads_per_iter: usize,
    stores_per_iter: usize,
    stats: LsqStats,
    shared: SharedLsqStats,
    /// Did the last commit mutate the io adapter — the only state `eval`
    /// reads? Backs [`Component::eval_invalidated`].
    eval_dirty: bool,
}

impl Lsq {
    /// Creates an LSQ over a fresh RAM initialized from the interface's
    /// array images.
    ///
    /// # Errors
    ///
    /// Returns [`LsqError`] if one iteration's ops cannot fit the queues.
    pub fn new(iface: MemoryInterface, config: LsqConfig) -> Result<(Self, SharedRam), LsqError> {
        let (lsq, ram, _) = Self::with_stats(iface, config)?;
        Ok((lsq, ram))
    }

    /// Like [`Lsq::new`], additionally returning a shared statistics handle
    /// that stays readable after the component is moved into a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LsqError`] if one iteration's ops cannot fit the queues.
    pub fn with_stats(
        iface: MemoryInterface,
        config: LsqConfig,
    ) -> Result<(Self, SharedRam, SharedLsqStats), LsqError> {
        let loads_per_iter = iface.load_ports();
        let stores_per_iter = iface.store_ports();
        if loads_per_iter > config.load_depth {
            return Err(LsqError::LoadQueueTooShallow {
                needed: loads_per_iter,
                depth: config.load_depth,
            });
        }
        if stores_per_iter > config.store_depth {
            return Err(LsqError::StoreQueueTooShallow {
                needed: stores_per_iter,
                depth: config.store_depth,
            });
        }
        let ram = shared(Ram::new(iface.initial_ram()));
        let stats_handle = Rc::new(RefCell::new(LsqStats::default()));
        Ok((
            Lsq {
                io: PortIo::new(iface),
                ram: ram.clone(),
                config,
                lq: Vec::new(),
                sq: Vec::new(),
                alloc_delay: DelayLine::new(),
                ready_allocs: std::collections::VecDeque::new(),
                reads: DelayLine::new(),
                loads_per_iter,
                stores_per_iter,
                stats: LsqStats::default(),
                shared: stats_handle.clone(),
                eval_dirty: true,
            },
            ram,
            stats_handle,
        ))
    }

    /// LSQ-specific statistics.
    pub fn stats(&self) -> LsqStats {
        self.stats
    }

    /// Current queue occupancies `(loads, stores)`.
    pub fn queue_occupancy(&self) -> (usize, usize) {
        (self.lq.len(), self.sq.len())
    }

    fn allocate_ready(&mut self) {
        while let Some(front) = self.ready_allocs.front() {
            let can = self.lq.len() + self.loads_per_iter <= self.config.load_depth
                && self.sq.len() + self.stores_per_iter <= self.config.store_depth;
            if !can {
                self.stats.alloc_stall_cycles += 1;
                break;
            }
            let iter = front.tag.iter;
            let tag = front.tag;
            self.ready_allocs.pop_front();
            for p in 0..self.io.port_count() {
                let op = &self.io.port(p).op;
                let entry = Entry {
                    port: p,
                    iter,
                    seq: op.seq,
                    tag,
                    addr: None,
                    data: None,
                    state: EntryState::Waiting,
                };
                match op.kind {
                    MemOpKind::Load => self.lq.push(entry),
                    MemOpKind::Store => self.sq.push(entry),
                }
            }
        }
    }

    fn ingest_arrivals(&mut self) {
        for p in 0..self.io.port_count() {
            let is_load = self.io.port(p).is_load();
            // Addresses.
            while let Some(tok) = self.io.peek_addr(p).copied() {
                let addr = self.io.resolve(p, tok.value);
                let q = if is_load { &mut self.lq } else { &mut self.sq };
                let Some(e) = q
                    .iter_mut()
                    .find(|e| e.port == p && e.iter == tok.tag.iter && e.addr.is_none())
                else {
                    break; // not allocated yet: leave queued upstream
                };
                e.addr = Some(addr);
                e.tag = tok.tag;
                self.io.take_addr(p).expect("peeked");
            }
            // Store data.
            if !is_load {
                while let Some(tok) = self.io.peek_data(p).copied() {
                    let Some(e) = self
                        .sq
                        .iter_mut()
                        .find(|e| e.port == p && e.iter == tok.tag.iter && e.data.is_none())
                    else {
                        break;
                    };
                    e.data = Some(tok.value);
                    self.io.take_data(p).expect("peeked");
                }
            }
            // Fake tokens cancel their entry; cancelled loads still owe a
            // dummy result so the datapath's token balance holds.
            while let Some(tok) = self.io.peek_fake(p).copied() {
                let q = if is_load { &mut self.lq } else { &mut self.sq };
                let Some(e) = q.iter_mut().find(|e| {
                    e.port == p && e.iter == tok.tag.iter && e.state == EntryState::Waiting
                }) else {
                    break;
                };
                e.state = EntryState::Cancelled;
                self.io.take_fake(p).expect("peeked");
                if is_load {
                    self.io.push_result(p, Token::tagged(0, tok.tag));
                }
            }
        }
    }

    fn issue_loads(&mut self) {
        let mut budget = self.config.timing.read_ports;
        // Snapshot of the store queue for the associative search.
        for li in 0..self.lq.len() {
            if budget == 0 {
                break;
            }
            let (order, addr) = {
                let l = &self.lq[li];
                if l.state != EntryState::Waiting {
                    continue;
                }
                let Some(addr) = l.addr else { continue };
                (l.order(), addr)
            };
            // Associative search of older stores (paper §II-B): any older
            // store with an unknown address blocks the load; the youngest
            // older store to the same address forwards its data once known.
            let mut blocked = false;
            let mut forward: Option<(u64, u32, Option<Value>)> = None;
            for s in &self.sq {
                if s.state == EntryState::Cancelled || s.order() >= order {
                    continue;
                }
                match s.addr {
                    None => {
                        blocked = true;
                        break;
                    }
                    Some(sa) if sa == addr => {
                        if forward.is_none_or(|(fi, fs, _)| (fi, fs) < s.order()) {
                            forward = Some((s.iter, s.seq, s.data));
                        }
                    }
                    Some(_) => {}
                }
            }
            if blocked {
                continue;
            }
            match forward {
                Some((_, _, Some(v))) => {
                    // Store-to-load forwarding.
                    let l = &mut self.lq[li];
                    l.state = EntryState::Done;
                    l.data = Some(v);
                    let (port, tag) = (l.port, l.tag);
                    self.io.push_result(port, Token::tagged(v, tag));
                    self.stats.forwards += 1;
                }
                Some((_, _, None)) => {
                    // Matching older store whose data is not ready: wait.
                }
                None => {
                    // Sample RAM now; all older matching stores are ruled
                    // out, and younger stores commit only behind them, so
                    // the value is stable for this load.
                    let value = self.ram.borrow_mut().read(addr);
                    let l = &mut self.lq[li];
                    l.state = EntryState::Issued;
                    self.reads.push(
                        self.config.timing.read_latency,
                        (l.port, l.iter, l.seq, value),
                    );
                    self.stats.ram_reads += 1;
                    budget -= 1;
                }
            }
        }
    }

    fn commit_stores(&mut self) {
        let mut budget = self.config.timing.write_ports;
        while let Some(head) = self.sq.first() {
            match head.state {
                EntryState::Cancelled => {
                    self.sq.remove(0);
                }
                _ => {
                    let (Some(addr), Some(data)) = (head.addr, head.data) else {
                        break;
                    };
                    if budget == 0 {
                        break;
                    }
                    self.ram.borrow_mut().write(addr, data);
                    self.stats.ram_writes += 1;
                    budget -= 1;
                    self.sq.remove(0);
                }
            }
        }
    }

    fn dealloc_loads(&mut self) {
        while let Some(head) = self.lq.first() {
            if matches!(head.state, EntryState::Done | EntryState::Cancelled) {
                self.lq.remove(0);
            } else {
                break;
            }
        }
    }
}

impl Component for Lsq {
    fn type_name(&self) -> &'static str {
        "lsq"
    }

    fn ports(&self) -> Ports {
        self.io.channel_ports()
    }

    fn eval(&self, sig: &mut Signals) {
        self.io.eval(sig);
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        // Occupied delay lines tick below even when nothing else moves, and
        // queue-length changes catch entry motion that bypasses the io
        // queues; together with the io dirty flag this is an honest
        // changed-signal for the scheduler/watchdog (the stats mirror below
        // is bookkeeping and deliberately excluded).
        let ticking = !self.alloc_delay.is_empty() || !self.reads.is_empty();
        let lens = (self.lq.len(), self.sq.len(), self.ready_allocs.len());
        self.io.commit_io(sig);

        // Read completions (issued `read_latency` cycles ago).
        for (port, iter, seq, value) in self.reads.tick() {
            if let Some(e) = self
                .lq
                .iter_mut()
                .find(|e| e.port == port && e.iter == iter && e.seq == seq)
            {
                e.state = EntryState::Done;
                e.data = Some(value);
                let tag = e.tag;
                self.io.push_result(port, Token::tagged(value, tag));
            }
        }

        // Group allocation pipeline.
        if let Some(t) = self.io.take_alloc() {
            self.alloc_delay.push(self.config.alloc_latency, t);
        }
        self.ready_allocs.extend(self.alloc_delay.tick());
        self.allocate_ready();

        self.ingest_arrivals();
        self.issue_loads();
        self.commit_stores();
        self.dealloc_loads();
        self.stats.high_water = self.stats.high_water.max(self.lq.len() + self.sq.len());
        *self.shared.borrow_mut() = self.stats;

        self.eval_dirty = self.io.take_dirty();
        self.eval_dirty
            || ticking
            || !self.alloc_delay.is_empty()
            || !self.reads.is_empty()
            || lens != (self.lq.len(), self.sq.len(), self.ready_allocs.len())
    }

    fn eval_invalidated(&self) -> bool {
        self.eval_dirty
    }

    fn flush(&mut self, from_iter: u64) {
        // The LSQ never speculates, so it never receives a squash in normal
        // operation; this keeps the component well-behaved if one arrives.
        self.eval_dirty = true;
        self.io.flush(from_iter);
        self.lq.retain(|e| e.iter < from_iter);
        self.sq.retain(|e| e.iter < from_iter);
        self.ready_allocs.retain(|t| t.tag.iter < from_iter);
        self.alloc_delay.flush_if(|t| t.tag.iter >= from_iter);
        self.reads.flush_if(|&(_, iter, _, _)| iter >= from_iter);
    }

    fn is_idle(&self) -> bool {
        self.io.is_idle()
            && self.lq.is_empty()
            && self.sq.is_empty()
            && self.ready_allocs.is_empty()
            && self.alloc_delay.is_empty()
            && self.reads.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.io.occupancy() + self.lq.len() + self.sq.len() + self.ready_allocs.len()
    }

    fn capacity(&self) -> usize {
        self.config.load_depth + self.config.store_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::LoopLevel;
    use prevv_dataflow::{SimConfig, Simulator};
    use prevv_ir::{golden, synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};

    fn run_lsq(spec: &KernelSpec, config: LsqConfig) -> (Vec<Vec<i64>>, prevv_dataflow::SimReport) {
        let mut s = synthesize(spec).expect("synth");
        let (ctrl, ram) = Lsq::new(s.interface.clone(), config).expect("fits");
        s.netlist.add("lsq", ctrl);
        let mut sim = Simulator::new(s.netlist, s.bus)
            .expect("valid netlist")
            .with_config(SimConfig {
                max_cycles: 500_000,
                watchdog: 2_000,
                ..SimConfig::default()
            });
        let report = sim.run().expect("completes");
        let ram = ram.borrow();
        let arrays = s
            .interface
            .split_ram(ram.image())
            .into_iter()
            .map(<[i64]>::to_vec)
            .collect();
        (arrays, report)
    }

    /// The reduction that breaks DirectMemory.
    fn reduction() -> KernelSpec {
        let s = ArrayId(0);
        KernelSpec::new(
            "reduce",
            vec![LoopLevel::upto(32)],
            vec![ArrayDecl::zeroed("s", 4)],
            vec![Stmt::store(
                s,
                Expr::lit(0),
                Expr::load(s, Expr::lit(0)).add(Expr::var(0)),
            )],
        )
        .expect("valid")
    }

    #[test]
    fn lsq_fixes_the_loop_carried_reduction() {
        let spec = reduction();
        let gold = golden::execute(&spec);
        let (arrays, _) = run_lsq(&spec, LsqConfig::dynamatic(16));
        assert_eq!(arrays[0], gold.array(ArrayId(0)));
    }

    #[test]
    fn fast_allocation_is_not_slower() {
        let spec = reduction();
        let (_, slow) = run_lsq(&spec, LsqConfig::dynamatic(16));
        let (_, fast) = run_lsq(&spec, LsqConfig::fast(16));
        assert!(
            fast.cycles <= slow.cycles,
            "fast allocation [8] must not lose to plain Dynamatic [15]: {} vs {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn histogram_with_runtime_indices_is_correct() {
        use prevv_ir::OpaqueFn;
        let h = ArrayId(0);
        let spec = KernelSpec::new(
            "hist",
            vec![LoopLevel::upto(48)],
            vec![ArrayDecl::zeroed("h", 8)],
            vec![Stmt::store(
                h,
                Expr::var(0).opaque(OpaqueFn::new(11, 8)),
                Expr::load(h, Expr::var(0).opaque(OpaqueFn::new(11, 8))).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let gold = golden::execute(&spec);
        let (arrays, _) = run_lsq(&spec, LsqConfig::dynamatic(16));
        assert_eq!(arrays[0], gold.array(ArrayId(0)));
        let total: i64 = arrays[0].iter().sum();
        assert_eq!(total, 48);
    }

    #[test]
    fn guarded_kernel_with_fakes_completes_on_lsq() {
        use prevv_dataflow::components::BinOp;
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "guarded",
            vec![LoopLevel::upto(16)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::guarded(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(5)),
                Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(2)),
                    Expr::lit(0),
                ),
            )],
        )
        .expect("valid");
        let gold = golden::execute(&spec);
        let (arrays, _) = run_lsq(&spec, LsqConfig::dynamatic(16));
        assert_eq!(arrays[0], gold.array(ArrayId(0)));
    }

    #[test]
    fn shallow_queue_is_rejected_when_iteration_cannot_fit() {
        let a = ArrayId(0);
        // 3 loads per iteration, queue depth 2.
        let spec = KernelSpec::new(
            "wide",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(1))))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(2)))),
            )],
        )
        .expect("valid");
        let s = synthesize(&spec).expect("synth");
        let cfg = LsqConfig {
            load_depth: 2,
            ..LsqConfig::dynamatic(2)
        };
        let err = Lsq::new(s.interface, cfg).expect_err("must reject");
        assert!(matches!(
            err,
            LsqError::LoadQueueTooShallow {
                needed: 3,
                depth: 2
            }
        ));
    }

    #[test]
    fn deeper_queue_is_not_slower() {
        let spec = reduction();
        let (_, d4) = run_lsq(&spec, LsqConfig::fast(4));
        let (_, d16) = run_lsq(&spec, LsqConfig::fast(16));
        assert!(
            d16.cycles <= d4.cycles,
            "deeper LSQ must not be slower: {} vs {}",
            d16.cycles,
            d4.cycles
        );
    }
}
