//! Fixed-latency delay lines for modeling memory access timing.

use std::collections::VecDeque;

/// Items annotated with a countdown; `tick` decrements all and pops the ones
/// that reach zero. Used for RAM read/write latency modeling.
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    slots: VecDeque<(u32, T)>,
}

impl<T> Default for DelayLine<T> {
    fn default() -> Self {
        DelayLine {
            slots: VecDeque::new(),
        }
    }
}

impl<T> DelayLine<T> {
    /// Creates an empty delay line.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `item` to emerge after `latency` cycles (0 = next tick).
    pub fn push(&mut self, latency: u32, item: T) {
        self.slots.push_back((latency, item));
    }

    /// Advances one cycle, returning all items whose latency elapsed (in
    /// insertion order).
    pub fn tick(&mut self) -> Vec<T> {
        let mut any = false;
        for (c, _) in self.slots.iter_mut() {
            *c = c.saturating_sub(1);
            any |= *c == 0;
        }
        if !any {
            return Vec::new();
        }
        let mut done = Vec::new();
        // Items complete in insertion order because latencies are uniform
        // per line; a stable partition keeps order regardless.
        let mut remaining = VecDeque::with_capacity(self.slots.len());
        for (c, item) in self.slots.drain(..) {
            if c == 0 {
                done.push(item);
            } else {
                remaining.push_back((c, item));
            }
        }
        self.slots = remaining;
        done
    }

    /// True when at least one item would emerge on the next [`tick`]
    /// (its countdown is already at most one).
    pub fn due(&self) -> bool {
        self.slots.iter().any(|(c, _)| *c <= 1)
    }

    /// Advances one cycle known (via [`due`](DelayLine::due)) to complete
    /// nothing: pure countdown, no drain, no allocation.
    pub fn tick_quiet(&mut self) {
        debug_assert!(!self.due(), "tick_quiet would drop a completed item");
        for (c, _) in self.slots.iter_mut() {
            *c = c.saturating_sub(1);
        }
    }

    /// Number of in-flight items.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drops in-flight items matching `pred` (used on squash).
    pub fn flush_if(&mut self, mut pred: impl FnMut(&T) -> bool) {
        self.slots.retain(|(_, t)| !pred(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_emerge_after_latency() {
        let mut d = DelayLine::new();
        d.push(2, "a");
        assert!(d.tick().is_empty());
        assert_eq!(d.tick(), vec!["a"]);
        assert!(d.is_empty());
    }

    #[test]
    fn zero_latency_emerges_next_tick() {
        let mut d = DelayLine::new();
        d.push(0, 1);
        assert_eq!(d.tick(), vec![1]);
    }

    #[test]
    fn order_is_preserved() {
        let mut d = DelayLine::new();
        d.push(1, 1);
        d.push(1, 2);
        assert_eq!(d.tick(), vec![1, 2]);
    }

    #[test]
    fn flush_removes_matching() {
        let mut d = DelayLine::new();
        d.push(3, 10u64);
        d.push(3, 20u64);
        d.flush_if(|&x| x >= 15);
        assert_eq!(d.len(), 1);
    }
}
