//! A memory controller with **no** disambiguation.
//!
//! Loads and stores issue the moment their operands arrive, subject only to
//! RAM latency and port bandwidth. On hazard-free kernels this is the
//! fastest possible controller; on kernels with inter-iteration dependences
//! it produces *wrong results* — the demonstration of why dynamically
//! scheduled HLS needs an LSQ or PreVV at all.

use prevv_dataflow::{Component, Ports, Signals, Token};
use prevv_ir::MemoryInterface;

use crate::delay::DelayLine;
use crate::portio::PortIo;
use crate::ram::{shared, Ram, SharedRam};
use crate::MemTiming;

/// The unprotected controller.
#[derive(Debug)]
pub struct DirectMemory {
    io: PortIo,
    ram: SharedRam,
    timing: MemTiming,
    reads: DelayLine<(usize, usize, prevv_dataflow::Tag)>,
    writes: DelayLine<(usize, prevv_dataflow::Value)>,
    /// Did the last commit mutate the io adapter — the only state `eval`
    /// reads? Backs [`Component::eval_invalidated`].
    eval_dirty: bool,
}

impl DirectMemory {
    /// Creates the controller over a fresh RAM initialized from the
    /// interface's array images.
    pub fn new(iface: MemoryInterface, timing: MemTiming) -> (Self, SharedRam) {
        let ram = shared(Ram::new(iface.initial_ram()));
        let ctrl = DirectMemory {
            io: PortIo::new(iface),
            ram: ram.clone(),
            timing,
            reads: DelayLine::new(),
            writes: DelayLine::new(),
            eval_dirty: true,
        };
        (ctrl, ram)
    }
}

impl Component for DirectMemory {
    fn type_name(&self) -> &'static str {
        "direct_memory"
    }

    fn ports(&self) -> Ports {
        self.io.channel_ports()
    }

    fn eval(&self, sig: &mut Signals) {
        self.io.eval(sig);
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        // In-flight RAM operations ticking below are internal motion even
        // when no queue changes, so capture it before the drain loops.
        let ticking = !self.reads.is_empty() || !self.writes.is_empty();
        self.io.commit_io(sig);

        // Completions first so a read pushed this cycle waits its full
        // latency.
        for (port, addr, tag) in self.reads.tick() {
            let value = self.ram.borrow_mut().read(addr);
            self.io.push_result(port, Token::tagged(value, tag));
        }
        for (addr, value) in self.writes.tick() {
            self.ram.borrow_mut().write(addr, value);
        }

        // Allocation tokens are irrelevant without ordering: drain them.
        while self.io.take_alloc().is_some() {}

        let mut read_budget = self.timing.read_ports;
        let mut write_budget = self.timing.write_ports;
        for p in 0..self.io.port_count() {
            // Fake tokens: loads still owe a (dummy) result token so the
            // datapath's token balance holds; stores are simply dropped.
            while let Some(f) = self.io.take_fake(p) {
                if self.io.port(p).is_load() {
                    self.io.push_result(p, Token::tagged(0, f.tag));
                }
            }
            if self.io.port(p).is_load() {
                while read_budget > 0 {
                    let Some(a) = self.io.take_addr(p) else { break };
                    let addr = self.io.resolve(p, a.value);
                    self.reads.push(self.timing.read_latency, (p, addr, a.tag));
                    read_budget -= 1;
                }
            } else {
                while write_budget > 0 {
                    let (Some(a), Some(_)) = (self.io.peek_addr(p), self.io.peek_data(p)) else {
                        break;
                    };
                    debug_assert_eq!(
                        a.tag.iter,
                        self.io.peek_data(p).expect("peeked").tag.iter,
                        "store address/data streams must stay paired"
                    );
                    let a = self.io.take_addr(p).expect("peeked");
                    let d = self.io.take_data(p).expect("peeked");
                    let addr = self.io.resolve(p, a.value);
                    self.writes.push(self.timing.write_latency, (addr, d.value));
                    write_budget -= 1;
                }
            }
        }
        self.eval_dirty = self.io.take_dirty();
        self.eval_dirty || ticking
    }

    fn eval_invalidated(&self) -> bool {
        self.eval_dirty
    }

    fn flush(&mut self, from_iter: u64) {
        self.eval_dirty = true;
        self.io.flush(from_iter);
        self.reads.flush_if(|(_, _, tag)| tag.iter >= from_iter);
        // Writes are not flushed: once issued they are architectural.
    }

    fn is_idle(&self) -> bool {
        self.io.is_idle() && self.reads.is_empty() && self.writes.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.io.occupancy() + self.reads.len() + self.writes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::LoopLevel;
    use prevv_dataflow::{SimConfig, Simulator};
    use prevv_ir::{golden, synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};

    /// Hazard-free kernel: b[i] = a[i] * 3.
    fn hazard_free() -> KernelSpec {
        let a = ArrayId(0);
        let b = ArrayId(1);
        KernelSpec::new(
            "scale",
            vec![LoopLevel::upto(16)],
            vec![
                ArrayDecl::with_values("a", (0..16).collect()),
                ArrayDecl::zeroed("b", 16),
            ],
            vec![Stmt::store(
                b,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).mul(Expr::lit(3)),
            )],
        )
        .expect("valid")
    }

    /// Loop-carried accumulation with reuse distance 1: s[0] += i is
    /// guaranteed to break without disambiguation once the pipeline
    /// overlaps.
    fn hazardous() -> KernelSpec {
        let s = ArrayId(0);
        KernelSpec::new(
            "reduce",
            vec![LoopLevel::upto(32)],
            vec![ArrayDecl::zeroed("s", 4)],
            vec![Stmt::store(
                s,
                Expr::lit(0),
                Expr::load(s, Expr::lit(0)).add(Expr::var(0)),
            )],
        )
        .expect("valid")
    }

    fn run(spec: &KernelSpec) -> (Vec<Vec<i64>>, prevv_dataflow::SimReport) {
        let mut s = synthesize(spec).expect("synth");
        let (ctrl, ram) = DirectMemory::new(s.interface.clone(), MemTiming::default());
        s.netlist.add("mem", ctrl);
        let mut sim = Simulator::new(s.netlist, s.bus)
            .expect("valid netlist")
            .with_config(SimConfig {
                max_cycles: 100_000,
                watchdog: 500,
                ..SimConfig::default()
            });
        let report = sim.run().expect("completes");
        let ram = ram.borrow();
        let arrays = s
            .interface
            .split_ram(ram.image())
            .into_iter()
            .map(<[i64]>::to_vec)
            .collect();
        (arrays, report)
    }

    #[test]
    fn hazard_free_kernel_is_correct_and_fast() {
        let spec = hazard_free();
        let gold = golden::execute(&spec);
        let (arrays, report) = run(&spec);
        assert_eq!(arrays[1], gold.array(ArrayId(1)));
        assert!(
            report.cycles < 16 * 8,
            "pipelined execution expected, got {} cycles",
            report.cycles
        );
    }

    #[test]
    fn hazardous_kernel_goes_wrong_without_disambiguation() {
        let spec = hazardous();
        let gold = golden::execute(&spec);
        let (arrays, _) = run(&spec);
        assert_ne!(
            arrays[0],
            gold.array(ArrayId(0)),
            "direct memory must mis-execute the loop-carried reduction \
             (this failing would mean the pipeline never overlapped)"
        );
    }
}
