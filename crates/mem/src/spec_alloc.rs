//! Speculatively allocated load-store queue — the third LSQ baseline.
//!
//! Models the high-frequency HLS LSQ of Szafarczyk et al. (FPL'23, arXiv
//! 2311.08198): instead of waiting for the control network to deliver one
//! allocation token per iteration (the Dynamatic group allocator of
//! `lsq.rs`), the queue **speculatively allocates** entry groups for future
//! iterations in program order, bounded by a speculation window over the
//! number of iterations the control network has actually confirmed.
//! Allocation tokens still arrive — they are drained purely as
//! confirmations that advance the window — so the allocator is off the
//! critical path entirely: an iteration's entries exist before any of its
//! address tokens show up.
//!
//! Because kernels here have a statically known iteration count, speculation
//! is clamped to the interface's total and misspeculated entries never
//! exist; what remains observable versus `LsqConfig::fast` is that entries
//! appear earlier (deeper effective pipelining, higher queue occupancy) and
//! the allocation handshake never stalls the control network. Ordering,
//! associative search, forwarding, and in-order store commit are identical
//! to `lsq.rs` — the oracle in `prevv::diffcheck` holds all three LSQ
//! variants plus PreVV to byte-identical results.

use std::cell::RefCell;
use std::rc::Rc;

use prevv_dataflow::{Component, Ports, Signals, Tag, Token, Value};
use prevv_ir::{MemOpKind, MemoryInterface};

use crate::delay::DelayLine;
use crate::lsq::{LsqError, LsqStats, SharedLsqStats};
use crate::portio::PortIo;
use crate::ram::{shared, Ram, SharedRam};
use crate::MemTiming;

/// Configuration of the speculative-allocation LSQ.
#[derive(Debug, Clone)]
pub struct SpecLsqConfig {
    /// Load queue entries.
    pub load_depth: usize,
    /// Store queue entries.
    pub store_depth: usize,
    /// How many iterations may be allocated beyond the last confirmed one.
    pub window: usize,
    /// RAM timing and port bandwidth.
    pub timing: MemTiming,
}

impl SpecLsqConfig {
    /// Depth-`depth` queues with a speculation window of the same size.
    pub fn speculative(depth: usize) -> Self {
        SpecLsqConfig {
            load_depth: depth,
            store_depth: depth,
            window: depth,
            timing: MemTiming::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Issued,
    Done,
    Cancelled,
}

#[derive(Debug, Clone)]
struct Entry {
    port: usize,
    iter: u64,
    seq: u32,
    tag: Tag,
    addr: Option<usize>,
    data: Option<Value>,
    state: EntryState,
}

impl Entry {
    fn order(&self) -> (u64, u32) {
        (self.iter, self.seq)
    }
}

/// Statistics specific to speculative allocation, on top of the shared
/// [`LsqStats`] the facade reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Iteration groups allocated ahead of their confirmation token.
    pub spec_allocated: u64,
    /// Confirmation tokens drained from the control network.
    pub confirmed: u64,
    /// Cycles in which allocation was blocked by the speculation window
    /// (as opposed to queue capacity).
    pub window_stall_cycles: u64,
}

/// The speculative-allocation LSQ controller.
#[derive(Debug)]
pub struct SpecLsq {
    io: PortIo,
    ram: SharedRam,
    config: SpecLsqConfig,
    lq: Vec<Entry>,
    sq: Vec<Entry>,
    reads: DelayLine<(usize, u64, u32, Value)>,
    /// Next iteration to allocate speculatively (program order).
    next_spec_iter: u64,
    /// Iterations confirmed by drained allocation tokens.
    confirmed: u64,
    /// Total iterations in the kernel — speculation never runs past the end.
    total_iters: u64,
    loads_per_iter: usize,
    stores_per_iter: usize,
    stats: LsqStats,
    spec_stats: SpecStats,
    shared: SharedLsqStats,
    eval_dirty: bool,
}

impl SpecLsq {
    /// Creates a speculative-allocation LSQ over a fresh RAM initialized
    /// from the interface's array images.
    ///
    /// # Errors
    ///
    /// Returns [`LsqError`] if one iteration's ops cannot fit the queues
    /// (shared failure mode with the other LSQ baselines).
    pub fn new(
        iface: MemoryInterface,
        config: SpecLsqConfig,
    ) -> Result<(Self, SharedRam), LsqError> {
        let (lsq, ram, _) = Self::with_stats(iface, config)?;
        Ok((lsq, ram))
    }

    /// Like [`SpecLsq::new`], additionally returning the shared statistics
    /// handle that stays readable after the component is moved into a
    /// netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LsqError`] if one iteration's ops cannot fit the queues.
    pub fn with_stats(
        iface: MemoryInterface,
        config: SpecLsqConfig,
    ) -> Result<(Self, SharedRam, SharedLsqStats), LsqError> {
        let loads_per_iter = iface.load_ports();
        let stores_per_iter = iface.store_ports();
        if loads_per_iter > config.load_depth {
            return Err(LsqError::LoadQueueTooShallow {
                needed: loads_per_iter,
                depth: config.load_depth,
            });
        }
        if stores_per_iter > config.store_depth {
            return Err(LsqError::StoreQueueTooShallow {
                needed: stores_per_iter,
                depth: config.store_depth,
            });
        }
        let ram = shared(Ram::new(iface.initial_ram()));
        let stats_handle = Rc::new(RefCell::new(LsqStats::default()));
        let total_iters = iface.iterations as u64;
        Ok((
            SpecLsq {
                io: PortIo::new(iface),
                ram: ram.clone(),
                config,
                lq: Vec::new(),
                sq: Vec::new(),
                reads: DelayLine::new(),
                next_spec_iter: 0,
                confirmed: 0,
                total_iters,
                loads_per_iter,
                stores_per_iter,
                stats: LsqStats::default(),
                spec_stats: SpecStats::default(),
                shared: stats_handle.clone(),
                eval_dirty: true,
            },
            ram,
            stats_handle,
        ))
    }

    /// Shared-shape statistics (forwards, RAM traffic, stalls, high water).
    pub fn stats(&self) -> LsqStats {
        self.stats
    }

    /// Speculation-specific statistics.
    pub fn spec_stats(&self) -> SpecStats {
        self.spec_stats
    }

    /// Current queue occupancies `(loads, stores)`.
    pub fn queue_occupancy(&self) -> (usize, usize) {
        (self.lq.len(), self.sq.len())
    }

    /// Allocates entry groups ahead of the confirmation stream, in program
    /// order, until the speculation window, queue capacity, or the end of
    /// the iteration space stops it.
    fn allocate_speculative(&mut self) {
        while self.next_spec_iter < self.total_iters {
            if self.next_spec_iter >= self.confirmed + self.config.window as u64 {
                self.spec_stats.window_stall_cycles += 1;
                break;
            }
            let can = self.lq.len() + self.loads_per_iter <= self.config.load_depth
                && self.sq.len() + self.stores_per_iter <= self.config.store_depth;
            if !can {
                self.stats.alloc_stall_cycles += 1;
                break;
            }
            let iter = self.next_spec_iter;
            self.next_spec_iter += 1;
            if iter >= self.confirmed {
                self.spec_stats.spec_allocated += 1;
            }
            for p in 0..self.io.port_count() {
                let op = &self.io.port(p).op;
                let entry = Entry {
                    port: p,
                    iter,
                    seq: op.seq,
                    // Placeholder tag: overwritten by the address token (or
                    // unused — cancelled loads answer with the fake token's
                    // tag), so it never reaches a result channel.
                    tag: Tag::new(iter),
                    addr: None,
                    data: None,
                    state: EntryState::Waiting,
                };
                match op.kind {
                    MemOpKind::Load => self.lq.push(entry),
                    MemOpKind::Store => self.sq.push(entry),
                }
            }
        }
    }

    fn ingest_arrivals(&mut self) {
        for p in 0..self.io.port_count() {
            let is_load = self.io.port(p).is_load();
            while let Some(tok) = self.io.peek_addr(p).copied() {
                let addr = self.io.resolve(p, tok.value);
                let q = if is_load { &mut self.lq } else { &mut self.sq };
                let Some(e) = q
                    .iter_mut()
                    .find(|e| e.port == p && e.iter == tok.tag.iter && e.addr.is_none())
                else {
                    break; // not yet speculated far enough: leave upstream
                };
                e.addr = Some(addr);
                e.tag = tok.tag;
                self.io.take_addr(p).expect("peeked");
            }
            if !is_load {
                while let Some(tok) = self.io.peek_data(p).copied() {
                    let Some(e) = self
                        .sq
                        .iter_mut()
                        .find(|e| e.port == p && e.iter == tok.tag.iter && e.data.is_none())
                    else {
                        break;
                    };
                    e.data = Some(tok.value);
                    self.io.take_data(p).expect("peeked");
                }
            }
            while let Some(tok) = self.io.peek_fake(p).copied() {
                let q = if is_load { &mut self.lq } else { &mut self.sq };
                let Some(e) = q.iter_mut().find(|e| {
                    e.port == p && e.iter == tok.tag.iter && e.state == EntryState::Waiting
                }) else {
                    break;
                };
                e.state = EntryState::Cancelled;
                self.io.take_fake(p).expect("peeked");
                if is_load {
                    self.io.push_result(p, Token::tagged(0, tok.tag));
                }
            }
        }
    }

    fn issue_loads(&mut self) {
        let mut budget = self.config.timing.read_ports;
        for li in 0..self.lq.len() {
            if budget == 0 {
                break;
            }
            let (order, addr) = {
                let l = &self.lq[li];
                if l.state != EntryState::Waiting {
                    continue;
                }
                let Some(addr) = l.addr else { continue };
                (l.order(), addr)
            };
            // Identical associative search to `lsq.rs`: older unknown-addr
            // stores block; the youngest matching older store forwards.
            // Speculation makes this stricter, not looser — entries for
            // older iterations always exist by the time a load's address
            // arrives, so no ordering hazard can slip past the search.
            let mut blocked = false;
            let mut forward: Option<(u64, u32, Option<Value>)> = None;
            for s in &self.sq {
                if s.state == EntryState::Cancelled || s.order() >= order {
                    continue;
                }
                match s.addr {
                    None => {
                        blocked = true;
                        break;
                    }
                    Some(sa) if sa == addr => {
                        if forward.is_none_or(|(fi, fs, _)| (fi, fs) < s.order()) {
                            forward = Some((s.iter, s.seq, s.data));
                        }
                    }
                    Some(_) => {}
                }
            }
            if blocked {
                continue;
            }
            match forward {
                Some((_, _, Some(v))) => {
                    let l = &mut self.lq[li];
                    l.state = EntryState::Done;
                    l.data = Some(v);
                    let (port, tag) = (l.port, l.tag);
                    self.io.push_result(port, Token::tagged(v, tag));
                    self.stats.forwards += 1;
                }
                Some((_, _, None)) => {}
                None => {
                    let value = self.ram.borrow_mut().read(addr);
                    let l = &mut self.lq[li];
                    l.state = EntryState::Issued;
                    self.reads.push(
                        self.config.timing.read_latency,
                        (l.port, l.iter, l.seq, value),
                    );
                    self.stats.ram_reads += 1;
                    budget -= 1;
                }
            }
        }
    }

    fn commit_stores(&mut self) {
        let mut budget = self.config.timing.write_ports;
        while let Some(head) = self.sq.first() {
            match head.state {
                EntryState::Cancelled => {
                    self.sq.remove(0);
                }
                _ => {
                    let (Some(addr), Some(data)) = (head.addr, head.data) else {
                        break;
                    };
                    if budget == 0 {
                        break;
                    }
                    self.ram.borrow_mut().write(addr, data);
                    self.stats.ram_writes += 1;
                    budget -= 1;
                    self.sq.remove(0);
                }
            }
        }
    }

    fn dealloc_loads(&mut self) {
        while let Some(head) = self.lq.first() {
            if matches!(head.state, EntryState::Done | EntryState::Cancelled) {
                self.lq.remove(0);
            } else {
                break;
            }
        }
    }
}

impl Component for SpecLsq {
    fn type_name(&self) -> &'static str {
        "spec_lsq"
    }

    fn ports(&self) -> Ports {
        self.io.channel_ports()
    }

    fn eval(&self, sig: &mut Signals) {
        self.io.eval(sig);
    }

    fn commit(&mut self, sig: &Signals) -> bool {
        let ticking = !self.reads.is_empty();
        let lens = (
            self.lq.len(),
            self.sq.len(),
            self.next_spec_iter,
            self.confirmed,
        );
        self.io.commit_io(sig);

        for (port, iter, seq, value) in self.reads.tick() {
            if let Some(e) = self
                .lq
                .iter_mut()
                .find(|e| e.port == port && e.iter == iter && e.seq == seq)
            {
                e.state = EntryState::Done;
                e.data = Some(value);
                let tag = e.tag;
                self.io.push_result(port, Token::tagged(value, tag));
            }
        }

        // Confirmation tokens merely advance the speculation window; they
        // gate nothing else, which is the whole point of the design.
        if self.io.take_alloc().is_some() {
            self.confirmed += 1;
            self.spec_stats.confirmed += 1;
        }
        self.allocate_speculative();

        self.ingest_arrivals();
        self.issue_loads();
        self.commit_stores();
        self.dealloc_loads();
        self.stats.high_water = self.stats.high_water.max(self.lq.len() + self.sq.len());
        *self.shared.borrow_mut() = self.stats;

        self.eval_dirty = self.io.take_dirty();
        self.eval_dirty
            || ticking
            || !self.reads.is_empty()
            || lens
                != (
                    self.lq.len(),
                    self.sq.len(),
                    self.next_spec_iter,
                    self.confirmed,
                )
    }

    fn eval_invalidated(&self) -> bool {
        self.eval_dirty
    }

    fn flush(&mut self, from_iter: u64) {
        // Like the Dynamatic LSQ, this controller never rides the squash
        // bus in normal operation; stay well-behaved if a flush arrives by
        // rolling the speculation pointer back with the queues.
        self.eval_dirty = true;
        self.io.flush(from_iter);
        self.lq.retain(|e| e.iter < from_iter);
        self.sq.retain(|e| e.iter < from_iter);
        self.reads.flush_if(|&(_, iter, _, _)| iter >= from_iter);
        self.next_spec_iter = self.next_spec_iter.min(from_iter);
        self.confirmed = self.confirmed.min(from_iter);
    }

    fn is_idle(&self) -> bool {
        self.io.is_idle() && self.lq.is_empty() && self.sq.is_empty() && self.reads.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.io.occupancy() + self.lq.len() + self.sq.len()
    }

    fn capacity(&self) -> usize {
        self.config.load_depth + self.config.store_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsq::{Lsq, LsqConfig};
    use prevv_dataflow::components::LoopLevel;
    use prevv_dataflow::{SimConfig, Simulator};
    use prevv_ir::{golden, synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};

    fn run_spec(
        spec: &KernelSpec,
        config: SpecLsqConfig,
    ) -> (Vec<Vec<i64>>, prevv_dataflow::SimReport) {
        let mut s = synthesize(spec).expect("synth");
        let (ctrl, ram) = SpecLsq::new(s.interface.clone(), config).expect("fits");
        s.netlist.add("spec_lsq", ctrl);
        let mut sim = Simulator::new(s.netlist, s.bus)
            .expect("valid netlist")
            .with_config(SimConfig {
                max_cycles: 500_000,
                watchdog: 2_000,
                ..SimConfig::default()
            });
        let report = sim.run().expect("completes");
        let ram = ram.borrow();
        let arrays = s
            .interface
            .split_ram(ram.image())
            .into_iter()
            .map(<[i64]>::to_vec)
            .collect();
        (arrays, report)
    }

    /// The reduction that breaks DirectMemory.
    fn reduction() -> KernelSpec {
        let s = ArrayId(0);
        KernelSpec::new(
            "reduce",
            vec![LoopLevel::upto(32)],
            vec![ArrayDecl::zeroed("s", 4)],
            vec![Stmt::store(
                s,
                Expr::lit(0),
                Expr::load(s, Expr::lit(0)).add(Expr::var(0)),
            )],
        )
        .expect("valid")
    }

    #[test]
    fn spec_lsq_fixes_the_loop_carried_reduction() {
        let spec = reduction();
        let gold = golden::execute(&spec);
        let (arrays, _) = run_spec(&spec, SpecLsqConfig::speculative(16));
        assert_eq!(arrays[0], gold.array(ArrayId(0)));
    }

    #[test]
    fn histogram_with_runtime_indices_is_correct() {
        use prevv_ir::OpaqueFn;
        let h = ArrayId(0);
        let spec = KernelSpec::new(
            "hist",
            vec![LoopLevel::upto(48)],
            vec![ArrayDecl::zeroed("h", 8)],
            vec![Stmt::store(
                h,
                Expr::var(0).opaque(OpaqueFn::new(11, 8)),
                Expr::load(h, Expr::var(0).opaque(OpaqueFn::new(11, 8))).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let gold = golden::execute(&spec);
        let (arrays, _) = run_spec(&spec, SpecLsqConfig::speculative(16));
        assert_eq!(arrays[0], gold.array(ArrayId(0)));
        assert_eq!(arrays[0].iter().sum::<i64>(), 48);
    }

    #[test]
    fn guarded_kernel_with_fakes_completes() {
        use prevv_dataflow::components::BinOp;
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "guarded",
            vec![LoopLevel::upto(16)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::guarded(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(5)),
                Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Rem, Expr::var(0), Expr::lit(2)),
                    Expr::lit(0),
                ),
            )],
        )
        .expect("valid");
        let gold = golden::execute(&spec);
        let (arrays, _) = run_spec(&spec, SpecLsqConfig::speculative(16));
        assert_eq!(arrays[0], gold.array(ArrayId(0)));
    }

    #[test]
    fn speculative_allocation_is_not_slower_than_fast_lsq() {
        // The point of the design: with allocation off the critical path,
        // the speculative LSQ must never lose to fast allocation [8].
        let spec = reduction();
        let mut s = synthesize(&spec).expect("synth");
        let (ctrl, _) = Lsq::new(s.interface.clone(), LsqConfig::fast(16)).expect("fits");
        s.netlist.add("lsq", ctrl);
        let mut sim = Simulator::new(s.netlist, s.bus).expect("valid netlist");
        let fast = sim.run().expect("completes");

        let (_, spec_report) = run_spec(&spec, SpecLsqConfig::speculative(16));
        assert!(
            spec_report.cycles <= fast.cycles,
            "speculative allocation must not lose to fast allocation: {} vs {}",
            spec_report.cycles,
            fast.cycles
        );
    }

    #[test]
    fn shallow_queue_is_rejected() {
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "wide",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 16)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(1))))
                    .add(Expr::load(a, Expr::var(0).add(Expr::lit(2)))),
            )],
        )
        .expect("valid");
        let s = synthesize(&spec).expect("synth");
        let cfg = SpecLsqConfig {
            load_depth: 2,
            ..SpecLsqConfig::speculative(2)
        };
        let err = SpecLsq::new(s.interface, cfg).expect_err("must reject");
        assert!(matches!(
            err,
            LsqError::LoadQueueTooShallow {
                needed: 3,
                depth: 2
            }
        ));
    }

    #[test]
    fn speculation_respects_the_window() {
        // Window 1 degenerates to confirmation-paced allocation; results
        // must still match golden, just slower.
        let spec = reduction();
        let gold = golden::execute(&spec);
        let cfg = SpecLsqConfig {
            window: 1,
            ..SpecLsqConfig::speculative(16)
        };
        let (arrays, narrow) = run_spec(&spec, cfg);
        assert_eq!(arrays[0], gold.array(ArrayId(0)));
        let (_, wide) = run_spec(&spec, SpecLsqConfig::speculative(16));
        assert!(
            wide.cycles <= narrow.cycles,
            "wider speculation window must not be slower: {} vs {}",
            wide.cycles,
            narrow.cycles
        );
    }
}
