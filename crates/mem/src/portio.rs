//! Channel adapter shared by all memory controllers.
//!
//! `PortIo` owns the controller side of every open channel of a
//! [`MemoryInterface`]: small input FIFOs for addresses, store data, fake
//! tokens and allocation tokens (providing the slack the paper's input FIFO
//! gives the arbiter, Fig. 3), plus output FIFOs for load results. The
//! controller logic (LSQ, PreVV, direct) pops arrivals, does its thing, and
//! pushes load results; `PortIo` handles all valid/ready plumbing and makes
//! the controller *fully registered* — no combinational path crosses it, so
//! attaching a controller can never create a combinational cycle.

use std::collections::{BTreeMap, VecDeque};

use prevv_dataflow::{ChannelId, Ports, Signals, Token};
use prevv_ir::{MemoryInterface, MemoryPort};

/// Default depth of each input FIFO.
pub const DEFAULT_IO_CAPACITY: usize = 4;

/// The channel adapter.
#[derive(Debug)]
pub struct PortIo {
    iface: MemoryInterface,
    cap: usize,
    addr_q: Vec<VecDeque<Token>>,
    data_q: Vec<VecDeque<Token>>,
    fake_q: Vec<VecDeque<Token>>,
    /// Per-port result reorder buffers: results may complete out of order
    /// (e.g. a forwarded load overtaking an in-flight RAM read) but each
    /// port's output channel delivers them in iteration order, as a real
    /// load port does.
    out_rob: Vec<BTreeMap<u64, Token>>,
    next_out: Vec<u64>,
    alloc_q: VecDeque<Token>,
    /// Cached total occupancy of the input FIFOs (`alloc_q`, `addr_q`,
    /// `data_q`, `fake_q`) so [`has_pending_inputs`](PortIo::has_pending_inputs)
    /// is O(1) on the controllers' per-cycle fast path.
    pending: usize,
    /// Packed bitmap of every channel this adapter touches, for the O(words)
    /// fired test on the controllers' per-cycle fast path.
    fired_mask: Vec<u64>,
    fakes_seen: u64,
    /// Set by every state-mutating operation since the last
    /// [`take_dirty`](PortIo::take_dirty); controllers fold it into their
    /// `commit` changed-flag so the event scheduler and the engine watchdog
    /// see exactly the mutations that can alter a future `eval`.
    dirty: bool,
}

impl PortIo {
    /// Creates an adapter for `iface` with the default FIFO capacity.
    pub fn new(iface: MemoryInterface) -> Self {
        Self::with_capacity(iface, DEFAULT_IO_CAPACITY)
    }

    /// Creates an adapter with an explicit input FIFO capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(iface: MemoryInterface, cap: usize) -> Self {
        assert!(cap > 0, "port io capacity must be positive");
        let n = iface.ports.len();
        let fired_mask = Signals::fired_mask(std::iter::once(iface.alloc_in).chain(
            iface.ports.iter().flat_map(|p| {
                std::iter::once(p.addr_in)
                    .chain(p.data_in)
                    .chain(p.fake_in)
                    .chain(p.data_out)
            }),
        ));
        PortIo {
            iface,
            cap,
            addr_q: vec![VecDeque::new(); n],
            data_q: vec![VecDeque::new(); n],
            fake_q: vec![VecDeque::new(); n],
            out_rob: vec![BTreeMap::new(); n],
            next_out: vec![0; n],
            alloc_q: VecDeque::new(),
            pending: 0,
            fired_mask,
            fakes_seen: 0,
            dirty: false,
        }
    }

    /// The wrapped interface.
    pub fn iface(&self) -> &MemoryInterface {
        &self.iface
    }

    /// Port descriptor.
    pub fn port(&self, p: usize) -> &MemoryPort {
        &self.iface.ports[p]
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.iface.ports.len()
    }

    /// Resolves a port's raw index token value to a flat RAM address.
    pub fn resolve(&self, p: usize, raw: prevv_dataflow::Value) -> usize {
        let array = self.iface.ports[p].op.array;
        self.iface.arrays[array.0].flat_addr(raw)
    }

    /// All channels, for [`prevv_dataflow::Component::ports`].
    pub fn channel_ports(&self) -> Ports {
        let mut inputs: Vec<ChannelId> = vec![self.iface.alloc_in];
        let mut outputs = Vec::new();
        for p in &self.iface.ports {
            inputs.push(p.addr_in);
            if let Some(d) = p.data_in {
                inputs.push(d);
            }
            if let Some(f) = p.fake_in {
                inputs.push(f);
            }
            if let Some(o) = p.data_out {
                outputs.push(o);
            }
        }
        Ports::new(inputs, outputs)
    }

    /// Combinational half: accept inputs with free FIFO space, offer queued
    /// load results.
    pub fn eval(&self, sig: &mut Signals) {
        sig.accept_if(self.iface.alloc_in, self.alloc_q.len() < self.cap);
        for (i, p) in self.iface.ports.iter().enumerate() {
            sig.accept_if(p.addr_in, self.addr_q[i].len() < self.cap);
            if let Some(d) = p.data_in {
                sig.accept_if(d, self.data_q[i].len() < self.cap);
            }
            if let Some(f) = p.fake_in {
                sig.accept_if(f, self.fake_q[i].len() < self.cap);
            }
            if let Some(o) = p.data_out {
                if let Some(&t) = self.out_rob[i].get(&self.next_out[i]) {
                    sig.drive(o, t);
                }
            }
        }
    }

    /// Sequential half: ingest fired inputs, retire fired outputs. Call at
    /// the top of the controller's `commit`.
    pub fn commit_io(&mut self, sig: &Signals) {
        if let Some(t) = sig.taken(self.iface.alloc_in) {
            self.alloc_q.push_back(t);
            self.pending += 1;
            self.dirty = true;
        }
        for (i, p) in self.iface.ports.iter().enumerate() {
            if let Some(t) = sig.taken(p.addr_in) {
                self.addr_q[i].push_back(t);
                self.pending += 1;
                self.dirty = true;
            }
            if let Some(t) = p.data_in.and_then(|d| sig.taken(d)) {
                self.data_q[i].push_back(t);
                self.pending += 1;
                self.dirty = true;
            }
            if let Some(t) = p.fake_in.and_then(|f| sig.taken(f)) {
                self.fake_q[i].push_back(t);
                self.pending += 1;
                self.fakes_seen += 1;
                self.dirty = true;
            }
            if let Some(o) = p.data_out {
                if sig.fired(o) {
                    self.out_rob[i].remove(&self.next_out[i]);
                    self.next_out[i] += 1;
                    self.dirty = true;
                }
            }
        }
    }

    /// Returns (and clears) the dirty flag: was any queue mutated since the
    /// last call? Read-only peeks never set it.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::replace(&mut self.dirty, false)
    }

    /// True when any of the adapter's channels fired this cycle, i.e.
    /// [`commit_io`](PortIo::commit_io) would mutate a queue. Controllers
    /// use this (with [`has_pending_inputs`](PortIo::has_pending_inputs)) to
    /// fast-path commit on cycles where the adapter provably cannot move.
    pub fn any_fired(&self, sig: &Signals) -> bool {
        sig.any_masked_fired(&self.fired_mask)
    }

    /// True when any input FIFO holds a token the controller has not yet
    /// consumed (queued results awaiting delivery do not count — they leave
    /// via channel fires, which [`any_fired`](PortIo::any_fired) observes).
    pub fn has_pending_inputs(&self) -> bool {
        debug_assert_eq!(self.pending, self.count_pending(), "pending cache drift");
        self.pending != 0
    }

    /// Reference recount backing the `pending` cache (debug assertions and
    /// the post-flush rebuild).
    fn count_pending(&self) -> usize {
        self.alloc_q.len()
            + self
                .addr_q
                .iter()
                .chain(&self.data_q)
                .chain(&self.fake_q)
                .map(VecDeque::len)
                .sum::<usize>()
    }

    /// Pops the next allocation token (one per iteration, program order).
    pub fn take_alloc(&mut self) -> Option<Token> {
        let t = self.alloc_q.pop_front();
        self.pending -= t.is_some() as usize;
        self.dirty |= t.is_some();
        t
    }

    /// Peeks the next allocation token.
    pub fn peek_alloc(&self) -> Option<&Token> {
        self.alloc_q.front()
    }

    /// Pops the next address token of port `p`.
    pub fn take_addr(&mut self, p: usize) -> Option<Token> {
        let t = self.addr_q[p].pop_front();
        self.pending -= t.is_some() as usize;
        self.dirty |= t.is_some();
        t
    }

    /// Peeks the next address token of port `p`.
    pub fn peek_addr(&self, p: usize) -> Option<&Token> {
        self.addr_q[p].front()
    }

    /// Finds a queued (not yet consumed) address token of port `p` for a
    /// specific iteration. Store address tokens typically arrive well before
    /// the store's data; controllers use this early visibility for address
    /// disambiguation.
    pub fn find_addr(&self, p: usize, iter: u64) -> Option<Token> {
        self.addr_q[p].iter().find(|t| t.tag.iter == iter).copied()
    }

    /// Pops the next store-data token of port `p`.
    pub fn take_data(&mut self, p: usize) -> Option<Token> {
        let t = self.data_q[p].pop_front();
        self.pending -= t.is_some() as usize;
        self.dirty |= t.is_some();
        t
    }

    /// Peeks the next store-data token of port `p`.
    pub fn peek_data(&self, p: usize) -> Option<&Token> {
        self.data_q[p].front()
    }

    /// Pops the next fake token of port `p` (paper §V-C).
    pub fn take_fake(&mut self, p: usize) -> Option<Token> {
        let t = self.fake_q[p].pop_front();
        self.pending -= t.is_some() as usize;
        self.dirty |= t.is_some();
        t
    }

    /// Peeks the next fake token of port `p`.
    pub fn peek_fake(&self, p: usize) -> Option<&Token> {
        self.fake_q[p].front()
    }

    /// Queues a load result for delivery on port `p`'s output channel.
    /// Results may be pushed out of iteration order; delivery is reordered.
    ///
    /// # Panics
    ///
    /// Panics if port `p` is not a load, or if a (non-squashed) result for
    /// the same iteration is already queued.
    pub fn push_result(&mut self, p: usize, token: Token) {
        assert!(
            self.iface.ports[p].data_out.is_some(),
            "port {p} has no result channel"
        );
        let prev = self.out_rob[p].insert(token.tag.iter, token);
        assert!(
            prev.is_none(),
            "duplicate result for port {p} iteration {}",
            token.tag.iter
        );
        self.dirty = true;
    }

    /// Total fake tokens received.
    pub fn fakes_seen(&self) -> u64 {
        self.fakes_seen
    }

    /// Drops every queued token of iterations `>= from_iter`.
    pub fn flush(&mut self, from_iter: u64) {
        let before = self.occupancy();
        let keep = |t: &Token| t.tag.iter < from_iter;
        self.alloc_q.retain(keep);
        for q in self
            .addr_q
            .iter_mut()
            .chain(&mut self.data_q)
            .chain(&mut self.fake_q)
        {
            q.retain(keep);
        }
        for (rob, next) in self.out_rob.iter_mut().zip(&mut self.next_out) {
            rob.retain(|&iter, _| iter < from_iter);
            if *next > from_iter {
                *next = from_iter;
                self.dirty = true;
            }
        }
        self.pending = self.count_pending();
        self.dirty |= self.occupancy() != before;
    }

    /// True when every queue is empty.
    pub fn is_idle(&self) -> bool {
        self.alloc_q.is_empty()
            && self.addr_q.iter().all(VecDeque::is_empty)
            && self.data_q.iter().all(VecDeque::is_empty)
            && self.fake_q.iter().all(VecDeque::is_empty)
            && self.out_rob.iter().all(BTreeMap::is_empty)
    }

    /// Tokens currently queued (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.alloc_q.len()
            + self
                .addr_q
                .iter()
                .chain(&self.data_q)
                .chain(&self.fake_q)
                .map(VecDeque::len)
                .sum::<usize>()
            + self.out_rob.iter().map(BTreeMap::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_dataflow::components::LoopLevel;
    use prevv_ir::{synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};

    fn io() -> PortIo {
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "t",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0)).add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let s = synthesize(&spec).expect("synth");
        PortIo::new(s.interface)
    }

    #[test]
    fn accepts_until_capacity() {
        let mut io = PortIo::with_capacity(io().iface().clone(), 2);
        let load_addr = io.port(0).addr_in;
        for i in 0..2 {
            let mut sig = Signals::new(64);
            io.eval(&mut sig);
            assert!(sig.is_ready(load_addr));
            sig.drive(load_addr, Token::new(i, i as u64));
            io.eval(&mut sig);
            io.commit_io(&sig);
        }
        let mut sig = Signals::new(64);
        io.eval(&mut sig);
        assert!(!sig.is_ready(load_addr), "fifo full backpressures");
        assert_eq!(io.occupancy(), 2);
    }

    #[test]
    fn results_are_offered_until_taken() {
        let mut io = io();
        let out = io.port(0).data_out.expect("load port");
        io.push_result(0, Token::new(9, 0));
        let mut sig = Signals::new(64);
        io.eval(&mut sig);
        assert!(sig.is_valid(out));
        // Not taken: stays queued.
        io.commit_io(&sig);
        assert_eq!(io.occupancy(), 1);
        let mut sig = Signals::new(64);
        sig.accept(out);
        io.eval(&mut sig);
        io.commit_io(&sig);
        assert!(io.is_idle());
    }

    #[test]
    fn flush_clears_squashed_tokens() {
        let mut io = io();
        io.push_result(0, Token::new(1, 3));
        io.push_result(0, Token::new(2, 7));
        io.flush(5);
        assert_eq!(io.occupancy(), 1);
    }

    #[test]
    fn find_addr_sees_queued_tokens_by_iteration() {
        let mut io = io();
        let load_addr = io.port(0).addr_in;
        for iter in 0..3u64 {
            let mut sig = Signals::new(64);
            io.eval(&mut sig);
            sig.drive(load_addr, Token::new(iter as i64, iter));
            io.eval(&mut sig);
            io.commit_io(&sig);
        }
        assert_eq!(io.find_addr(0, 1), Some(Token::new(1, 1)));
        assert_eq!(io.find_addr(0, 7), None, "iteration never queued");
        // Consuming the front does not disturb lookup of the rest.
        io.take_addr(0);
        assert_eq!(io.find_addr(0, 0), None, "consumed");
        assert_eq!(io.find_addr(0, 2), Some(Token::new(2, 2)));
    }

    #[test]
    fn resolve_uses_array_layout() {
        let io = io();
        // Port 0 accesses array "a" (base 0, len 8).
        assert_eq!(io.resolve(0, 9), 1);
        assert_eq!(io.resolve(0, -1), 7);
    }
}
