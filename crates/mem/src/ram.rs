//! The word-addressed on-chip memory (BRAM model).

use std::cell::RefCell;
use std::rc::Rc;

use prevv_dataflow::Value;

/// A flat word-addressed memory shared between a controller and the test
/// harness.
///
/// Timing (read/write latency, port bandwidth) is modeled by the
/// controllers; `Ram` itself is purely functional storage so that the final
/// image can be compared word-for-word against the golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ram {
    cells: Vec<Value>,
    reads: u64,
    writes: u64,
}

impl Ram {
    /// Creates a RAM initialized to `image`.
    pub fn new(image: Vec<Value>) -> Self {
        Ram {
            cells: image,
            reads: 0,
            writes: 0,
        }
    }

    /// Creates a zeroed RAM of `words` cells.
    pub fn zeroed(words: usize) -> Self {
        Self::new(vec![0; words])
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the RAM has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range (controllers resolve addresses into
    /// range before accessing).
    pub fn read(&mut self, addr: usize) -> Value {
        self.reads += 1;
        self.cells[addr]
    }

    /// Writes one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: Value) {
        self.writes += 1;
        self.cells[addr] = value;
    }

    /// Read-only view of the whole image.
    pub fn image(&self) -> &[Value] {
        &self.cells
    }

    /// Total reads performed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total writes performed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

/// Shared handle to a RAM, returned by controller attach functions so the
/// harness can inspect final memory after simulation.
pub type SharedRam = Rc<RefCell<Ram>>;

/// Wraps a RAM in a shared handle.
pub fn shared(ram: Ram) -> SharedRam {
    Rc::new(RefCell::new(ram))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut r = Ram::zeroed(4);
        r.write(2, 7);
        assert_eq!(r.read(2), 7);
        assert_eq!(r.read(0), 0);
        assert_eq!(r.read_count(), 2);
        assert_eq!(r.write_count(), 1);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn image_reflects_writes() {
        let mut r = Ram::new(vec![1, 2, 3]);
        r.write(0, 9);
        assert_eq!(r.image(), &[9, 2, 3]);
    }
}
