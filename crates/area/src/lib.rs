//! # prevv-area — FPGA resource and clock-period models
//!
//! Analytic LUT/FF/mux and timing estimation for dataflow circuits with
//! LSQ or PreVV disambiguation, replacing Vivado synthesis per the
//! substitution policy of DESIGN.md. Constants are calibrated against the
//! paper's published Kintex-7 numbers (see [`calib`] for provenance); the
//! model is built for *relative* fidelity — which design wins and by what
//! rough factor — not absolute gate counts.
//!
//! ## Example
//!
//! ```
//! use prevv_area::{estimate, ControllerKind};
//! use prevv_ir::synthesize;
//! use prevv_kernels::paper;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = synthesize(&paper::polyn_mult(8))?;
//! let lsq = estimate(&circuit, ControllerKind::FastLsq { depth: 16 });
//! let prevv = estimate(&circuit, ControllerKind::Prevv { depth: 16, pair_reduction: true });
//! assert!(prevv.total().luts < lsq.total().luts);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod device;
mod estimate;
mod model;

pub use device::Device;
pub use estimate::{
    ambiguous_array_count, clock_period_ns, controller_cost, datapath_cost, datapath_cost_of,
    estimate, lsq_instance_cost, prevv_instance_cost, ControllerKind, DesignReport,
};
pub use model::{CircuitInventory, Resources};
