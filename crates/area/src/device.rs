//! FPGA device capacities and utilization analysis.
//!
//! The paper's motivation (§I) is that LSQ-dominated designs "must reserve
//! significant space … making them incompatible with edge devices that have
//! limited resources". This module makes that argument quantitative: price
//! a design, pick a device, and ask how many accelerator instances fit —
//! or whether the design fits at all.

use crate::model::Resources;

/// Logic capacity of an FPGA device (the resources the area model prices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Available LUTs.
    pub luts: u64,
    /// Available flip-flops.
    pub ffs: u64,
}

impl Device {
    /// The paper's evaluation part: Kintex-7 `xc7k160tfbg484-2`.
    pub const XC7K160T: Device = Device {
        name: "xc7k160t",
        luts: 101_400,
        ffs: 202_800,
    };

    /// A representative edge-class part: Artix-7 `xc7a35t` (Arty A7-35).
    pub const XC7A35T: Device = Device {
        name: "xc7a35t",
        luts: 20_800,
        ffs: 41_600,
    };

    /// A mid-range edge part: Artix-7 `xc7a100t`.
    pub const XC7A100T: Device = Device {
        name: "xc7a100t",
        luts: 63_400,
        ffs: 126_800,
    };

    /// Fraction of the device's LUTs a design consumes (can exceed 1.0).
    pub fn lut_utilization(&self, r: Resources) -> f64 {
        r.luts as f64 / self.luts as f64
    }

    /// Does the design fit within a routable budget? Practical designs
    /// rarely route above ~80 % LUT utilization, so that is the default
    /// criterion.
    pub fn fits(&self, r: Resources) -> bool {
        self.fits_with_margin(r, 0.8)
    }

    /// Fit check with an explicit utilization ceiling.
    pub fn fits_with_margin(&self, r: Resources, ceiling: f64) -> bool {
        (r.luts as f64) <= self.luts as f64 * ceiling && (r.ffs as f64) <= self.ffs as f64 * ceiling
    }

    /// How many independent instances of the design fit (at the 80 %
    /// ceiling) — the paper's scalability-for-larger-circuits argument in
    /// one number.
    pub fn instances(&self, r: Resources) -> u64 {
        if r.luts == 0 && r.ffs == 0 {
            return u64::MAX;
        }
        let by_lut = if r.luts == 0 {
            u64::MAX
        } else {
            (self.luts as f64 * 0.8 / r.luts as f64) as u64
        };
        let by_ff = if r.ffs == 0 {
            u64::MAX
        } else {
            (self.ffs as f64 * 0.8 / r.ffs as f64) as u64
        };
        by_lut.min(by_ff)
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} LUT / {} FF)", self.name, self.luts, self.ffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_fit() {
        let d = Device::XC7K160T;
        let small = Resources::new(10_000, 20_000, 0);
        assert!(d.fits(small));
        assert!((d.lut_utilization(small) - 10_000.0 / 101_400.0).abs() < 1e-12);
        let huge = Resources::new(95_000, 10_000, 0);
        assert!(!d.fits(huge), "95k LUTs exceeds the 80% routable budget");
        assert!(d.fits_with_margin(huge, 0.99));
    }

    #[test]
    fn instance_counting() {
        let d = Device::XC7A35T; // 20.8k LUTs
        let design = Resources::new(5_000, 3_000, 0);
        assert_eq!(d.instances(design), 3);
        assert_eq!(d.instances(Resources::zero()), u64::MAX);
    }

    #[test]
    fn edge_device_cannot_hold_an_lsq_design() {
        // The motivation in one assertion: a Dynamatic-with-LSQ kernel
        // (~20k LUTs) does not fit an Artix-7 35T at all, while the PreVV16
        // version (~5-10k) does.
        let lsq_design = Resources::new(19_000, 5_400, 270);
        let prevv_design = Resources::new(8_000, 2_300, 120);
        let edge = Device::XC7A35T;
        assert!(!edge.fits(lsq_design));
        assert!(edge.fits(prevv_design));
    }
}
