//! Design-level resource and timing estimation.

use std::collections::HashSet;

use prevv_core::reduce;
use prevv_ir::SynthesizedKernel;

use crate::calib;
use crate::model::{CircuitInventory, Resources};

/// Which disambiguation controller a design uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// Plain Dynamatic \[15\]: one LSQ per ambiguous array, slow group
    /// allocation network.
    Dynamatic {
        /// Queue depth per LSQ (load and store queues each).
        depth: usize,
    },
    /// Fast-allocation LSQ \[8\]: one shared LSQ, fast-token delivery network.
    FastLsq {
        /// Queue depth.
        depth: usize,
    },
    /// PreVV: shared premature queue plus one arbiter per ambiguous array.
    Prevv {
        /// Premature queue depth (`depth_q`).
        depth: usize,
        /// Apply the §V-B pair reduction to the arbiter merge network.
        pair_reduction: bool,
    },
    /// Hypothetical naive PreVV that replicates queue + arbiter per
    /// ambiguous pair (the 2^n blow-up of paper Eq. 11) — used only by the
    /// scalability experiment.
    NaivePrevvPerPair {
        /// Premature queue depth per instance.
        depth: usize,
    },
}

/// A priced design: datapath + controller + clock period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignReport {
    /// Datapath (computation) resources.
    pub datapath: Resources,
    /// Disambiguation controller resources.
    pub controller: Resources,
    /// Estimated achieved clock period, ns.
    pub clock_period_ns: f64,
}

impl DesignReport {
    /// Total resources.
    pub fn total(&self) -> Resources {
        self.datapath + self.controller
    }

    /// Fraction of LUTs spent on the controller — the paper's Fig. 1 metric.
    pub fn controller_lut_share(&self) -> f64 {
        let total = self.total().luts;
        if total == 0 {
            0.0
        } else {
            self.controller.luts as f64 / total as f64
        }
    }
}

fn res3(t: (u64, u64, u64)) -> Resources {
    Resources::new(t.0, t.1, t.2)
}

/// Prices the datapath of a synthesized kernel from its netlist inventory.
pub fn datapath_cost(synth: &SynthesizedKernel) -> Resources {
    let inv = CircuitInventory::from_netlist(&synth.netlist);
    datapath_cost_of(&inv, synth.interface.ports.len())
}

/// Prices an explicit inventory (unit-testable without synthesis).
pub fn datapath_cost_of(inv: &CircuitInventory, mem_ports: usize) -> Resources {
    let mut r = Resources::zero();
    r += res3(calib::ALU_SIMPLE) * inv.alus_simple as u64;
    r += res3(calib::ALU_MUL) * inv.alus_mul as u64;
    r += res3(calib::ALU_DIV) * inv.alus_div as u64;
    r += res3(calib::ALU_UNARY) * inv.alus_unary as u64;
    r += res3(calib::FORK_PORT) * inv.fork_ports as u64;
    r += res3(calib::BUFFER) * inv.buffers as u64;
    r += res3(calib::BRANCH) * inv.branches as u64;
    r += res3(calib::CONSTANT) * inv.constants as u64;
    r += res3(calib::ROUTING) * inv.routing as u64;
    r += res3(calib::SOURCE_STREAM) * inv.source_streams as u64;
    r += res3(calib::MEM_PORT) * mem_ports as u64;
    r
}

/// Number of arrays involved in at least one ambiguous pair — the
/// granularity at which \[15\] instantiates LSQs and PreVV instantiates
/// arbiters.
pub fn ambiguous_array_count(synth: &SynthesizedKernel) -> usize {
    let ambiguous = synth.interface.ambiguous_ops();
    let arrays: HashSet<usize> = synth
        .interface
        .ports
        .iter()
        .enumerate()
        .filter(|(pid, _)| ambiguous.contains(pid))
        .map(|(_, p)| p.op.array.0)
        .collect();
    arrays.len().max(1)
}

/// Prices one LSQ instance of the given depth.
pub fn lsq_instance_cost(depth: usize) -> Resources {
    let d = depth as u64;
    Resources::new(
        calib::LSQ_BASE_LUTS + calib::LSQ_CAM_LUTS_PER_PAIR * d * d + calib::LSQ_ENTRY_LUTS * 2 * d,
        calib::LSQ_BASE_FFS + calib::LSQ_ENTRY_FFS * 2 * d + calib::LSQ_CAM_FFS_PER_PAIR * d * d,
        calib::LSQ_ENTRY_MUXES * 2 * d,
    )
}

/// Prices one PreVV instance: the shared premature queue plus one arbiter
/// per ambiguous pair (the paper's Fig. 3 applies PreVV to each pair; the
/// queue is shared after the §V-B reduction).
pub fn prevv_instance_cost(depth: usize, arbiters: usize, validated_ports: usize) -> Resources {
    let d = depth as u64;
    let queue = Resources::new(
        calib::PQ_BASE_LUTS + calib::PQ_ENTRY_LUTS * d,
        calib::PQ_ENTRY_FFS * d,
        calib::PQ_ENTRY_MUXES * d,
    );
    let arbiter = Resources::new(
        calib::ARB_BASE_LUTS + calib::ARB_LUTS_PER_ENTRY * d,
        calib::ARB_BASE_FFS,
        4,
    ) * arbiters as u64
        + Resources::new(calib::ARB_LUTS_PER_VALIDATED_PORT, 24, 1) * validated_ports as u64;
    queue + arbiter
}

/// Prices a controller for a synthesized kernel.
pub fn controller_cost(synth: &SynthesizedKernel, kind: ControllerKind) -> Resources {
    let ports = synth.interface.ports.len() as u64;
    let n_arrays = ambiguous_array_count(synth) as u64;
    match kind {
        ControllerKind::Dynamatic { depth } => {
            lsq_instance_cost(depth) * n_arrays
                + Resources::new(
                    calib::LSQ_ALLOC_LUTS_PER_PORT * ports,
                    40 * ports,
                    2 * ports,
                )
        }
        ControllerKind::FastLsq { depth } => {
            // The fast-allocation plugin shares one LSQ per (dual-port)
            // memory controller, i.e. per two ambiguous arrays — which is
            // exactly the step the paper's Table I shows between 2mm (one
            // LSQ) and 3mm (two).
            let instances = n_arrays.div_ceil(2);
            lsq_instance_cost(depth) * instances
                + Resources::new(
                    calib::FAST_TOKEN_LUTS_PER_PORT * ports,
                    calib::FAST_TOKEN_FFS_PER_PORT * ports,
                    ports,
                )
        }
        ControllerKind::Prevv {
            depth,
            pair_reduction,
        } => {
            let _ = n_arrays;
            let red = reduce::reduce(&synth.interface, pair_reduction);
            let pairs = synth.interface.pairs.len().max(1);
            prevv_instance_cost(depth, pairs, red.validated.len())
        }
        ControllerKind::NaivePrevvPerPair { depth } => {
            let pairs = synth.interface.pairs.len().max(1);
            // Eq. 11: overlapped pairs double validation hardware — each
            // pair gets its own private queue and a mirrored arbiter for
            // every op shared with another pair.
            (prevv_instance_cost(depth, 2, 2) + prevv_instance_cost(depth, 0, 0)) * pairs as u64
        }
    }
}

/// Estimates the achieved clock period of a design.
pub fn clock_period_ns(synth: &SynthesizedKernel, kind: ControllerKind) -> f64 {
    let inv = CircuitInventory::from_netlist(&synth.netlist);
    let ports = synth.interface.ports.len() as f64;
    let levels = synth.spec.levels.len() as f64;
    let mut cp = calib::CP_BASE_NS;
    if inv.alus_mul + inv.alus_div > 0 {
        cp += calib::CP_MUL_NS;
    }
    let ctrl = match kind {
        ControllerKind::Dynamatic { depth } => {
            (depth as f64).log2() * calib::CP_LSQ_PER_LOG_DEPTH_NS
                + ports * calib::CP_LSQ_PER_PORT_NS
                + levels * calib::CP_ALLOC_PER_LEVEL_NS
        }
        ControllerKind::FastLsq { depth } => {
            (depth as f64).log2() * calib::CP_LSQ_PER_LOG_DEPTH_NS
                + ports * calib::CP_LSQ_PER_PORT_NS
        }
        ControllerKind::Prevv { depth, .. } => {
            (depth as f64).log2() * calib::CP_PREVV_PER_LOG_DEPTH_NS
        }
        ControllerKind::NaivePrevvPerPair { depth } => {
            // Eq. 12: naive replication degrades frequency with the pair
            // count.
            let n = synth.interface.pairs.len().max(1) as f64;
            (depth as f64).log2() * calib::CP_PREVV_PER_LOG_DEPTH_NS * (1.0 + n.log2().max(0.0))
        }
    };
    cp + ctrl
}

/// Full design estimate.
pub fn estimate(synth: &SynthesizedKernel, kind: ControllerKind) -> DesignReport {
    DesignReport {
        datapath: datapath_cost(synth),
        controller: controller_cost(synth, kind),
        clock_period_ns: clock_period_ns(synth, kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prevv_ir::synthesize;
    use prevv_kernels::paper;

    fn synth(spec: prevv_ir::KernelSpec) -> SynthesizedKernel {
        synthesize(&spec).expect("synthesizes")
    }

    #[test]
    fn lsq_dominates_dynamatic_designs() {
        // The paper's Fig. 1 claim: >80% of resources go to the LSQ.
        for spec in paper::all_default() {
            let s = synth(spec);
            let rep = estimate(&s, ControllerKind::Dynamatic { depth: 16 });
            assert!(
                rep.controller_lut_share() > 0.8,
                "{}: LSQ share {:.2} should exceed 0.8",
                s.spec.name,
                rep.controller_lut_share()
            );
        }
    }

    #[test]
    fn prevv16_saves_substantial_luts_vs_fast_lsq() {
        // Table I shape: PreVV16 cuts LUTs substantially vs [8]
        // (paper: 17-53% per kernel, geomean 44%).
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for spec in paper::all_default() {
            let s = synth(spec);
            let lsq = estimate(&s, ControllerKind::FastLsq { depth: 16 }).total();
            let prevv = estimate(
                &s,
                ControllerKind::Prevv {
                    depth: 16,
                    pair_reduction: true,
                },
            )
            .total();
            let ratio = prevv.luts as f64 / lsq.luts as f64;
            assert!(
                (0.15..0.85).contains(&ratio),
                "{}: PreVV16/[8] LUT ratio {:.2} out of band",
                s.spec.name,
                ratio
            );
            log_sum += ratio.ln();
            n += 1;
        }
        let geomean_saving = 1.0 - (log_sum / n as f64).exp();
        assert!(
            (0.25..0.70).contains(&geomean_saving),
            "geomean LUT saving {geomean_saving:.2} should be near the paper's 44%"
        );
    }

    #[test]
    fn prevv64_saves_less_than_prevv16() {
        let s = synth(paper::mm2(paper::default_sizes::MM));
        let p16 = estimate(
            &s,
            ControllerKind::Prevv {
                depth: 16,
                pair_reduction: true,
            },
        )
        .total();
        let p64 = estimate(
            &s,
            ControllerKind::Prevv {
                depth: 64,
                pair_reduction: true,
            },
        )
        .total();
        assert!(p64.luts > p16.luts);
        assert!(p64.ffs > p16.ffs);
    }

    #[test]
    fn dynamatic_multiplies_lsqs_per_ambiguous_array() {
        let s2 = synth(paper::mm2(paper::default_sizes::MM));
        let s3 = synth(paper::mm3(paper::default_sizes::MM));
        assert_eq!(ambiguous_array_count(&s2), 2, "tmp and D");
        assert_eq!(ambiguous_array_count(&s3), 3, "E, F and G");
        let d2 = estimate(&s2, ControllerKind::Dynamatic { depth: 16 });
        let d3 = estimate(&s3, ControllerKind::Dynamatic { depth: 16 });
        assert!(d3.controller.luts > d2.controller.luts);
    }

    #[test]
    fn clock_periods_fall_in_the_papers_band() {
        for spec in paper::all_default() {
            let s = synth(spec);
            for kind in [
                ControllerKind::Dynamatic { depth: 16 },
                ControllerKind::FastLsq { depth: 16 },
                ControllerKind::Prevv {
                    depth: 16,
                    pair_reduction: true,
                },
                ControllerKind::Prevv {
                    depth: 64,
                    pair_reduction: true,
                },
            ] {
                let cp = clock_period_ns(&s, kind);
                assert!(
                    (6.5..9.5).contains(&cp),
                    "{}: CP {cp:.2} ns out of band for {kind:?}",
                    s.spec.name
                );
            }
        }
    }

    #[test]
    fn prevv_cp_beats_lsq_cp() {
        let s = synth(paper::gaussian(paper::default_sizes::GAUSSIAN));
        let lsq = clock_period_ns(&s, ControllerKind::FastLsq { depth: 16 });
        let prevv = clock_period_ns(
            &s,
            ControllerKind::Prevv {
                depth: 16,
                pair_reduction: true,
            },
        );
        assert!(
            prevv < lsq,
            "PreVV removes the search logic: {prevv} vs {lsq}"
        );
    }

    #[test]
    fn naive_per_pair_replication_blows_up() {
        let s = synth(paper::mm3(paper::default_sizes::MM));
        let shared = controller_cost(
            &s,
            ControllerKind::Prevv {
                depth: 16,
                pair_reduction: true,
            },
        );
        let naive = controller_cost(&s, ControllerKind::NaivePrevvPerPair { depth: 16 });
        assert!(
            naive.luts > 2 * shared.luts,
            "per-pair replication must cost multiples: {} vs {}",
            naive.luts,
            shared.luts
        );
    }
}
