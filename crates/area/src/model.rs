//! Resource vectors and the component inventory.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use prevv_dataflow::Netlist;

/// FPGA resource usage, in the units of the paper's Table I. DSPs are not
/// modeled — as the paper notes, neither the LSQ nor PreVV uses them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resources {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops (registers).
    pub ffs: u64,
    /// Multiplexers (as reported separately by Vivado for 7-series).
    pub muxes: u64,
}

impl Resources {
    /// Creates a resource vector.
    pub fn new(luts: u64, ffs: u64, muxes: u64) -> Self {
        Resources { luts, ffs, muxes }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            muxes: self.muxes + rhs.muxes,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, k: u64) -> Resources {
        Resources {
            luts: self.luts * k,
            ffs: self.ffs * k,
            muxes: self.muxes * k,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::zero(), Add::add)
    }
}

impl std::fmt::Display for Resources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} LUT / {} FF / {} mux",
            self.luts, self.ffs, self.muxes
        )
    }
}

/// Counts of datapath components extracted from a synthesized netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CircuitInventory {
    /// Simple ALUs (add/sub/compare/logic).
    pub alus_simple: usize,
    /// Multiplier-class ALUs.
    pub alus_mul: usize,
    /// Divider-class ALUs.
    pub alus_div: usize,
    /// Opaque-function units.
    pub alus_unary: usize,
    /// Fork fan-out ports (sum over forks of their output count).
    pub fork_ports: usize,
    /// Elastic buffers.
    pub buffers: usize,
    /// Branches (guard steering).
    pub branches: usize,
    /// Constants.
    pub constants: usize,
    /// Merges/muxes/joins.
    pub routing: usize,
    /// Iteration-source output streams (loop-control rings).
    pub source_streams: usize,
    /// Memory access ports (load + store).
    pub mem_ports: usize,
}

impl CircuitInventory {
    /// Builds the inventory by walking a netlist. Memory ports are counted
    /// from the component implementing the controller interface (its
    /// outputs are the load-result channels; inputs minus outputs
    /// approximates port channels), so pass the *datapath-only* netlist or
    /// the full one — controller components are recognized by type name and
    /// excluded from datapath counts.
    pub fn from_netlist(net: &Netlist) -> Self {
        let mut inv = CircuitInventory::default();
        for (_, _, c) in net.iter() {
            let ports = c.ports();
            match c.type_name() {
                "binary_alu" => inv.alus_simple += 1,
                "binary_alu_mul" => inv.alus_mul += 1,
                "binary_alu_div" => inv.alus_div += 1,
                "unary_alu" => inv.alus_unary += 1,
                "fork" => inv.fork_ports += ports.outputs.len(),
                "buffer" => inv.buffers += 1,
                "branch" => inv.branches += 1,
                "constant" => inv.constants += 1,
                "merge" | "mux" | "join" => inv.routing += 1,
                "iter_source" => inv.source_streams += ports.outputs.len(),
                // Controllers and sinks are priced separately.
                _ => {}
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_add_and_scale() {
        let a = Resources::new(10, 20, 3);
        let b = Resources::new(1, 2, 1);
        assert_eq!(a + b, Resources::new(11, 22, 4));
        assert_eq!(b * 3, Resources::new(3, 6, 3));
        let s: Resources = [a, b].into_iter().sum();
        assert_eq!(s, Resources::new(11, 22, 4));
    }

    #[test]
    fn inventory_counts_a_synthesized_kernel() {
        use prevv_dataflow::components::LoopLevel;
        use prevv_ir::{synthesize, ArrayDecl, ArrayId, Expr, KernelSpec, Stmt};
        let a = ArrayId(0);
        let spec = KernelSpec::new(
            "inv",
            vec![LoopLevel::upto(4)],
            vec![ArrayDecl::zeroed("a", 8)],
            vec![Stmt::store(
                a,
                Expr::var(0),
                Expr::load(a, Expr::var(0))
                    .mul(Expr::lit(3))
                    .add(Expr::lit(1)),
            )],
        )
        .expect("valid");
        let s = synthesize(&spec).expect("synth");
        let inv = CircuitInventory::from_netlist(&s.netlist);
        assert_eq!(inv.alus_mul, 1);
        assert_eq!(inv.alus_simple, 1, "one add");
        assert_eq!(inv.constants, 2, "literal 3 and literal 1");
        assert!(inv.fork_ports >= 3, "i used by addr + const triggers");
        assert!(inv.buffers >= 3, "slack buffers on every fork output");
    }
}
